//! Heavy-edge matching (HEM) for the coarsening phase.
//!
//! Visits vertices in random order and matches each unmatched vertex with
//! the unmatched neighbour connected by the heaviest edge — the matching
//! strategy from the multilevel k-way scheme of Karypis & Kumar. Pairs whose
//! combined vertex weight would exceed `max_pair_weight` are skipped so that
//! coarse vertices never outgrow the group size limit.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::WeightedGraph;

/// Computes a heavy-edge matching.
///
/// Returns `match_of` where `match_of[v]` is `v`'s partner, or `v` itself if
/// unmatched. The relation is symmetric.
pub(crate) fn heavy_edge_matching<R: Rng>(
    graph: &WeightedGraph,
    max_pair_weight: f64,
    rng: &mut R,
) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut match_of: Vec<usize> = (0..n).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    for &u in &order {
        if matched[u] {
            continue;
        }
        let uw = graph.vertex_weight(u);
        let mut best: Option<(usize, f64)> = None;
        for &(v, w) in graph.neighbors(u) {
            if matched[v] || v == u {
                continue;
            }
            if uw + graph.vertex_weight(v) > max_pair_weight {
                continue;
            }
            match best {
                Some((_, bw)) if bw >= w => {}
                _ => best = Some((v, w)),
            }
        }
        if let Some((v, _)) = best {
            matched[u] = true;
            matched[v] = true;
            match_of[u] = v;
            match_of[v] = u;
        }
    }
    match_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn assert_valid_matching(g: &WeightedGraph, m: &[usize]) {
        for (u, &p) in m.iter().enumerate() {
            assert_eq!(m[p], u, "matching not symmetric at {u}");
            if p != u {
                assert!(
                    g.edge_weight(u, p) > 0.0 || g.neighbors(u).iter().any(|&(v, _)| v == p),
                    "matched non-adjacent pair ({u},{p})"
                );
            }
        }
    }

    #[test]
    fn matches_heavy_edges_first() {
        // Every vertex's heaviest incident edge points at its designated
        // partner, so HEM must recover {0,1} and {2,3} regardless of the
        // random visiting order.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(2, 3, 50.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        let m = heavy_edge_matching(&g, f64::INFINITY, &mut rng());
        assert_valid_matching(&g, &m);
        assert_eq!(m[0], 1, "heavy edge 0-1 must be matched");
        assert_eq!(m[2], 3, "heavy edge 2-3 must be matched");
    }

    #[test]
    fn respects_pair_weight_cap() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 5.0);
        g.set_vertex_weight(0, 3.0);
        g.set_vertex_weight(1, 3.0);
        let m = heavy_edge_matching(&g, 5.0, &mut rng());
        assert_eq!(m[0], 0, "pair exceeding cap must not match");
        assert_eq!(m[1], 1);
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let g = WeightedGraph::new(4);
        let m = heavy_edge_matching(&g, f64::INFINITY, &mut rng());
        assert_eq!(m, vec![0, 1, 2, 3]);
    }

    #[test]
    fn matching_on_path_covers_most_vertices() {
        let mut g = WeightedGraph::new(10);
        for i in 0..9 {
            g.add_edge(i, i + 1, 1.0);
        }
        let m = heavy_edge_matching(&g, f64::INFINITY, &mut rng());
        assert_valid_matching(&g, &m);
        let matched = m.iter().enumerate().filter(|(u, &p)| *u != p).count();
        assert!(matched >= 6, "path matching too sparse: {matched}/10");
    }
}
