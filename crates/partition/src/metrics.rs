//! Quality metrics for groupings: edge cut, the paper's normalized
//! inter-group traffic intensity `W_inter`, and group centrality.

use crate::{Partition, WeightedGraph, CONTROLLER_GROUP};

/// Total weight of edges crossing group boundaries.
///
/// Edges incident to [`CONTROLLER_GROUP`]-excluded vertices count as cut
/// (their traffic is controller-handled by definition).
pub fn edge_cut(graph: &WeightedGraph, part: &Partition) -> f64 {
    let mut cut = 0.0;
    for u in 0..graph.num_vertices() {
        for &(v, w) in graph.neighbors(u) {
            if u < v {
                let gu = part.group_of(u);
                let gv = part.group_of(v);
                if gu != gv || gu == CONTROLLER_GROUP {
                    cut += w;
                }
            }
        }
    }
    cut
}

/// The paper's `W_inter` (§III-C.1) normalized by total intensity: the
/// fraction of traffic that crosses groups, in `[0, 1]`.
///
/// Returns 0 for graphs with no edges.
pub fn normalized_inter_group_intensity(graph: &WeightedGraph, part: &Partition) -> f64 {
    let total = graph.total_edge_weight();
    if total == 0.0 {
        return 0.0;
    }
    edge_cut(graph, part) / total
}

/// Centrality of one group (§II-A): intra-group traffic divided by all
/// traffic involving the group's vertices, in `[0, 1]`.
///
/// Returns `None` for groups with no incident traffic.
pub fn group_centrality(graph: &WeightedGraph, part: &Partition, group: usize) -> Option<f64> {
    let mut intra = 0.0;
    let mut incident = 0.0;
    for u in 0..graph.num_vertices() {
        if part.group_of(u) != group {
            continue;
        }
        for &(v, w) in graph.neighbors(u) {
            if part.group_of(v) == group {
                // Counted from both endpoints; halve below.
                intra += w;
                incident += w;
            } else {
                incident += w;
            }
        }
    }
    intra /= 2.0;
    incident -= intra; // intra edges were double counted in incident too
    if incident == 0.0 {
        None
    } else {
        Some(intra / incident)
    }
}

/// Mean centrality over all non-empty groups (the paper reports 0.853 for
/// its k=5 partition of the real trace).
pub fn average_centrality(graph: &WeightedGraph, part: &Partition) -> f64 {
    let vals: Vec<f64> = (0..part.num_groups())
        .filter_map(|g| group_centrality(graph, part, g))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Imbalance factor: max group weight divided by mean group weight (1.0 is
/// perfectly balanced). Returns 0 when there are no groups.
pub fn imbalance(graph: &WeightedGraph, part: &Partition) -> f64 {
    let weights = part.group_weights(graph);
    if weights.is_empty() {
        return 0.0;
    }
    let total: f64 = weights.iter().sum();
    let mean = total / weights.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    weights.iter().cloned().fold(0.0, f64::max) / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_graph() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 10.0);
        }
        g.add_edge(2, 3, 5.0);
        g
    }

    #[test]
    fn cut_counts_cross_edges_once() {
        let g = two_cluster_graph();
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(edge_cut(&g, &p), 5.0);
        let frac = normalized_inter_group_intensity(&g, &p);
        assert!((frac - 5.0 / 65.0).abs() < 1e-12);
    }

    #[test]
    fn single_group_has_zero_cut() {
        let g = two_cluster_graph();
        let p = Partition::single_group(6);
        assert_eq!(edge_cut(&g, &p), 0.0);
        assert_eq!(normalized_inter_group_intensity(&g, &p), 0.0);
        assert_eq!(average_centrality(&g, &p), 1.0);
    }

    #[test]
    fn centrality_matches_hand_computation() {
        let g = two_cluster_graph();
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2);
        // Group 0: intra = 30, incident = 30 + 5 = 35.
        let c0 = group_centrality(&g, &p, 0).unwrap();
        assert!((c0 - 30.0 / 35.0).abs() < 1e-12);
        let avg = average_centrality(&g, &p);
        assert!((avg - 30.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn excluded_vertices_count_as_cut() {
        let g = two_cluster_graph();
        let p = Partition::from_assignment(vec![0, 0, CONTROLLER_GROUP, 1, 1, 1], 2);
        // Edges 1-2, 0-2 (intra cluster but excluded endpoint) and 2-3 all cut.
        assert_eq!(edge_cut(&g, &p), 10.0 + 10.0 + 5.0);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = WeightedGraph::new(4);
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(normalized_inter_group_intensity(&g, &p), 0.0);
        assert_eq!(group_centrality(&g, &p, 0), None);
        assert_eq!(average_centrality(&g, &p), 0.0);
    }

    #[test]
    fn imbalance_of_even_split_is_one() {
        let g = WeightedGraph::new(4);
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        assert!((imbalance(&g, &p) - 1.0).abs() < 1e-12);
        let p2 = Partition::from_assignment(vec![0, 0, 0, 1], 2);
        assert!((imbalance(&g, &p2) - 1.5).abs() < 1e-12);
    }
}
