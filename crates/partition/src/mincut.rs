//! Stoer–Wagner global minimum cut.
//!
//! The paper's `IncUpdate` merges the two most-changed groups and re-splits
//! them along a minimum cut, citing Stoer & Wagner (§III-C.2, reference 29).
//! This is the textbook O(V³) maximum-adjacency-search implementation; the
//! merge/split step only ever runs it on a two-group subgraph, so V is
//! bounded by twice the group size limit.

use crate::WeightedGraph;

/// Result of a global minimum cut computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCut {
    /// Total weight crossing the cut.
    pub weight: f64,
    /// Side assignment: `true` for vertices in the separated subset.
    pub side: Vec<bool>,
}

/// Computes the global minimum cut of `graph`.
///
/// Returns `None` for graphs with fewer than 2 vertices. Disconnected
/// graphs yield a zero-weight cut separating one component.
pub fn stoer_wagner(graph: &WeightedGraph) -> Option<MinCut> {
    let n = graph.num_vertices();
    if n < 2 {
        return None;
    }
    // Dense weight matrix; merged vertices accumulate rows/columns.
    let mut w = vec![vec![0.0f64; n]; n];
    for (u, row) in w.iter_mut().enumerate() {
        for &(v, wt) in graph.neighbors(u) {
            row[v] = wt; // symmetric; set from both endpoints
        }
    }
    // merged[v] = original vertices currently folded into v.
    let mut merged: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_weight = f64::INFINITY;
    let mut best_side: Vec<bool> = Vec::new();

    while active.len() > 1 {
        // Maximum adjacency search from active[0].
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut conn: Vec<f64> = active.iter().map(|&v| w[active[0]][v]).collect();
        in_a[0] = true;
        let mut order = vec![0usize]; // indexes into `active`
        for _ in 1..m {
            let mut best_i = usize::MAX;
            let mut best_c = f64::NEG_INFINITY;
            for i in 0..m {
                if !in_a[i] && conn[i] > best_c {
                    best_c = conn[i];
                    best_i = i;
                }
            }
            in_a[best_i] = true;
            order.push(best_i);
            let vb = active[best_i];
            for i in 0..m {
                if !in_a[i] {
                    conn[i] += w[vb][active[i]];
                }
            }
        }
        // Cut-of-the-phase: last added vertex against the rest.
        let last_i = *order.last().expect("order non-empty");
        let last = active[last_i];
        let cut_weight: f64 = active
            .iter()
            .filter(|&&v| v != last)
            .map(|&v| w[last][v])
            .sum();
        if cut_weight < best_weight {
            best_weight = cut_weight;
            let mut side = vec![false; n];
            for &orig in &merged[last] {
                side[orig] = true;
            }
            best_side = side;
        }
        // Merge the last two vertices of the phase.
        let prev_i = order[order.len() - 2];
        let prev = active[prev_i];
        for &v in active.iter().take(m) {
            if v != last && v != prev {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        let absorbed = std::mem::take(&mut merged[last]);
        merged[prev].extend(absorbed);
        active.remove(last_i);
    }

    Some(MinCut {
        weight: best_weight,
        side: best_side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vertex_cut_is_the_edge() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 3.5);
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 3.5);
        assert_ne!(cut.side[0], cut.side[1]);
    }

    #[test]
    fn bridge_is_found() {
        // Two triangles joined by one light edge.
        let mut g = WeightedGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 10.0);
        }
        g.add_edge(2, 3, 1.0);
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 1.0);
        let left: Vec<bool> = (0..3).map(|v| cut.side[v]).collect();
        let right: Vec<bool> = (3..6).map(|v| cut.side[v]).collect();
        assert!(left.iter().all(|&s| s == left[0]));
        assert!(right.iter().all(|&s| s == right[0]));
        assert_ne!(left[0], right[0]);
    }

    #[test]
    fn wikipedia_style_example() {
        // Known instance: 8-vertex graph from the Stoer–Wagner paper, min
        // cut weight 4 separating {3,4,7,8} (1-indexed).
        let edges = [
            (0, 1, 2.0),
            (0, 4, 3.0),
            (1, 2, 3.0),
            (1, 4, 2.0),
            (1, 5, 2.0),
            (2, 3, 4.0),
            (2, 6, 2.0),
            (3, 6, 2.0),
            (3, 7, 2.0),
            (4, 5, 3.0),
            (5, 6, 1.0),
            (6, 7, 3.0),
        ];
        let mut g = WeightedGraph::new(8);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 4.0);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(2, 3, 5.0);
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 0.0);
        assert_ne!(cut.side[0], cut.side[2]);
    }

    #[test]
    fn tiny_graphs() {
        assert!(stoer_wagner(&WeightedGraph::new(0)).is_none());
        assert!(stoer_wagner(&WeightedGraph::new(1)).is_none());
        let cut = stoer_wagner(&WeightedGraph::new(2)).unwrap();
        assert_eq!(cut.weight, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(3..9);
            let mut g = WeightedGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.7) {
                        g.add_edge(u, v, rng.gen_range(1..10) as f64);
                    }
                }
            }
            let sw = stoer_wagner(&g).unwrap();
            // Brute force over all non-trivial bipartitions.
            let mut best = f64::INFINITY;
            for mask in 1..(1u32 << n) - 1 {
                let mut cut = 0.0;
                for u in 0..n {
                    for &(v, w) in g.neighbors(u) {
                        if u < v && ((mask >> u) & 1) != ((mask >> v) & 1) {
                            cut += w;
                        }
                    }
                }
                best = best.min(cut);
            }
            assert!(
                (sw.weight - best).abs() < 1e-9,
                "trial {trial}: stoer-wagner {} != brute {best}",
                sw.weight
            );
        }
    }
}
