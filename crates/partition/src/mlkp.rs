//! The Multi-Level k-way Partitioning driver with the paper's
//! size-constraint wrapper.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::coarsen::{contract, CoarseLevel};
use crate::initial::initial_partition;
use crate::matching::heavy_edge_matching;
use crate::refine::{enforce_limit, refine};
use crate::{Partition, WeightedGraph};

/// Configuration for [`mlkp`].
///
/// # Example
///
/// ```
/// use lazyctrl_partition::MlkpConfig;
///
/// let cfg = MlkpConfig::new(8)
///     .with_max_part_weight(46.0)
///     .with_seed(1);
/// assert_eq!(cfg.num_parts, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlkpConfig {
    /// Number of parts `k` to produce (more may appear if the size cap
    /// forces it; fewer if the graph has fewer vertices).
    pub num_parts: usize,
    /// Hard cap on a part's total vertex weight (`None` = unconstrained).
    pub max_part_weight: Option<f64>,
    /// Stop coarsening when the graph has at most this many vertices
    /// (`None` = `max(64, 8·k)`).
    pub coarsen_until: Option<usize>,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// RNG seed (the algorithm is deterministic given the seed).
    pub seed: u64,
}

impl MlkpConfig {
    /// A default configuration for `k` parts.
    pub fn new(num_parts: usize) -> Self {
        MlkpConfig {
            num_parts,
            max_part_weight: None,
            coarsen_until: None,
            refine_passes: 8,
            seed: 0xC0FFEE,
        }
    }

    /// Sets the hard per-part weight cap.
    pub fn with_max_part_weight(mut self, w: f64) -> Self {
        self.max_part_weight = Some(w);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the refinement pass count.
    pub fn with_refine_passes(mut self, passes: usize) -> Self {
        self.refine_passes = passes;
        self
    }

    fn effective_coarsen_until(&self) -> usize {
        self.coarsen_until
            .unwrap_or_else(|| (8 * self.num_parts).max(64))
    }
}

/// Partitions `graph` into (approximately) `cfg.num_parts` parts minimizing
/// edge cut, honouring `cfg.max_part_weight` as a hard cap.
///
/// This is the engine behind the paper's `IniGroup` (§III-C.2): coarsen by
/// heavy-edge matching, partition the coarsest graph by recursive greedy
/// growing, then uncoarsen with boundary refinement at every level. Runtime
/// is linear in the number of edges per level.
///
/// # Panics
///
/// Panics if `cfg.num_parts` is zero, or if `max_part_weight` is smaller
/// than the heaviest vertex (no feasible assignment exists).
pub fn mlkp(graph: &WeightedGraph, cfg: &MlkpConfig) -> Partition {
    assert!(cfg.num_parts > 0, "num_parts must be positive");
    let n = graph.num_vertices();
    if n == 0 {
        return Partition::from_assignment(vec![], cfg.num_parts.max(1));
    }
    if let Some(cap) = cfg.max_part_weight {
        let heaviest = (0..n)
            .map(|v| graph.vertex_weight(v))
            .fold(0.0f64, f64::max);
        assert!(
            heaviest <= cap + 1e-9,
            "max_part_weight {cap} below heaviest vertex {heaviest}"
        );
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cap = cfg.max_part_weight.unwrap_or(f64::INFINITY);
    let coarsen_until = cfg.effective_coarsen_until();

    // ---- Coarsening phase ----
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = graph.clone();
    while current.num_vertices() > coarsen_until {
        let matching = heavy_edge_matching(&current, cap, &mut rng);
        let matched_pairs = matching.iter().enumerate().filter(|(u, &p)| *u < p).count();
        // Give up when matching stops shrinking the graph meaningfully.
        if matched_pairs * 20 < current.num_vertices() {
            break;
        }
        let level = contract(&current, &matching);
        current = level.graph.clone();
        levels.push(level);
    }

    // ---- Initial partitioning on the coarsest graph ----
    let mut part = initial_partition(&current, cfg.num_parts, &mut rng);
    if cfg.max_part_weight.is_some() {
        enforce_limit(&current, &mut part, cap);
    }
    refine(&current, &mut part, cap, cfg.refine_passes);

    // ---- Uncoarsening + refinement ----
    for idx in (0..levels.len()).rev() {
        let level = &levels[idx];
        let fine_n = level.fine_to_coarse.len();
        let mut fine_assignment = vec![0usize; fine_n];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            fine_assignment[v] = part.group_of(c);
        }
        part = Partition::from_assignment(fine_assignment, part.num_groups());
        // Projection preserves weights exactly, so the cap still holds;
        // refinement both improves the cut and maintains it.
        let fine_graph = if idx == 0 {
            graph
        } else {
            &levels[idx - 1].graph
        };
        refine(fine_graph, &mut part, cap, cfg.refine_passes);
    }

    if cfg.max_part_weight.is_some() {
        enforce_limit(graph, &mut part, cap);
        refine(graph, &mut part, cap, cfg.refine_passes);
        enforce_limit(graph, &mut part, cap);
    }
    part.compact();
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, normalized_inter_group_intensity};
    use rand::Rng;

    /// A planted-partition graph: `k` clusters of `size`, dense inside,
    /// sparse between.
    fn planted(k: usize, size: usize, seed: u64) -> WeightedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = k * size;
        let mut g = WeightedGraph::new(n);
        for c in 0..k {
            let base = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    if rng.gen_bool(0.6) {
                        g.add_edge(base + i, base + j, 5.0 + rng.gen::<f64>());
                    }
                }
            }
        }
        for _ in 0..(k * size / 2) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u / size != v / size {
                g.add_edge(u, v, 0.2);
            }
        }
        g
    }

    #[test]
    fn recovers_planted_clusters() {
        let g = planted(4, 12, 3);
        let part = mlkp(
            &g,
            &MlkpConfig::new(4).with_max_part_weight(12.0).with_seed(5),
        );
        assert!(part.respects_limit(&g, 12.0));
        let frac = normalized_inter_group_intensity(&g, &part);
        assert!(frac < 0.12, "inter-group fraction {frac} too high");
        // Each planted cluster should land (almost) wholly in one group.
        for c in 0..4 {
            let mut counts = std::collections::HashMap::new();
            for v in c * 12..(c + 1) * 12 {
                *counts.entry(part.group_of(v)).or_insert(0) += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            assert!(max >= 10, "cluster {c} fragmented: {counts:?}");
        }
    }

    #[test]
    fn cap_is_hard() {
        let g = planted(3, 20, 11);
        for cap in [8.0, 15.0, 25.0] {
            let part = mlkp(
                &g,
                &MlkpConfig::new((60.0f64 / cap).ceil() as usize)
                    .with_max_part_weight(cap)
                    .with_seed(2),
            );
            assert!(part.respects_limit(&g, cap), "cap {cap} violated");
            let covered: usize = part.groups().iter().map(Vec::len).sum();
            assert_eq!(covered, 60);
        }
    }

    #[test]
    fn more_groups_mean_more_cut() {
        // The paper's Fig 6(a) trend: W_inter grows with the group count.
        let g = planted(8, 10, 7);
        let mut last = -1.0;
        for k in [2usize, 4, 8, 16] {
            let part = mlkp(&g, &MlkpConfig::new(k).with_seed(3));
            let frac = normalized_inter_group_intensity(&g, &part);
            assert!(
                frac >= last - 0.02,
                "W_inter regressed hard at k={k}: {frac} < {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = planted(3, 15, 9);
        let cfg = MlkpConfig::new(3).with_max_part_weight(20.0).with_seed(77);
        let a = mlkp(&g, &cfg);
        let b = mlkp(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_has_no_cut() {
        let g = planted(2, 8, 1);
        let part = mlkp(&g, &MlkpConfig::new(1));
        assert_eq!(part.num_groups(), 1);
        assert_eq!(edge_cut(&g, &part), 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = WeightedGraph::new(0);
        let part = mlkp(&g, &MlkpConfig::new(4));
        assert_eq!(part.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "below heaviest vertex")]
    fn infeasible_cap_panics() {
        let mut g = WeightedGraph::new(2);
        g.set_vertex_weight(0, 10.0);
        g.add_edge(0, 1, 1.0);
        let _ = mlkp(&g, &MlkpConfig::new(2).with_max_part_weight(5.0));
    }

    #[test]
    fn large_sparse_graph_runs_fast() {
        // 2000 vertices ring + chords; mostly a smoke/perf guard.
        let mut g = WeightedGraph::new(2000);
        for i in 0..2000 {
            g.add_edge(i, (i + 1) % 2000, 1.0);
            if i % 7 == 0 {
                g.add_edge(i, (i + 500) % 2000, 0.3);
            }
        }
        let part = mlkp(&g, &MlkpConfig::new(20).with_max_part_weight(120.0));
        assert!(part.respects_limit(&g, 120.0));
        assert_eq!(part.groups().iter().map(Vec::len).sum::<usize>(), 2000);
    }
}
