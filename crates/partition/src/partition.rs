use serde::{Deserialize, Serialize};

use crate::WeightedGraph;

/// Sentinel group id for vertices excluded from grouping and handled
/// directly by the controller (Appendix B, "host exclusion in switch
/// grouping").
pub const CONTROLLER_GROUP: usize = usize::MAX;

/// An assignment of vertices to groups.
///
/// Group ids are dense `0..num_groups`, except for the special
/// [`CONTROLLER_GROUP`] marker. Produced by [`mlkp`](crate::mlkp) and
/// maintained incrementally by [`Sgi`](crate::Sgi).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<usize>,
    num_groups: usize,
}

impl Partition {
    /// Creates a partition from a raw assignment vector.
    ///
    /// `num_groups` must exceed every non-sentinel group id present.
    ///
    /// # Panics
    ///
    /// Panics if an assignment refers to a group `>= num_groups` (other than
    /// [`CONTROLLER_GROUP`]).
    pub fn from_assignment(assignment: Vec<usize>, num_groups: usize) -> Self {
        for (v, &g) in assignment.iter().enumerate() {
            assert!(
                g < num_groups || g == CONTROLLER_GROUP,
                "vertex {v} assigned to out-of-range group {g}"
            );
        }
        Partition {
            assignment,
            num_groups,
        }
    }

    /// Puts every vertex in one group.
    pub fn single_group(n: usize) -> Self {
        Partition {
            assignment: vec![0; n],
            num_groups: 1,
        }
    }

    /// The group of vertex `v`.
    pub fn group_of(&self, v: usize) -> usize {
        self.assignment[v]
    }

    /// Reassigns vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range group ids (other than [`CONTROLLER_GROUP`]).
    pub fn assign(&mut self, v: usize, group: usize) {
        assert!(
            group < self.num_groups || group == CONTROLLER_GROUP,
            "group {group} out of range"
        );
        self.assignment[v] = group;
    }

    /// Number of (dense) groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Raw assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Grows the group space by one and returns the new group id.
    pub fn add_group(&mut self) -> usize {
        self.num_groups += 1;
        self.num_groups - 1
    }

    /// Members of each group, in vertex order. Excluded vertices appear in
    /// no bucket.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_groups];
        for (v, &g) in self.assignment.iter().enumerate() {
            if g != CONTROLLER_GROUP {
                out[g].push(v);
            }
        }
        out
    }

    /// Members of one group.
    pub fn members(&self, group: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == group)
            .map(|(v, _)| v)
            .collect()
    }

    /// Vertices excluded from grouping (controller-handled).
    pub fn excluded(&self) -> Vec<usize> {
        self.members(CONTROLLER_GROUP)
    }

    /// Weighted size of each group under `graph`'s vertex weights.
    pub fn group_weights(&self, graph: &WeightedGraph) -> Vec<f64> {
        let mut w = vec![0.0; self.num_groups];
        for (v, &g) in self.assignment.iter().enumerate() {
            if g != CONTROLLER_GROUP {
                w[g] += graph.vertex_weight(v);
            }
        }
        w
    }

    /// True when every group's weighted size is at most `limit`.
    pub fn respects_limit(&self, graph: &WeightedGraph, limit: f64) -> bool {
        self.group_weights(graph).iter().all(|&w| w <= limit + 1e-9)
    }

    /// Drops empty groups and renumbers densely, preserving relative order.
    pub fn compact(&mut self) {
        let mut used = vec![false; self.num_groups];
        for &g in &self.assignment {
            if g != CONTROLLER_GROUP {
                used[g] = true;
            }
        }
        let mut remap = vec![usize::MAX; self.num_groups];
        let mut next = 0;
        for (g, &u) in used.iter().enumerate() {
            if u {
                remap[g] = next;
                next += 1;
            }
        }
        for a in &mut self.assignment {
            if *a != CONTROLLER_GROUP {
                *a = remap[*a];
            }
        }
        self.num_groups = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let p = Partition::from_assignment(vec![0, 1, 0, 2, CONTROLLER_GROUP], 3);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.group_of(2), 0);
        assert_eq!(p.members(0), vec![0, 2]);
        assert_eq!(p.excluded(), vec![4]);
        assert_eq!(p.groups(), vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "out-of-range group")]
    fn rejects_out_of_range() {
        let _ = Partition::from_assignment(vec![0, 5], 2);
    }

    #[test]
    fn weights_and_limits() {
        let mut g = WeightedGraph::new(4);
        g.set_vertex_weight(0, 2.0);
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(p.group_weights(&g), vec![3.0, 2.0]);
        assert!(p.respects_limit(&g, 3.0));
        assert!(!p.respects_limit(&g, 2.5));
    }

    #[test]
    fn compact_renumbers() {
        let mut p = Partition::from_assignment(vec![2, 2, 0, CONTROLLER_GROUP], 4);
        p.compact();
        assert_eq!(p.num_groups(), 2);
        // Relative order preserved: old 0 -> 0, old 2 -> 1.
        assert_eq!(p.group_of(2), 0);
        assert_eq!(p.group_of(0), 1);
        assert_eq!(p.group_of(3), CONTROLLER_GROUP);
    }

    #[test]
    fn add_group_extends_range() {
        let mut p = Partition::single_group(3);
        let g = p.add_group();
        assert_eq!(g, 1);
        p.assign(2, g);
        assert_eq!(p.members(1), vec![2]);
    }

    #[test]
    fn single_group_covers_all() {
        let p = Partition::single_group(5);
        assert_eq!(p.members(0).len(), 5);
        assert_eq!(p.num_groups(), 1);
    }
}
