//! Greedy boundary refinement (simplified Fiduccia–Mattheyses / METIS-style
//! k-way greedy refinement) with a hard group-size cap.

use std::collections::BTreeMap;

use crate::{Partition, WeightedGraph, CONTROLLER_GROUP};

/// Improves `part` in place: boundary vertices move to the neighbouring
/// group that most reduces the edge cut, subject to `max_weight`. When a
/// group exceeds `max_weight` (e.g. right after projection from a coarser
/// level), repair moves run even at negative gain.
///
/// Returns the number of vertices moved.
pub(crate) fn refine(
    graph: &WeightedGraph,
    part: &mut Partition,
    max_weight: f64,
    passes: usize,
) -> usize {
    let n = graph.num_vertices();
    let mut group_w = part.group_weights(graph);
    let mut total_moves = 0;

    for _ in 0..passes {
        let mut moves_this_pass = 0;
        for v in 0..n {
            let own = part.group_of(v);
            if own == CONTROLLER_GROUP {
                continue;
            }
            let vw = graph.vertex_weight(v);
            // Connectivity of v to each adjacent group.
            let mut conn: BTreeMap<usize, f64> = BTreeMap::new();
            for &(u, w) in graph.neighbors(v) {
                let g = part.group_of(u);
                if g != CONTROLLER_GROUP {
                    *conn.entry(g).or_insert(0.0) += w;
                }
            }
            let internal = conn.get(&own).copied().unwrap_or(0.0);
            let overweight = group_w[own] > max_weight + 1e-9;

            // Candidate target: adjacent group with max gain that has room.
            let mut best: Option<(usize, f64)> = None;
            for (&g, &w) in &conn {
                if g == own {
                    continue;
                }
                if group_w[g] + vw > max_weight + 1e-9 {
                    continue;
                }
                let gain = w - internal;
                match best {
                    Some((_, bg)) if bg >= gain => {}
                    _ => best = Some((g, gain)),
                }
            }
            // Repair path: overweight groups shed vertices even at a loss,
            // to any group with room (prefer connected ones, found above).
            let target = match best {
                Some((g, gain)) if gain > 1e-12 || overweight => Some(g),
                _ if overweight => (0..part.num_groups())
                    .filter(|&g| g != own && group_w[g] + vw <= max_weight + 1e-9)
                    .min_by(|&a, &b| group_w[a].partial_cmp(&group_w[b]).expect("finite weights")),
                _ => None,
            };
            if let Some(g) = target {
                // Never move the last vertex out of a group during plain
                // gain moves (keeps groups non-empty); repair may empty.
                if !overweight && group_w[own] - vw <= 1e-12 {
                    continue;
                }
                group_w[own] -= vw;
                group_w[g] += vw;
                part.assign(v, g);
                moves_this_pass += 1;
            }
        }
        total_moves += moves_this_pass;
        if moves_this_pass == 0 {
            break;
        }
    }
    total_moves
}

/// Ensures every group fits under `max_weight`, adding fresh groups for
/// stragglers if no existing group has room (the paper's size constraint:
/// group sizes are hard-capped, the *number* of groups is variable).
pub(crate) fn enforce_limit(graph: &WeightedGraph, part: &mut Partition, max_weight: f64) {
    loop {
        let group_w = part.group_weights(graph);
        let Some(over) = (0..part.num_groups()).find(|&g| group_w[g] > max_weight + 1e-9) else {
            return;
        };
        // Shed the lightest member of the overweight group.
        let members = part.members(over);
        let &v = members
            .iter()
            .min_by(|&&a, &&b| {
                graph
                    .vertex_weight(a)
                    .partial_cmp(&graph.vertex_weight(b))
                    .expect("finite weights")
            })
            .expect("overweight group has members");
        let vw = graph.vertex_weight(v);
        // Prefer the connected group with most room, else any with room,
        // else a brand new group.
        let mut conn: BTreeMap<usize, f64> = BTreeMap::new();
        for &(u, w) in graph.neighbors(v) {
            let g = part.group_of(u);
            if g != CONTROLLER_GROUP && g != over {
                *conn.entry(g).or_insert(0.0) += w;
            }
        }
        let connected_fit = conn
            .iter()
            .filter(|(&g, _)| group_w[g] + vw <= max_weight + 1e-9)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(&g, _)| g);
        let any_fit = (0..part.num_groups())
            .filter(|&g| g != over && group_w[g] + vw <= max_weight + 1e-9)
            .min_by(|&a, &b| group_w[a].partial_cmp(&group_w[b]).expect("finite"));
        let target = connected_fit
            .or(any_fit)
            .unwrap_or_else(|| part.add_group());
        part.assign(v, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::edge_cut;

    fn two_cluster_graph() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 10.0);
        }
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn refine_fixes_a_misplaced_vertex() {
        let g = two_cluster_graph();
        // Vertex 2 wrongly placed with the right cluster.
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 1, 1], 2);
        let before = edge_cut(&g, &p);
        let moves = refine(&g, &mut p, 4.0, 4);
        let after = edge_cut(&g, &p);
        assert!(moves >= 1);
        assert!(after < before, "cut {after} not improved from {before}");
        assert_eq!(p.group_of(2), 0);
    }

    #[test]
    fn refine_respects_weight_cap() {
        let g = two_cluster_graph();
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 1, 1], 2);
        // Cap of 4 would allow the fix; cap of 2 must forbid moving 2 into
        // group 0 (already weight 2).
        let mut p2 = p.clone();
        refine(&g, &mut p, 2.0, 4);
        assert_eq!(p.group_of(2), 1, "move should have been blocked by cap");
        refine(&g, &mut p2, 4.0, 4);
        assert_eq!(p2.group_of(2), 0);
    }

    #[test]
    fn refine_never_empties_groups_on_gain_moves() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let mut p = Partition::from_assignment(vec![0, 1, 1], 2);
        refine(&g, &mut p, 10.0, 8);
        let groups = p.groups();
        assert!(groups.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn enforce_limit_splits_oversized_groups() {
        let g = WeightedGraph::new(10);
        let mut p = Partition::single_group(10);
        enforce_limit(&g, &mut p, 3.0);
        assert!(p.respects_limit(&g, 3.0));
        let total: usize = p.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert!(p.num_groups() >= 4, "need ≥ 4 groups of ≤ 3");
    }

    #[test]
    fn enforce_limit_prefers_connected_groups() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(2, 3, 5.0);
        // Group 0 = {0,1,2} overweight at cap 2; vertex 2 connects to group 1.
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1], 2);
        enforce_limit(&g, &mut p, 2.0);
        assert!(p.respects_limit(&g, 2.0));
        // The shed vertex should have been 2 → group 1 by connectivity, but
        // any valid result must keep sizes ≤ 2 and cover all vertices.
        assert_eq!(p.groups().iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn enforce_limit_noop_when_satisfied() {
        let g = WeightedGraph::new(4);
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        let before = p.clone();
        enforce_limit(&g, &mut p, 2.0);
        assert_eq!(p, before);
    }
}
