//! **SGI** — the paper's Size-constrained Grouping algorithm with
//! Incremental update support (§III-C.2, Fig. 3).
//!
//! * `IniGroup` ([`Sgi::ini_group`]): build the intensity graph from history
//!   and produce an initial feasible grouping with size-constrained MLkP
//!   (`k` estimated as *switches / group-size-limit*).
//! * `IncUpdate` ([`Sgi::inc_update`]): while the controller is overloaded,
//!   find the two groups between which traffic increased the most, merge
//!   them, and re-split along a minimum (size-capped) bisection; stop when
//!   the estimated load falls below the low threshold.
//!
//! Appendix-B extensions are included: host/switch **exclusion** (excluded
//! vertices are pinned to [`CONTROLLER_GROUP`] and handled centrally) and
//! **parallel** merge/split over disjoint group pairs
//! ([`Sgi::par_inc_update`], via `std::thread::scope` workers).
//!
//! Parallelism is gated by [`SgiConfig::parallelism`]: `1` (the default)
//! computes the re-splits sequentially on the calling thread; `n > 1`
//! fans the disjoint pairs out over up to `n` scoped OS threads. Each
//! worker is a pure function of its pair's subgraph and a pair-derived
//! seed, and results are *applied* sequentially in selection order either
//! way — so the resulting grouping (and every simulation report built on
//! it) is bit-identical across `parallelism` settings.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::bisect::min_bisection;
use crate::metrics::normalized_inter_group_intensity;
use crate::{mlkp, MlkpConfig, Partition, WeightedGraph, CONTROLLER_GROUP};

/// Configuration for the SGI algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgiConfig {
    /// Hard cap on switches per group (the paper's TCAM-driven limit).
    pub group_size_limit: usize,
    /// Controller load (requests/sec) above which `IncUpdate` keeps
    /// merging/splitting (`threshold.high` in Fig. 3).
    pub high_threshold: f64,
    /// Load below which `IncUpdate` stops early (`threshold.low`).
    pub low_threshold: f64,
    /// RNG seed for all randomized sub-steps.
    pub seed: u64,
    /// Vertices excluded from grouping and pinned to the controller
    /// (Appendix B, host exclusion).
    pub excluded: Vec<usize>,
    /// Safety bound on merge/split rounds per `inc_update` call.
    pub max_merge_rounds: usize,
    /// Minimum *relative* W_inter improvement a merge/split must deliver to
    /// be accepted (e.g. 0.02 = 2%). Marginal reshuffles are rejected: in a
    /// live network every accepted update costs reassignments, G-FIB
    /// rebuilds and transient punts, so it must earn its keep.
    pub min_improvement: f64,
    /// Worker threads for [`Sgi::par_inc_update`]'s re-split computation.
    /// `1` (the default) stays sequential and spawns nothing; results are
    /// identical for any value (see the module docs).
    pub parallelism: usize,
}

impl SgiConfig {
    /// A sensible default configuration for the given group size limit.
    ///
    /// # Panics
    ///
    /// Panics if `group_size_limit` is zero.
    pub fn new(group_size_limit: usize) -> Self {
        assert!(group_size_limit > 0, "group size limit must be positive");
        SgiConfig {
            group_size_limit,
            high_threshold: f64::INFINITY,
            low_threshold: 0.0,
            seed: 0x5A61,
            excluded: Vec::new(),
            max_merge_rounds: 16,
            min_improvement: 0.0,
            parallelism: 1,
        }
    }

    /// Sets the worker-thread count for parallel merge/split.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n > 0, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// Sets the minimum relative improvement for accepting a merge/split.
    ///
    /// # Panics
    ///
    /// Panics unless `frac` is in `[0, 1)`.
    pub fn with_min_improvement(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac), "min_improvement out of [0,1)");
        self.min_improvement = frac;
        self
    }

    /// Sets the controller load thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn with_thresholds(mut self, low: f64, high: f64) -> Self {
        assert!(low <= high, "low threshold above high threshold");
        self.low_threshold = low;
        self.high_threshold = high;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Excludes vertices from grouping (controller-handled).
    pub fn with_excluded(mut self, excluded: Vec<usize>) -> Self {
        self.excluded = excluded;
        self
    }
}

/// What one `IncUpdate` invocation did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncUpdateReport {
    /// Merge/split rounds performed.
    pub rounds: usize,
    /// The group pairs that were merged and re-split.
    pub merged_pairs: Vec<(usize, usize)>,
    /// Normalized inter-group intensity before the update.
    pub winter_before: f64,
    /// Normalized inter-group intensity after the update.
    pub winter_after: f64,
    /// Estimated controller load after the update (input load scaled by the
    /// inter-group intensity ratio).
    pub estimated_load_after: f64,
}

/// The SGI state machine: a grouping, the intensity graph it was built
/// from, and the baseline for change detection.
#[derive(Debug, Clone)]
pub struct Sgi {
    cfg: SgiConfig,
    graph: WeightedGraph,
    partition: Partition,
    /// Inter-group pair weights at the last accepted grouping; `IncUpdate`
    /// picks the pair with the largest *increase* relative to this.
    baseline_pairs: BTreeMap<(usize, usize), f64>,
    epoch: u32,
    updates_applied: u64,
}

impl Sgi {
    /// `IniGroup`: builds the initial size-constrained grouping.
    ///
    /// The number of groups `k` is estimated as
    /// `#included-switches / group_size_limit` (§III-C.2), rounded up.
    ///
    /// # Panics
    ///
    /// Panics if an excluded vertex id is out of range or duplicated.
    pub fn ini_group(graph: WeightedGraph, cfg: SgiConfig) -> Self {
        let partition = Self::full_partition(&graph, &cfg);
        let baseline_pairs = pair_weights(&graph, &partition);
        Sgi {
            cfg,
            graph,
            partition,
            baseline_pairs,
            epoch: 1,
            updates_applied: 0,
        }
    }

    fn full_partition(graph: &WeightedGraph, cfg: &SgiConfig) -> Partition {
        let n = graph.num_vertices();
        let mut is_excluded = vec![false; n];
        for &v in &cfg.excluded {
            assert!(v < n, "excluded vertex {v} out of range");
            assert!(!is_excluded[v], "excluded vertex {v} duplicated");
            is_excluded[v] = true;
        }
        let included: Vec<usize> = (0..n).filter(|&v| !is_excluded[v]).collect();
        if included.is_empty() {
            return Partition::from_assignment(vec![CONTROLLER_GROUP; n], 1);
        }
        let k = included.len().div_ceil(cfg.group_size_limit);
        let (sub, map) = graph.subgraph(&included);
        let sub_part = mlkp(
            &sub,
            &MlkpConfig::new(k.max(1))
                .with_max_part_weight(cfg.group_size_limit as f64)
                .with_seed(cfg.seed),
        );
        let mut assignment = vec![CONTROLLER_GROUP; n];
        for (sub_v, &orig_v) in map.iter().enumerate() {
            assignment[orig_v] = sub_part.group_of(sub_v);
        }
        Partition::from_assignment(assignment, sub_part.num_groups())
    }

    /// The current grouping.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The current intensity graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// The configuration in force.
    pub fn config(&self) -> &SgiConfig {
        &self.cfg
    }

    /// Monotonic grouping epoch; bumped by every regroup or update round.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total incremental updates applied so far (Fig. 8's quantity).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Current normalized inter-group traffic intensity `W_inter`.
    pub fn winter(&self) -> f64 {
        normalized_inter_group_intensity(&self.graph, &self.partition)
    }

    /// Replaces the intensity measurements (same vertex count).
    ///
    /// # Panics
    ///
    /// Panics if the vertex count differs from the current graph.
    pub fn set_intensity(&mut self, graph: WeightedGraph) {
        assert_eq!(
            graph.num_vertices(),
            self.graph.num_vertices(),
            "intensity graph vertex count changed"
        );
        self.graph = graph;
    }

    /// Re-runs `IniGroup` from scratch on the current intensity graph
    /// (the controller does this when incremental updates can no longer
    /// keep up, §V-C).
    pub fn regroup(&mut self) {
        self.partition = Self::full_partition(&self.graph, &self.cfg);
        self.baseline_pairs = pair_weights(&self.graph, &self.partition);
        self.epoch += 1;
        self.updates_applied += 1;
    }

    /// `IncUpdate`: greedy merge/split refinement driven by controller load
    /// (Fig. 3 lines 5–16).
    ///
    /// `current_load` is the controller's measured request rate. The load
    /// estimate after each round scales with the inter-group intensity
    /// (punts are proportional to inter-group traffic), and the loop exits
    /// as soon as it drops below `low_threshold`, no pair improves, or
    /// `max_merge_rounds` is hit.
    pub fn inc_update(&mut self, current_load: f64) -> IncUpdateReport {
        let winter_before = self.winter();
        let mut report = IncUpdateReport {
            rounds: 0,
            merged_pairs: Vec::new(),
            winter_before,
            winter_after: winter_before,
            estimated_load_after: current_load,
        };
        if current_load <= self.cfg.high_threshold {
            return report;
        }
        let mut load_est = current_load;
        while load_est > self.cfg.high_threshold && report.rounds < self.cfg.max_merge_rounds {
            let Some((g1, g2)) = self.find_candidate_pair() else {
                break;
            };
            let improved = self.merge_and_split(g1, g2);
            report.rounds += 1;
            report.merged_pairs.push((g1, g2));
            let winter_now = self.winter();
            if winter_before > 0.0 {
                load_est = current_load * (winter_now / winter_before);
            }
            report.winter_after = winter_now;
            report.estimated_load_after = load_est;
            if !improved || load_est < self.cfg.low_threshold {
                break;
            }
        }
        if report.rounds > 0 {
            self.baseline_pairs = pair_weights(&self.graph, &self.partition);
            self.epoch += 1;
            self.updates_applied += 1;
        }
        report
    }

    /// Parallel `IncUpdate` (Appendix B): merges and re-splits several
    /// *disjoint* group pairs in one round, computing the expensive
    /// min-bisections on `std::thread::scope` workers when
    /// [`SgiConfig::parallelism`] exceeds 1.
    ///
    /// Selects up to `max_pairs` disjoint candidate pairs by traffic
    /// increase. Each pair's re-split is a pure function of the (shared,
    /// immutable) intensity graph and current grouping, so computing them
    /// concurrently changes nothing; the results are then *applied*
    /// sequentially in selection order, each accepted only if it improves
    /// `W_inter` by at least `min_improvement` (the same accept/revert
    /// rule as the serial path). The outcome is therefore bit-identical
    /// for every `parallelism` setting.
    pub fn par_inc_update(&mut self, current_load: f64, max_pairs: usize) -> IncUpdateReport {
        let winter_before = self.winter();
        let mut report = IncUpdateReport {
            rounds: 0,
            merged_pairs: Vec::new(),
            winter_before,
            winter_after: winter_before,
            estimated_load_after: current_load,
        };
        if current_load <= self.cfg.high_threshold || max_pairs == 0 {
            return report;
        }
        let pairs = self.find_disjoint_pairs(max_pairs);
        if pairs.is_empty() {
            return report;
        }
        // Compute the re-splits (in parallel when configured); apply
        // sequentially, in selection order.
        let graph = &self.graph;
        let partition = &self.partition;
        let limit = self.cfg.group_size_limit as f64;
        let seed = self.cfg.seed;
        let epoch = self.epoch;
        let resplit = move |&(g1, g2): &(usize, usize)| {
            let mut members = partition.members(g1);
            members.extend(partition.members(g2));
            let (sub, map) = graph.subgraph(&members);
            let split = min_bisection(
                &sub,
                limit,
                seed ^ ((g1 as u64) << 16) ^ g2 as u64 ^ ((epoch as u64) << 32),
            );
            (g1, g2, map, split)
        };
        let workers = self.cfg.parallelism.max(1).min(pairs.len());
        let results: Vec<(usize, usize, Vec<usize>, Partition)> = if workers <= 1 {
            pairs.iter().map(resplit).collect()
        } else {
            // Contiguous chunks, joined in chunk order, keep the result
            // order equal to the sequential path's.
            let chunk_len = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .chunks(chunk_len)
                    .map(|chunk| scope.spawn(move || chunk.iter().map(resplit).collect::<Vec<_>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("merge/split worker panicked"))
                    .collect()
            })
        };

        for (g1, g2, map, split) in results {
            let before = self.winter();
            let old: Vec<usize> = map.iter().map(|&v| self.partition.group_of(v)).collect();
            for (sub_v, &orig_v) in map.iter().enumerate() {
                let target = if split.group_of(sub_v) == 0 { g1 } else { g2 };
                self.partition.assign(orig_v, target);
            }
            let after = self.winter();
            if after >= before * (1.0 - self.cfg.min_improvement) - 1e-12 {
                // Not enough improvement: revert, exactly like the serial
                // merge/split (lateral churn costs more than it earns).
                for (&orig_v, &g) in map.iter().zip(&old) {
                    self.partition.assign(orig_v, g);
                }
                continue;
            }
            report.merged_pairs.push((g1, g2));
        }
        report.winter_after = self.winter();
        if winter_before > 0.0 {
            report.estimated_load_after = current_load * (report.winter_after / winter_before);
        }
        if report.merged_pairs.is_empty() {
            return report;
        }
        report.rounds = 1;
        self.baseline_pairs = pair_weights(&self.graph, &self.partition);
        self.epoch += 1;
        self.updates_applied += 1;
        report
    }

    /// `FindGroups`: the pair of groups whose mutual traffic grew the most
    /// since the last accepted grouping; falls back to the heaviest current
    /// pair when nothing grew.
    fn find_candidate_pair(&self) -> Option<(usize, usize)> {
        let current = pair_weights(&self.graph, &self.partition);
        if current.is_empty() {
            return None;
        }
        let by_delta = current
            .iter()
            .map(|(&pair, &w)| {
                let base = self.baseline_pairs.get(&pair).copied().unwrap_or(0.0);
                (pair, w - base, w)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))?;
        if by_delta.1 > 1e-12 {
            return Some(by_delta.0);
        }
        current
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(&pair, _)| pair)
    }

    /// Greedy selection of up to `max_pairs` disjoint pairs by delta.
    fn find_disjoint_pairs(&self, max_pairs: usize) -> Vec<(usize, usize)> {
        let current = pair_weights(&self.graph, &self.partition);
        let mut scored: Vec<((usize, usize), f64)> = current
            .iter()
            .map(|(&pair, &w)| {
                let base = self.baseline_pairs.get(&pair).copied().unwrap_or(0.0);
                (pair, (w - base).max(w * 1e-6))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        let mut used = std::collections::HashSet::new();
        let mut out = Vec::new();
        for ((g1, g2), _) in scored {
            if out.len() >= max_pairs {
                break;
            }
            if used.contains(&g1) || used.contains(&g2) {
                continue;
            }
            used.insert(g1);
            used.insert(g2);
            out.push((g1, g2));
        }
        out
    }

    /// `MergeGroups` + `SplitGroup`: returns true if the cut improved.
    fn merge_and_split(&mut self, g1: usize, g2: usize) -> bool {
        let mut members = self.partition.members(g1);
        members.extend(self.partition.members(g2));
        if members.len() < 2 {
            return false;
        }
        let before = self.winter();
        let (sub, map) = self.graph.subgraph(&members);
        let split = min_bisection(
            &sub,
            self.cfg.group_size_limit as f64,
            self.cfg.seed ^ ((g1 as u64) << 16) ^ g2 as u64 ^ ((self.epoch as u64) << 32),
        );
        let old: Vec<usize> = map.iter().map(|&v| self.partition.group_of(v)).collect();
        for (sub_v, &orig_v) in map.iter().enumerate() {
            let target = if split.group_of(sub_v) == 0 { g1 } else { g2 };
            self.partition.assign(orig_v, target);
        }
        let after = self.winter();
        let required = before * (1.0 - self.cfg.min_improvement);
        if after >= required - 1e-12 {
            // Revert: not enough improvement. Lateral or marginal moves
            // would churn the data plane (reassignments, G-FIB rebuilds,
            // transient punts) for less than they cost.
            for (&orig_v, &g) in map.iter().zip(&old) {
                self.partition.assign(orig_v, g);
            }
            return false;
        }
        true
    }
}

/// Inter-group pair weights: `(min_group, max_group) -> total crossing
/// intensity`. Excluded vertices are skipped (their traffic is permanently
/// controller-handled and no regrouping can help it).
pub(crate) fn pair_weights(
    graph: &WeightedGraph,
    part: &Partition,
) -> BTreeMap<(usize, usize), f64> {
    let mut out: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for u in 0..graph.num_vertices() {
        let gu = part.group_of(u);
        if gu == CONTROLLER_GROUP {
            continue;
        }
        for &(v, w) in graph.neighbors(u) {
            if u < v {
                let gv = part.group_of(v);
                if gv == CONTROLLER_GROUP || gu == gv {
                    continue;
                }
                let key = if gu < gv { (gu, gv) } else { (gv, gu) };
                *out.entry(key).or_insert(0.0) += w;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_graph(k: usize, size: usize, seed: u64) -> WeightedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = k * size;
        let mut g = WeightedGraph::new(n);
        for c in 0..k {
            let base = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    if rng.gen_bool(0.5) {
                        g.add_edge(base + i, base + j, 4.0 + rng.gen::<f64>());
                    }
                }
            }
        }
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u / size != v / size {
                g.add_edge(u, v, 0.1);
            }
        }
        g
    }

    #[test]
    fn ini_group_produces_feasible_grouping() {
        let g = clustered_graph(5, 10, 1);
        let sgi = Sgi::ini_group(g.clone(), SgiConfig::new(10).with_seed(2));
        assert!(sgi.partition().respects_limit(&g, 10.0));
        assert!(sgi.partition().num_groups() >= 5);
        assert!(sgi.winter() < 0.3);
        assert_eq!(sgi.epoch(), 1);
    }

    #[test]
    fn exclusion_pins_vertices_to_controller() {
        let g = clustered_graph(3, 8, 4);
        let sgi = Sgi::ini_group(g, SgiConfig::new(8).with_excluded(vec![0, 5]).with_seed(1));
        assert_eq!(sgi.partition().group_of(0), CONTROLLER_GROUP);
        assert_eq!(sgi.partition().group_of(5), CONTROLLER_GROUP);
        assert_eq!(sgi.partition().excluded(), vec![0, 5]);
    }

    #[test]
    fn inc_update_noops_when_underloaded() {
        let g = clustered_graph(4, 8, 7);
        let mut sgi = Sgi::ini_group(g, SgiConfig::new(8).with_thresholds(10.0, 100.0));
        let report = sgi.inc_update(50.0); // below high threshold
        assert_eq!(report.rounds, 0);
        assert_eq!(sgi.updates_applied(), 0);
    }

    #[test]
    fn inc_update_reduces_winter_after_traffic_shift() {
        // Build two clusters; group them; then shift traffic so two groups
        // start talking heavily. IncUpdate should repair the grouping.
        let mut g = WeightedGraph::new(12);
        for c in 0..3 {
            let b = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(b + i, b + j, 10.0);
                }
            }
        }
        let mut sgi = Sgi::ini_group(
            g.clone(),
            SgiConfig::new(4).with_thresholds(1.0, 10.0).with_seed(3),
        );
        let w0 = sgi.winter();
        assert!(w0 < 0.05, "initial grouping should be clean, got {w0}");

        // Traffic shifts: vertices 0,1 now talk mostly to 4,5 (cross-group).
        let mut shifted = g.clone();
        shifted.add_edge(0, 4, 50.0);
        shifted.add_edge(1, 5, 50.0);
        sgi.set_intensity(shifted.clone());
        let w1 = sgi.winter();
        assert!(w1 > 0.2, "shift should raise winter, got {w1}");

        let report = sgi.inc_update(100.0);
        assert!(report.rounds >= 1);
        assert!(
            report.winter_after < w1,
            "winter {} not improved from {w1}",
            report.winter_after
        );
        assert!(sgi.partition().respects_limit(&shifted, 4.0));
        assert_eq!(sgi.updates_applied(), 1);
        assert_eq!(sgi.epoch(), 2);
    }

    #[test]
    fn par_inc_update_matches_serial_quality() {
        let g = clustered_graph(6, 8, 13);
        let cfg = SgiConfig::new(8).with_thresholds(0.1, 1.0).with_seed(5);
        let mut serial = Sgi::ini_group(g.clone(), cfg.clone());
        let mut parallel = Sgi::ini_group(g.clone(), cfg);

        // Shift: connect clusters 0↔1 and 2↔3 heavily.
        let mut shifted = g.clone();
        for i in 0..4 {
            shifted.add_edge(i, 8 + i, 30.0);
            shifted.add_edge(16 + i, 24 + i, 30.0);
        }
        serial.set_intensity(shifted.clone());
        parallel.set_intensity(shifted.clone());

        let rs = serial.inc_update(1e9);
        let rp = parallel.par_inc_update(1e9, 2);
        assert!(rp.rounds == 1 && !rp.merged_pairs.is_empty());
        assert!(parallel.partition().respects_limit(&shifted, 8.0));
        // Both should materially cut winter; parallel handles 2 pairs at once.
        assert!(rs.winter_after <= rs.winter_before);
        assert!(rp.winter_after <= rp.winter_before + 1e-9);
    }

    #[test]
    fn par_inc_update_is_bit_identical_across_parallelism() {
        let g = clustered_graph(8, 6, 77);
        let mut shifted = g.clone();
        for i in 0..3 {
            shifted.add_edge(i, 6 + i, 40.0);
            shifted.add_edge(12 + i, 18 + i, 40.0);
            shifted.add_edge(24 + i, 30 + i, 40.0);
        }
        let run = |parallelism: usize| {
            let cfg = SgiConfig::new(6)
                .with_thresholds(0.1, 1.0)
                .with_seed(5)
                .with_parallelism(parallelism);
            let mut sgi = Sgi::ini_group(g.clone(), cfg);
            sgi.set_intensity(shifted.clone());
            let report = sgi.par_inc_update(1e9, 4);
            (report, sgi.partition().assignment().to_vec(), sgi.epoch())
        };
        let serial = run(1);
        for n in [2, 4, 16] {
            assert_eq!(run(n), serial, "parallelism={n} diverged from serial");
        }
        assert!(!serial.0.merged_pairs.is_empty(), "update did nothing");
    }

    #[test]
    fn par_inc_update_reverts_lateral_moves() {
        // A graph whose grouping is already optimal: every re-split is a
        // lateral move and must be rejected, leaving the report empty and
        // the epoch untouched.
        let g = clustered_graph(4, 6, 31);
        let mut sgi = Sgi::ini_group(
            g,
            SgiConfig::new(6)
                .with_thresholds(0.0, 0.0)
                .with_seed(9)
                .with_min_improvement(0.10),
        );
        let winter0 = sgi.winter();
        let epoch0 = sgi.epoch();
        let report = sgi.par_inc_update(f64::INFINITY, 4);
        assert!(sgi.winter() <= winter0 + 1e-9);
        if report.merged_pairs.is_empty() {
            assert_eq!(sgi.epoch(), epoch0, "no accepted pair must not bump epoch");
            assert_eq!(sgi.updates_applied(), 0);
        }
    }

    #[test]
    fn regroup_resets_baseline_and_bumps_epoch() {
        let g = clustered_graph(3, 6, 21);
        let mut sgi = Sgi::ini_group(g, SgiConfig::new(6));
        let e0 = sgi.epoch();
        sgi.regroup();
        assert_eq!(sgi.epoch(), e0 + 1);
        assert_eq!(sgi.updates_applied(), 1);
    }

    #[test]
    fn merge_and_split_never_worsens_winter() {
        let g = clustered_graph(4, 6, 31);
        let mut sgi = Sgi::ini_group(g, SgiConfig::new(6).with_thresholds(0.0, 0.0).with_seed(9));
        for round in 0..5 {
            let before = sgi.winter();
            sgi.inc_update(f64::INFINITY);
            let after = sgi.winter();
            assert!(
                after <= before + 1e-9,
                "round {round}: winter got worse {before} -> {after}"
            );
        }
    }

    #[test]
    fn pair_weights_counts_cross_edges() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0); // intra
        g.add_edge(0, 2, 2.0); // cross 0-1
        g.add_edge(1, 3, 3.0); // cross 0-1
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        let pw = pair_weights(&g, &p);
        assert_eq!(pw.len(), 1);
        assert_eq!(pw[&(0, 1)], 5.0);
    }

    #[test]
    fn all_excluded_graph_degenerates_gracefully() {
        let g = WeightedGraph::new(3);
        let sgi = Sgi::ini_group(g, SgiConfig::new(2).with_excluded(vec![0, 1, 2]));
        assert_eq!(sgi.partition().excluded().len(), 3);
        assert_eq!(sgi.winter(), 0.0);
    }
}
