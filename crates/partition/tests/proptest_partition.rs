//! Property tests for the partitioning stack: feasibility invariants of
//! MLkP/SGI and correctness of Stoer–Wagner against brute force.

use lazyctrl_partition::{
    metrics, mincut::stoer_wagner, mlkp, MlkpConfig, Sgi, SgiConfig, WeightedGraph,
    CONTROLLER_GROUP,
};
use proptest::prelude::*;

/// Random sparse graph: n vertices, edge probability p, weights in [1, 10].
fn arb_graph(max_n: usize) -> impl Strategy<Value = WeightedGraph> {
    (2usize..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    g.add_edge(u, v, rng.gen_range(1..=10) as f64);
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MLkP always yields a complete, feasible partition.
    #[test]
    fn mlkp_is_always_feasible(g in arb_graph(40), k in 1usize..6, seed in any::<u64>()) {
        let n = g.num_vertices();
        let cap = (n.div_ceil(k) + 1) as f64;
        let part = mlkp(&g, &MlkpConfig::new(k).with_max_part_weight(cap).with_seed(seed));
        // Complete cover.
        let covered: usize = part.groups().iter().map(Vec::len).sum();
        prop_assert_eq!(covered, n);
        // Cap respected.
        prop_assert!(part.respects_limit(&g, cap));
        // Dense group ids.
        for v in 0..n {
            prop_assert!(part.group_of(v) < part.num_groups());
        }
    }

    /// The cut metric is bounded by the total weight and zero for k=1.
    #[test]
    fn cut_bounds(g in arb_graph(30), seed in any::<u64>()) {
        let single = mlkp(&g, &MlkpConfig::new(1).with_seed(seed));
        prop_assert_eq!(metrics::edge_cut(&g, &single), 0.0);
        let part = mlkp(&g, &MlkpConfig::new(3).with_seed(seed));
        let cut = metrics::edge_cut(&g, &part);
        prop_assert!(cut >= 0.0);
        prop_assert!(cut <= g.total_edge_weight() + 1e-9);
        let w = metrics::normalized_inter_group_intensity(&g, &part);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
    }

    /// Stoer–Wagner equals brute force on small graphs.
    #[test]
    fn stoer_wagner_is_optimal(g in arb_graph(9)) {
        let n = g.num_vertices();
        let sw = stoer_wagner(&g).expect("n >= 2");
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            let mut cut = 0.0;
            for u in 0..n {
                for &(v, w) in g.neighbors(u) {
                    if u < v && ((mask >> u) & 1) != ((mask >> v) & 1) {
                        cut += w;
                    }
                }
            }
            best = best.min(cut);
        }
        prop_assert!((sw.weight - best).abs() < 1e-9,
            "sw {} != brute {}", sw.weight, best);
        // The reported side must realize the reported weight.
        let mut realized = 0.0;
        for u in 0..n {
            for &(v, w) in g.neighbors(u) {
                if u < v && sw.side[u] != sw.side[v] {
                    realized += w;
                }
            }
        }
        prop_assert!((realized - sw.weight).abs() < 1e-9);
    }

    /// SGI: IniGroup + repeated IncUpdate never violates the size cap and
    /// never increases W_inter.
    #[test]
    fn sgi_maintains_invariants(g in arb_graph(30), limit in 3usize..10, seed in any::<u64>()) {
        let n = g.num_vertices();
        let mut sgi = Sgi::ini_group(
            g.clone(),
            SgiConfig::new(limit).with_thresholds(0.0, 0.0).with_seed(seed),
        );
        prop_assert!(sgi.partition().respects_limit(&g, limit as f64));
        let mut winter = sgi.winter();
        for _ in 0..3 {
            sgi.inc_update(f64::INFINITY);
            let now = sgi.winter();
            prop_assert!(now <= winter + 1e-9, "winter increased {winter} -> {now}");
            winter = now;
            prop_assert!(sgi.partition().respects_limit(&g, limit as f64));
            let covered: usize = sgi.partition().groups().iter().map(Vec::len).sum();
            prop_assert_eq!(covered, n);
        }
    }

    /// Exclusion: excluded vertices stay excluded through updates.
    #[test]
    fn exclusion_is_sticky(g in arb_graph(20), seed in any::<u64>()) {
        let excluded = vec![0, 1];
        let mut sgi = Sgi::ini_group(
            g,
            SgiConfig::new(5)
                .with_excluded(excluded.clone())
                .with_thresholds(0.0, 0.0)
                .with_seed(seed),
        );
        sgi.inc_update(f64::INFINITY);
        for &v in &excluded {
            prop_assert_eq!(sgi.partition().group_of(v), CONTROLLER_GROUP);
        }
    }
}
