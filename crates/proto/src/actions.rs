//! Flow-table actions, including the paper's `Encap` vendor extension.

use std::net::Ipv4Addr;

use bytes::BufMut;
use lazyctrl_net::{PortNo, TenantId};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

const A_OUTPUT: u16 = 0;
const A_SET_VLAN: u16 = 1;
const A_STRIP_VLAN: u16 = 2;
const A_DROP: u16 = 0xff00;
const A_ENCAP: u16 = 0xffe0; // LazyCtrl vendor action

/// An action applied to packets matching a flow rule.
///
/// `Encap` is the LazyCtrl extension from §IV-B: "When a rule with this
/// action is applied to a flow, the switch will encapsulate the packets with
/// a new header targeting a given remote IP address."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out of a port (possibly a reserved port such as
    /// [`PortNo::FLOOD`] or [`PortNo::CONTROLLER`]).
    Output(PortNo),
    /// Rewrite the VLAN (tenant) tag.
    SetVlan(TenantId),
    /// Remove the VLAN tag.
    StripVlan,
    /// Explicitly drop the packet.
    Drop,
    /// LazyCtrl extension: encapsulate and tunnel to a remote edge switch.
    Encap {
        /// Underlay IP of the egress edge switch.
        remote: Ipv4Addr,
        /// Grouping epoch stamped into the tunnel header.
        key: u32,
    },
}

impl Action {
    /// Wire length of one encoded action (fixed-size records keep the codec
    /// trivial; OpenFlow 1.0 pads similarly).
    pub(crate) const WIRE_LEN: usize = 2 + 8;

    pub(crate) fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match *self {
            Action::Output(port) => {
                buf.put_u16(A_OUTPUT);
                buf.put_u16(port.as_u16());
                buf.put_slice(&[0; 6]);
            }
            Action::SetVlan(t) => {
                buf.put_u16(A_SET_VLAN);
                buf.put_u16(t.as_u16());
                buf.put_slice(&[0; 6]);
            }
            Action::StripVlan => {
                buf.put_u16(A_STRIP_VLAN);
                buf.put_slice(&[0; 8]);
            }
            Action::Drop => {
                buf.put_u16(A_DROP);
                buf.put_slice(&[0; 8]);
            }
            Action::Encap { remote, key } => {
                buf.put_u16(A_ENCAP);
                buf.put_slice(&remote.octets());
                buf.put_u32(key);
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let kind = r.u16()?;
        let body: [u8; 8] = r.array()?;
        Ok(match kind {
            A_OUTPUT => Action::Output(PortNo::new(u16::from_be_bytes([body[0], body[1]]))),
            A_SET_VLAN => {
                let raw = u16::from_be_bytes([body[0], body[1]]);
                if raw > 0x0fff {
                    return Err(ProtoError::InvalidField {
                        field: "action.set_vlan",
                        value: raw as u64,
                    });
                }
                Action::SetVlan(TenantId::new(raw))
            }
            A_STRIP_VLAN => Action::StripVlan,
            A_DROP => Action::Drop,
            A_ENCAP => Action::Encap {
                remote: Ipv4Addr::new(body[0], body[1], body[2], body[3]),
                key: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
            },
            other => {
                return Err(ProtoError::InvalidField {
                    field: "action.type",
                    value: other as u64,
                })
            }
        })
    }
}

/// Encodes a list of actions with a count prefix.
pub(crate) fn encode_actions<B: BufMut>(actions: &[Action], buf: &mut B) {
    buf.put_u32(actions.len() as u32);
    for a in actions {
        a.encode_into(buf);
    }
}

/// Decodes a count-prefixed action list.
pub(crate) fn decode_actions(r: &mut Reader<'_>) -> Result<Vec<Action>> {
    let n = r.count_prefix(Action::WIRE_LEN)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Action::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(a: Action) -> Action {
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), Action::WIRE_LEN);
        Action::decode(&mut Reader::new(&buf, "action")).unwrap()
    }

    #[test]
    fn all_variants_round_trip() {
        for a in [
            Action::Output(PortNo::new(3)),
            Action::Output(PortNo::FLOOD),
            Action::Output(PortNo::CONTROLLER),
            Action::SetVlan(TenantId::new(99)),
            Action::StripVlan,
            Action::Drop,
            Action::Encap {
                remote: Ipv4Addr::new(10, 1, 2, 3),
                key: 0xfeed_f00d,
            },
        ] {
            assert_eq!(round_trip(a), a);
        }
    }

    #[test]
    fn action_list_round_trips() {
        let actions = vec![
            Action::SetVlan(TenantId::new(5)),
            Action::Encap {
                remote: Ipv4Addr::new(10, 0, 0, 9),
                key: 1,
            },
        ];
        let mut buf = Vec::new();
        encode_actions(&actions, &mut buf);
        let back = decode_actions(&mut Reader::new(&buf, "actions")).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn unknown_action_type_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0x1234u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        assert!(matches!(
            Action::decode(&mut Reader::new(&buf, "action")),
            Err(ProtoError::InvalidField {
                field: "action.type",
                ..
            })
        ));
    }

    #[test]
    fn wide_vlan_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&A_SET_VLAN.to_be_bytes());
        buf.extend_from_slice(&0xffffu16.to_be_bytes());
        buf.extend_from_slice(&[0; 6]);
        assert!(Action::decode(&mut Reader::new(&buf, "action")).is_err());
    }

    #[test]
    fn empty_action_list() {
        let mut buf = Vec::new();
        encode_actions(&[], &mut buf);
        let back = decode_actions(&mut Reader::new(&buf, "actions")).unwrap();
        assert!(back.is_empty());
    }
}
