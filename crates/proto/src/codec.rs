//! Streaming framer: turns a byte stream into complete [`Message`]s.
//!
//! Control/state/peer links are modelled as reliable byte streams (TCP/SSH
//! tunnels in the paper, §III-B.3). The codec buffers bytes until a complete
//! length-prefixed message is available, exactly like an OpenFlow connection
//! handler would.

use crate::{Message, MsgType, ProtoError, Result, OFP_HEADER_LEN, PROTO_VERSION};

/// Incremental decoder for a stream of control messages.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use lazyctrl_proto::{codec::MessageCodec, Message, OfMessage};
///
/// let a = Message::of(1, OfMessage::Hello);
/// let b = Message::of(2, OfMessage::EchoRequest(vec![5]));
/// let mut stream = a.encode();
/// stream.extend(b.encode());
///
/// let mut codec = MessageCodec::new();
/// // Feed the stream one byte at a time to exercise partial reads.
/// let mut out = Vec::new();
/// for byte in stream {
///     codec.feed(&[byte]);
///     while let Some(msg) = codec.next_message()? {
///         out.push(msg);
///     }
/// }
/// assert_eq!(out, vec![a, b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct MessageCodec {
    buf: Vec<u8>,
    /// Bytes consumed from the front of `buf` (compacted lazily).
    read: usize,
}

impl MessageCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        MessageCodec::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing if more than half the buffer is dead.
        if self.read > 4096 && self.read * 2 > self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Attempts to frame and decode the next message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a decode error for malformed frames; the malformed frame is
    /// discarded so the stream can attempt to resynchronize.
    pub fn next_message(&mut self) -> Result<Option<Message>> {
        let avail = &self.buf[self.read..];
        if avail.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        // Peek at the header without a full decode.
        let version = avail[0];
        if version != PROTO_VERSION {
            // Drop one byte and report: resynchronization is the caller's
            // policy decision, but we must not loop forever.
            self.read += 1;
            return Err(ProtoError::BadVersion(version));
        }
        MsgType::from_u8(avail[1]).inspect_err(|_e| {
            self.read += 1;
        })?;
        let length = u16::from_be_bytes([avail[2], avail[3]]) as usize;
        if length < OFP_HEADER_LEN {
            self.read += 1;
            return Err(ProtoError::LengthMismatch {
                declared: length,
                actual: OFP_HEADER_LEN,
            });
        }
        if avail.len() < length {
            return Ok(None);
        }
        let frame = &avail[..length];
        let result = Message::decode(frame);
        self.read += length;
        result.map(Some)
    }

    /// Drains all currently decodable messages.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first malformed frame.
    pub fn drain(&mut self) -> Result<Vec<Message>> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LazyMsg, OfMessage};
    use lazyctrl_net::SwitchId;

    #[test]
    fn frames_back_to_back_messages() {
        let msgs = vec![
            Message::of(1, OfMessage::Hello),
            Message::of(2, OfMessage::EchoRequest(vec![1, 2, 3])),
            Message::lazy(
                3,
                LazyMsg::KeepAlive(crate::KeepAliveMsg {
                    from: SwitchId::new(1),
                    seq: 1,
                }),
            ),
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(m.encode());
        }
        let mut codec = MessageCodec::new();
        codec.feed(&stream);
        assert_eq!(codec.drain().unwrap(), msgs);
        assert_eq!(codec.pending(), 0);
    }

    #[test]
    fn partial_feeds_wait_for_completion() {
        let m = Message::of(5, OfMessage::EchoReply(vec![7; 40]));
        let wire = m.encode();
        let mut codec = MessageCodec::new();
        codec.feed(&wire[..10]);
        assert_eq!(codec.next_message().unwrap(), None);
        codec.feed(&wire[10..wire.len() - 1]);
        assert_eq!(codec.next_message().unwrap(), None);
        codec.feed(&wire[wire.len() - 1..]);
        assert_eq!(codec.next_message().unwrap(), Some(m));
    }

    #[test]
    fn bad_version_is_reported_and_skipped() {
        let good = Message::of(1, OfMessage::Hello);
        let mut stream = vec![0x42u8]; // junk byte
        stream.extend(good.encode());
        let mut codec = MessageCodec::new();
        codec.feed(&stream);
        assert!(matches!(
            codec.next_message(),
            Err(ProtoError::BadVersion(0x42))
        ));
        // After skipping the junk byte the good message parses.
        assert_eq!(codec.next_message().unwrap(), Some(good));
    }

    #[test]
    fn undersized_length_field_is_rejected() {
        let mut frame = Message::of(1, OfMessage::Hello).encode();
        frame[2] = 0;
        frame[3] = 4; // length 4 < header size
        let mut codec = MessageCodec::new();
        codec.feed(&frame);
        assert!(matches!(
            codec.next_message(),
            Err(ProtoError::LengthMismatch { declared: 4, .. })
        ));
    }

    #[test]
    fn compaction_does_not_lose_data() {
        let m = Message::of(9, OfMessage::EchoRequest(vec![1; 100]));
        let wire = m.encode();
        let mut codec = MessageCodec::new();
        // Push enough traffic to trigger compaction several times.
        for _ in 0..500 {
            codec.feed(&wire);
            assert_eq!(codec.next_message().unwrap().as_ref(), Some(&m));
        }
        assert_eq!(codec.pending(), 0);
    }
}
