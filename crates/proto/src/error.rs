use std::fmt;

use lazyctrl_net::NetError;

/// Errors produced while encoding or decoding control-protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The buffer ended before a complete field/message was read.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// An unknown message type byte.
    UnknownMsgType(u8),
    /// An unknown LazyCtrl extension subtype.
    UnknownLazySubtype(u16),
    /// A field held an invalid value.
    InvalidField {
        /// Which field.
        field: &'static str,
        /// Offending value widened to u64.
        value: u64,
    },
    /// The header's length field disagrees with the message body.
    LengthMismatch {
        /// Length claimed by the header.
        declared: usize,
        /// Length actually present/consumed.
        actual: usize,
    },
    /// The protocol version byte is not ours.
    BadVersion(u8),
    /// An embedded packet failed to parse.
    Net(NetError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            ProtoError::UnknownMsgType(t) => write!(f, "unknown message type {t:#04x}"),
            ProtoError::UnknownLazySubtype(t) => {
                write!(f, "unknown lazyctrl extension subtype {t:#06x}")
            }
            ProtoError::InvalidField { field, value } => {
                write!(f, "invalid value {value:#x} for field {field}")
            }
            ProtoError::LengthMismatch { declared, actual } => write!(
                f,
                "header declares {declared} bytes but message occupies {actual}"
            ),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v:#04x}"),
            ProtoError::Net(e) => write!(f, "embedded packet: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for ProtoError {
    fn from(e: NetError) -> Self {
        ProtoError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<ProtoError> = vec![
            ProtoError::Truncated {
                what: "header",
                needed: 8,
                available: 2,
            },
            ProtoError::UnknownMsgType(0x7f),
            ProtoError::UnknownLazySubtype(0x1234),
            ProtoError::InvalidField {
                field: "port",
                value: 99,
            },
            ProtoError::LengthMismatch {
                declared: 10,
                actual: 12,
            },
            ProtoError::BadVersion(9),
            ProtoError::Net(NetError::InvalidAddress("x".into())),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn net_error_source_is_preserved() {
        use std::error::Error;
        let e = ProtoError::Net(NetError::InvalidAddress("y".into()));
        assert!(e.source().is_some());
    }
}
