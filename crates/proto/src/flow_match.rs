//! OpenFlow 1.0-style match structure (the subset LazyCtrl needs).

use bytes::BufMut;
use lazyctrl_net::{EtherType, MacAddr, PortNo, TenantId};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::Result;

/// Wildcard bits: a set bit means "this field is wildcarded".
const W_IN_PORT: u8 = 1 << 0;
const W_DL_SRC: u8 = 1 << 1;
const W_DL_DST: u8 = 1 << 2;
const W_DL_VLAN: u8 = 1 << 3;
const W_DL_TYPE: u8 = 1 << 4;

/// A flow match over the fields the LazyCtrl data plane uses: ingress port,
/// source/destination MAC, tenant VLAN and EtherType.
///
/// Unset (`None`) fields are wildcards, as in OpenFlow 1.0. The default
/// match (`FlowMatch::default()`) matches everything.
///
/// # Example
///
/// ```
/// use lazyctrl_net::MacAddr;
/// use lazyctrl_proto::FlowMatch;
///
/// let m = FlowMatch::to_dst(MacAddr::for_host(9));
/// assert!(m.matches(None, None, Some(MacAddr::for_host(9)), None, None));
/// assert!(!m.matches(None, None, Some(MacAddr::for_host(8)), None, None));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct FlowMatch {
    /// Ingress port, if matched.
    pub in_port: Option<PortNo>,
    /// Source MAC, if matched.
    pub dl_src: Option<MacAddr>,
    /// Destination MAC, if matched.
    pub dl_dst: Option<MacAddr>,
    /// Tenant VLAN id, if matched.
    pub dl_vlan: Option<TenantId>,
    /// EtherType, if matched.
    pub dl_type: Option<EtherType>,
}

impl FlowMatch {
    /// A match on destination MAC only — the shape of rule the LazyCtrl
    /// controller installs for inter-group unicast flows.
    pub fn to_dst(dst: MacAddr) -> Self {
        FlowMatch {
            dl_dst: Some(dst),
            ..FlowMatch::default()
        }
    }

    /// A match on (src, dst) MAC pair — fine-grained flow rules.
    pub fn for_pair(src: MacAddr, dst: MacAddr) -> Self {
        FlowMatch {
            dl_src: Some(src),
            dl_dst: Some(dst),
            ..FlowMatch::default()
        }
    }

    /// True if every specified field equals the packet's value.
    pub fn matches(
        &self,
        in_port: Option<PortNo>,
        dl_src: Option<MacAddr>,
        dl_dst: Option<MacAddr>,
        dl_vlan: Option<TenantId>,
        dl_type: Option<EtherType>,
    ) -> bool {
        fn field_ok<T: PartialEq>(want: Option<T>, got: Option<T>) -> bool {
            match want {
                None => true,
                Some(w) => got.map(|g| g == w).unwrap_or(false),
            }
        }
        field_ok(self.in_port, in_port)
            && field_ok(self.dl_src, dl_src)
            && field_ok(self.dl_dst, dl_dst)
            && field_ok(self.dl_vlan, dl_vlan)
            && field_ok(self.dl_type, dl_type)
    }

    /// Number of specified (non-wildcard) fields; higher is more specific.
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.dl_src.is_some() as u32
            + self.dl_dst.is_some() as u32
            + self.dl_vlan.is_some() as u32
            + self.dl_type.is_some() as u32
    }

    /// Wire length of the encoded match.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) const WIRE_LEN: usize = 1 + 2 + 6 + 6 + 2 + 2;

    pub(crate) fn encode_into<B: BufMut>(&self, buf: &mut B) {
        let mut wildcards = 0u8;
        if self.in_port.is_none() {
            wildcards |= W_IN_PORT;
        }
        if self.dl_src.is_none() {
            wildcards |= W_DL_SRC;
        }
        if self.dl_dst.is_none() {
            wildcards |= W_DL_DST;
        }
        if self.dl_vlan.is_none() {
            wildcards |= W_DL_VLAN;
        }
        if self.dl_type.is_none() {
            wildcards |= W_DL_TYPE;
        }
        buf.put_u8(wildcards);
        buf.put_u16(self.in_port.map(PortNo::as_u16).unwrap_or(0));
        buf.put_slice(&self.dl_src.unwrap_or(MacAddr::ZERO).octets());
        buf.put_slice(&self.dl_dst.unwrap_or(MacAddr::ZERO).octets());
        buf.put_u16(self.dl_vlan.map(TenantId::as_u16).unwrap_or(0));
        buf.put_u16(self.dl_type.map(EtherType::as_u16).unwrap_or(0));
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let wildcards = r.u8()?;
        let in_port = PortNo::new(r.u16()?);
        let dl_src = MacAddr::new(r.array()?);
        let dl_dst = MacAddr::new(r.array()?);
        let vlan_raw = r.u16()? & 0x0fff;
        let dl_type = EtherType(r.u16()?);
        Ok(FlowMatch {
            in_port: (wildcards & W_IN_PORT == 0).then_some(in_port),
            dl_src: (wildcards & W_DL_SRC == 0).then_some(dl_src),
            dl_dst: (wildcards & W_DL_DST == 0).then_some(dl_dst),
            dl_vlan: (wildcards & W_DL_VLAN == 0).then_some(TenantId::new(vlan_raw)),
            dl_type: (wildcards & W_DL_TYPE == 0).then_some(dl_type),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: FlowMatch) -> FlowMatch {
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        assert_eq!(buf.len(), FlowMatch::WIRE_LEN);
        FlowMatch::decode(&mut Reader::new(&buf, "match")).unwrap()
    }

    #[test]
    fn wildcard_all_round_trips() {
        let m = FlowMatch::default();
        assert_eq!(round_trip(m), m);
        assert!(m.matches(None, None, None, None, None));
        assert!(m.matches(
            Some(PortNo::new(3)),
            Some(MacAddr::for_host(1)),
            Some(MacAddr::for_host(2)),
            Some(TenantId::new(9)),
            Some(EtherType::IPV4)
        ));
        assert_eq!(m.specificity(), 0);
    }

    #[test]
    fn fully_specified_round_trips() {
        let m = FlowMatch {
            in_port: Some(PortNo::new(7)),
            dl_src: Some(MacAddr::for_host(1)),
            dl_dst: Some(MacAddr::for_host(2)),
            dl_vlan: Some(TenantId::new(42)),
            dl_type: Some(EtherType::ARP),
        };
        assert_eq!(round_trip(m), m);
        assert_eq!(m.specificity(), 5);
    }

    #[test]
    fn matching_semantics() {
        let m = FlowMatch::for_pair(MacAddr::for_host(1), MacAddr::for_host(2));
        assert!(m.matches(
            Some(PortNo::new(9)),
            Some(MacAddr::for_host(1)),
            Some(MacAddr::for_host(2)),
            None,
            None
        ));
        // wrong src
        assert!(!m.matches(
            None,
            Some(MacAddr::for_host(3)),
            Some(MacAddr::for_host(2)),
            None,
            None
        ));
        // specified field but packet lacks it
        assert!(!m.matches(None, None, Some(MacAddr::for_host(2)), None, None));
    }

    #[test]
    fn to_dst_matches_only_dst() {
        let m = FlowMatch::to_dst(MacAddr::for_host(5));
        assert_eq!(m.specificity(), 1);
        assert!(m.matches(
            None,
            Some(MacAddr::for_host(9)),
            Some(MacAddr::for_host(5)),
            None,
            None
        ));
    }
}
