use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

/// Protocol version byte. OpenFlow 1.0 uses `0x01`; the LazyCtrl extension
/// keeps that version and adds vendor messages, exactly as the paper's
/// prototype extends OpenFlow v1.0 (§IV-B).
pub const PROTO_VERSION: u8 = 0x01;

/// Length of the fixed message header: version, type, length, xid.
pub const OFP_HEADER_LEN: usize = 8;

/// Message type discriminants, following OpenFlow 1.0 numbering for the
/// standard subset and reserving `0xf0` for the LazyCtrl extension envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MsgType {
    /// Connection handshake.
    Hello = 0,
    /// Error report.
    Error = 1,
    /// Liveness probe.
    EchoRequest = 2,
    /// Liveness probe response.
    EchoReply = 3,
    /// Controller asks for datapath features.
    FeaturesRequest = 5,
    /// Switch feature description.
    FeaturesReply = 6,
    /// Switch-to-controller: packet missed all tables.
    PacketIn = 10,
    /// Controller-to-switch: emit this packet.
    PacketOut = 13,
    /// Controller-to-switch: modify the flow table.
    FlowMod = 14,
    /// Statistics request.
    StatsRequest = 16,
    /// Statistics reply.
    StatsReply = 17,
    /// LazyCtrl vendor extension envelope (grouping, state sync, keep-alive,
    /// bargaining). Subtype lives in the body.
    Lazy = 0xf0,
    /// Controller-cluster envelope (C-LIB replication, ownership transfer,
    /// controller heartbeats, host lookups). Subtype lives in the body.
    Cluster = 0xf1,
}

impl MsgType {
    /// Parses a raw type byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => MsgType::Hello,
            1 => MsgType::Error,
            2 => MsgType::EchoRequest,
            3 => MsgType::EchoReply,
            5 => MsgType::FeaturesRequest,
            6 => MsgType::FeaturesReply,
            10 => MsgType::PacketIn,
            13 => MsgType::PacketOut,
            14 => MsgType::FlowMod,
            16 => MsgType::StatsRequest,
            17 => MsgType::StatsReply,
            0xf0 => MsgType::Lazy,
            0xf1 => MsgType::Cluster,
            other => return Err(ProtoError::UnknownMsgType(other)),
        })
    }
}

/// The fixed 8-byte header preceding every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Header {
    pub version: u8,
    pub msg_type: MsgType,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id, echoed in replies.
    pub xid: u32,
}

impl Header {
    pub(crate) fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.version);
        buf.put_u8(self.msg_type as u8);
        buf.put_u16(self.length);
        buf.put_u32(self.xid);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let msg_type = MsgType::from_u8(r.u8()?)?;
        let length = r.u16()?;
        let xid = r.u32()?;
        if (length as usize) < OFP_HEADER_LEN {
            return Err(ProtoError::LengthMismatch {
                declared: length as usize,
                actual: OFP_HEADER_LEN,
            });
        }
        Ok(Header {
            version,
            msg_type,
            length,
            xid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = Header {
            version: PROTO_VERSION,
            msg_type: MsgType::PacketIn,
            length: 64,
            xid: 0xdead_beef,
        };
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), OFP_HEADER_LEN);
        let mut r = Reader::new(&buf, "header");
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn rejects_wrong_version() {
        let buf = [0x04, 0, 0, 8, 0, 0, 0, 0];
        let mut r = Reader::new(&buf, "header");
        assert!(matches!(
            Header::decode(&mut r),
            Err(ProtoError::BadVersion(0x04))
        ));
    }

    #[test]
    fn rejects_unknown_type() {
        let buf = [PROTO_VERSION, 0x99, 0, 8, 0, 0, 0, 0];
        let mut r = Reader::new(&buf, "header");
        assert!(matches!(
            Header::decode(&mut r),
            Err(ProtoError::UnknownMsgType(0x99))
        ));
    }

    #[test]
    fn rejects_undersized_length() {
        let buf = [PROTO_VERSION, 0, 0, 4, 0, 0, 0, 0];
        let mut r = Reader::new(&buf, "header");
        assert!(matches!(
            Header::decode(&mut r),
            Err(ProtoError::LengthMismatch { declared: 4, .. })
        ));
    }

    #[test]
    fn all_known_types_round_trip() {
        for t in [
            MsgType::Hello,
            MsgType::Error,
            MsgType::EchoRequest,
            MsgType::EchoReply,
            MsgType::FeaturesRequest,
            MsgType::FeaturesReply,
            MsgType::PacketIn,
            MsgType::PacketOut,
            MsgType::FlowMod,
            MsgType::StatsRequest,
            MsgType::StatsReply,
            MsgType::Lazy,
            MsgType::Cluster,
        ] {
            assert_eq!(MsgType::from_u8(t as u8).unwrap(), t);
        }
    }
}
