//! OpenFlow-like control protocol for LazyCtrl, with the paper's vendor
//! extensions.
//!
//! The paper’s prototype "extends the OpenFlow protocol" (§IV): the control
//! link speaks OpenFlow 1.0-style messages (`Hello`, `Echo`, `PacketIn`,
//! `PacketOut`, `FlowMod`, ...) extended with switch-grouping messages, and
//! `FlowMod` gains an **Encap** action that makes a switch tunnel matching
//! packets to a remote edge switch over the IP underlay.
//!
//! No maintained OpenFlow crate is available offline, so this crate
//! hand-rolls the wire protocol (per the reproduction plan in `DESIGN.md`):
//! every message has an exact binary encoding over [`bytes`], a streaming
//! [`codec::MessageCodec`] for framing, and round-trip/fuzz tests.
//!
//! Three logical channels carry these messages (§III-B.3):
//!
//! * **control link** — controller ⟷ every switch (`PacketIn`, `FlowMod`,
//!   `GroupAssign`, ...),
//! * **state link** — controller ⟷ designated switch (`StateReport`,
//!   `LfibSync` snapshots),
//! * **peer link** — designated switch ⟷ group members (`LfibSync`,
//!   `GfibUpdate`, `KeepAlive`).
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use lazyctrl_proto::{codec::MessageCodec, Message, OfMessage};
//!
//! let hello = Message::of(1, OfMessage::Hello);
//! let mut codec = MessageCodec::new();
//! codec.feed(&hello.encode());
//! let decoded = codec.next_message()?.expect("one full frame fed");
//! assert_eq!(decoded, hello);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod codec;
mod error;
pub mod flow_match;
mod header;
pub mod messages;
pub mod plan;
pub mod sink;
mod wire;

pub use actions::Action;
pub use error::ProtoError;
pub use flow_match::FlowMatch;
pub use header::{MsgType, OFP_HEADER_LEN, PROTO_VERSION};
pub use messages::{
    BargainMsg, ClusterMsg, CongestionNoticeMsg, CtrlHeartbeatMsg, EchoKind, ErrorCode,
    FlowModCommand, FlowModMsg, GfibUpdateMsg, GroupAssignMsg, HostEntry, KeepAliveMsg, LazyMsg,
    LeaderClaimMsg, LfibEntry, LfibSyncMsg, LookupReplyMsg, LookupRequestMsg, Message, MessageBody,
    MsgPriority, OfMessage, OwnershipTransferMsg, PacketInMsg, PacketInReason, PacketOutMsg,
    PeerSyncMsg, StateReportMsg, SwitchStats, SyncDigestMsg, SyncRelayMsg, TransferAckMsg,
    TransferReason, VoteReplyMsg, VoteRequestMsg, WheelLoss, WheelReportMsg, WHEEL_MISS_THRESHOLD,
};
pub use plan::{EventPlan, InjectedEvent, ScheduledEvent};
pub use sink::OutputSink;

/// Result alias used across the protocol layer.
pub type Result<T> = std::result::Result<T, ProtoError>;
