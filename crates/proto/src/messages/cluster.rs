//! Controller-to-controller messages for the `lazyctrl-cluster` control
//! plane.
//!
//! A LazyCtrl *cluster* shards the switch groups across N cooperating
//! controllers (see `DESIGN.md`, "cluster architecture"). Three concerns
//! need wire messages between controllers, carried over the
//! controller-peer channel class:
//!
//! * **C-LIB replication** ([`PeerSyncMsg`]) — each controller
//!   asynchronously floods its C-LIB shard's deltas to its peers, so
//!   inter-shard flow setups usually resolve against a local replica;
//! * **host lookups** ([`LookupRequestMsg`]/[`LookupReplyMsg`]) — the
//!   synchronous fallback when a destination is not yet replicated;
//! * **membership** ([`CtrlHeartbeatMsg`], [`OwnershipTransferMsg`]) —
//!   heartbeats on the controller ring feed the Table-I failure inference
//!   (reused from the switch wheel), and ownership transfers move groups
//!   between controllers for load rebalancing and failover takeover.

use bytes::BufMut;
use lazyctrl_net::{GroupId, MacAddr, PortNo, SwitchId, TenantId};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

const SUB_PEER_SYNC: u16 = 1;
const SUB_OWNERSHIP_TRANSFER: u16 = 2;
const SUB_CTRL_HEARTBEAT: u16 = 3;
const SUB_LOOKUP_REQUEST: u16 = 4;
const SUB_LOOKUP_REPLY: u16 = 5;

/// One replicated C-LIB entry: a host and the edge switch it lives behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostEntry {
    /// Host MAC address.
    pub mac: MacAddr,
    /// The edge switch the host is attached to.
    pub switch: SwitchId,
    /// The port on that switch.
    pub port: PortNo,
    /// The owning tenant.
    pub tenant: TenantId,
}

impl HostEntry {
    const WIRE_LEN: usize = 6 + 4 + 2 + 2;

    fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.mac.octets());
        buf.put_u32(self.switch.0);
        buf.put_u16(self.port.as_u16());
        buf.put_u16(self.tenant.as_u16());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mac = MacAddr::new(r.array()?);
        let switch = SwitchId::new(r.u32()?);
        let port = PortNo::new(r.u16()?);
        let tenant_raw = r.u16()?;
        if tenant_raw > 0x0fff {
            return Err(ProtoError::InvalidField {
                field: "host_entry.tenant",
                value: tenant_raw as u64,
            });
        }
        Ok(HostEntry {
            mac,
            switch,
            port,
            tenant: TenantId::new(tenant_raw),
        })
    }
}

/// Asynchronous C-LIB shard replication: the origin controller's learned
/// host locations since the previous sync, plus withdrawals.
///
/// Application is idempotent: entries overwrite, withdrawals remove only
/// while the stored location still matches the withdrawing switch (the
/// C-LIB's stale-withdrawal rule). `seq` is a per-origin monotonic
/// sequence number carried for observability — chunks of one flush share
/// it, and receivers track it as a high-water mark, not a dedup filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerSyncMsg {
    /// The controller whose shard changed.
    pub origin: u32,
    /// Per-origin monotonic sequence number.
    pub seq: u64,
    /// Added or refreshed host locations.
    pub entries: Vec<HostEntry>,
    /// Host addresses withdrawn from the origin's shard, each with the
    /// switch that withdrew it (so receivers can apply the
    /// stale-withdrawal guard: a fresh learn elsewhere must not be
    /// clobbered by the old location's late withdrawal).
    pub removed: Vec<(MacAddr, SwitchId)>,
}

impl PeerSyncMsg {
    /// Splits a large sync into wire-sized messages, `max_entries` entries
    /// at a time (every chunk reuses the same `seq`; receivers treat the
    /// chunks of one flush as one logical update).
    pub fn chunked(
        origin: u32,
        seq: u64,
        entries: Vec<HostEntry>,
        removed: Vec<(MacAddr, SwitchId)>,
        max_entries: usize,
    ) -> Vec<PeerSyncMsg> {
        assert!(max_entries > 0, "max_entries must be positive");
        if entries.len() <= max_entries && removed.len() <= max_entries {
            return vec![PeerSyncMsg {
                origin,
                seq,
                entries,
                removed,
            }];
        }
        let mut out = Vec::new();
        let mut entries = entries.as_slice();
        let mut removed = removed.as_slice();
        while !entries.is_empty() || !removed.is_empty() {
            let take_e = entries.len().min(max_entries);
            let take_r = removed.len().min(max_entries);
            out.push(PeerSyncMsg {
                origin,
                seq,
                entries: entries[..take_e].to_vec(),
                removed: removed[..take_r].to_vec(),
            });
            entries = &entries[take_e..];
            removed = &removed[take_r..];
        }
        out
    }
}

/// Why a group changed owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferReason {
    /// Load rebalancing moved the group off an overloaded controller.
    Rebalance,
    /// The previous owner was declared dead; a survivor took over.
    Failover,
}

impl TransferReason {
    fn to_u8(self) -> u8 {
        match self {
            TransferReason::Rebalance => 0,
            TransferReason::Failover => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => TransferReason::Rebalance,
            1 => TransferReason::Failover,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "ownership_transfer.reason",
                    value: other as u64,
                })
            }
        })
    }
}

/// Moves ownership of one switch group between controllers. Carries the
/// ownership-map epoch so stale transfers are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OwnershipTransferMsg {
    /// Ownership-map epoch after this transfer applies.
    pub epoch: u32,
    /// The group changing hands.
    pub group: GroupId,
    /// Previous owner.
    pub from: u32,
    /// New owner.
    pub to: u32,
    /// Why the transfer happened.
    pub reason: TransferReason,
}

/// Controller-ring keep-alive, the cluster analogue of the switch wheel's
/// [`KeepAliveMsg`](crate::KeepAliveMsg). Carries the sender's measured
/// load so receivers can rebalance without extra round trips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtrlHeartbeatMsg {
    /// Sending controller.
    pub from: u32,
    /// Monotonic sequence number.
    pub seq: u64,
    /// Sender's request rate over its meter window (requests/sec).
    pub load_rps: f64,
    /// Number of groups the sender currently owns.
    pub owned_groups: u32,
}

/// Synchronous host-location lookup towards a peer controller, the
/// fallback when the local replica misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LookupRequestMsg {
    /// Requesting controller.
    pub from: u32,
    /// The host being resolved.
    pub mac: MacAddr,
}

/// Reply to a [`LookupRequestMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupReplyMsg {
    /// Replying controller.
    pub from: u32,
    /// The host that was looked up.
    pub mac: MacAddr,
    /// The location, if the replier's shard (or replica) knows it.
    pub location: Option<HostEntry>,
}

/// The controller-cluster message family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterMsg {
    /// Asynchronous C-LIB shard replication.
    PeerSync(PeerSyncMsg),
    /// Group ownership transfer (rebalance or failover).
    OwnershipTransfer(OwnershipTransferMsg),
    /// Controller-ring keep-alive with load piggyback.
    Heartbeat(CtrlHeartbeatMsg),
    /// Synchronous host lookup (replica miss fallback).
    LookupRequest(LookupRequestMsg),
    /// Lookup response.
    LookupReply(LookupReplyMsg),
}

impl ClusterMsg {
    pub(crate) fn encode_body<B: BufMut>(&self, buf: &mut B) {
        match self {
            ClusterMsg::PeerSync(m) => {
                buf.put_u16(SUB_PEER_SYNC);
                buf.put_u32(m.origin);
                buf.put_u64(m.seq);
                buf.put_u32(m.entries.len() as u32);
                for e in &m.entries {
                    e.encode_into(buf);
                }
                buf.put_u32(m.removed.len() as u32);
                for (mac, switch) in &m.removed {
                    buf.put_slice(&mac.octets());
                    buf.put_u32(switch.0);
                }
            }
            ClusterMsg::OwnershipTransfer(m) => {
                buf.put_u16(SUB_OWNERSHIP_TRANSFER);
                buf.put_u32(m.epoch);
                buf.put_u32(m.group.0);
                buf.put_u32(m.from);
                buf.put_u32(m.to);
                buf.put_u8(m.reason.to_u8());
            }
            ClusterMsg::Heartbeat(m) => {
                buf.put_u16(SUB_CTRL_HEARTBEAT);
                buf.put_u32(m.from);
                buf.put_u64(m.seq);
                buf.put_u64(m.load_rps.to_bits());
                buf.put_u32(m.owned_groups);
            }
            ClusterMsg::LookupRequest(m) => {
                buf.put_u16(SUB_LOOKUP_REQUEST);
                buf.put_u32(m.from);
                buf.put_slice(&m.mac.octets());
            }
            ClusterMsg::LookupReply(m) => {
                buf.put_u16(SUB_LOOKUP_REPLY);
                buf.put_u32(m.from);
                buf.put_slice(&m.mac.octets());
                match &m.location {
                    Some(e) => {
                        buf.put_u8(1);
                        e.encode_into(buf);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
    }

    pub(crate) fn decode_body(body: &[u8]) -> Result<Self> {
        let mut r = Reader::new(body, "cluster body");
        let subtype = r.u16()?;
        let msg = match subtype {
            SUB_PEER_SYNC => {
                let origin = r.u32()?;
                let seq = r.u64()?;
                let n = r.count_prefix(HostEntry::WIRE_LEN)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(HostEntry::decode(&mut r)?);
                }
                let nr = r.count_prefix(10)?;
                let mut removed = Vec::with_capacity(nr);
                for _ in 0..nr {
                    let mac = MacAddr::new(r.array()?);
                    let switch = SwitchId::new(r.u32()?);
                    removed.push((mac, switch));
                }
                ClusterMsg::PeerSync(PeerSyncMsg {
                    origin,
                    seq,
                    entries,
                    removed,
                })
            }
            SUB_OWNERSHIP_TRANSFER => ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
                epoch: r.u32()?,
                group: GroupId::new(r.u32()?),
                from: r.u32()?,
                to: r.u32()?,
                reason: TransferReason::from_u8(r.u8()?)?,
            }),
            SUB_CTRL_HEARTBEAT => ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
                from: r.u32()?,
                seq: r.u64()?,
                load_rps: r.f64()?,
                owned_groups: r.u32()?,
            }),
            SUB_LOOKUP_REQUEST => ClusterMsg::LookupRequest(LookupRequestMsg {
                from: r.u32()?,
                mac: MacAddr::new(r.array()?),
            }),
            SUB_LOOKUP_REPLY => {
                let from = r.u32()?;
                let mac = MacAddr::new(r.array()?);
                let location = match r.u8()? {
                    0 => None,
                    1 => Some(HostEntry::decode(&mut r)?),
                    other => {
                        return Err(ProtoError::InvalidField {
                            field: "lookup_reply.has_location",
                            value: other as u64,
                        })
                    }
                };
                ClusterMsg::LookupReply(LookupReplyMsg {
                    from,
                    mac,
                    location,
                })
            }
            other => return Err(ProtoError::UnknownLazySubtype(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::LengthMismatch {
                declared: body.len(),
                actual: body.len() - r.remaining(),
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: ClusterMsg) {
        let mut body = Vec::new();
        m.encode_body(&mut body);
        assert_eq!(ClusterMsg::decode_body(&body).unwrap(), m);
    }

    fn entry(h: u64, s: u32) -> HostEntry {
        HostEntry {
            mac: MacAddr::for_host(h),
            switch: SwitchId::new(s),
            port: PortNo::new(2),
            tenant: TenantId::new(5),
        }
    }

    #[test]
    fn peer_sync_round_trips() {
        round_trip(ClusterMsg::PeerSync(PeerSyncMsg {
            origin: 1,
            seq: 42,
            entries: vec![entry(10, 3), entry(11, 4)],
            removed: vec![(MacAddr::for_host(55), SwitchId::new(3))],
        }));
    }

    #[test]
    fn ownership_transfer_round_trips() {
        round_trip(ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
            epoch: 7,
            group: GroupId::new(3),
            from: 0,
            to: 2,
            reason: TransferReason::Failover,
        }));
        round_trip(ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
            epoch: 8,
            group: GroupId::new(1),
            from: 2,
            to: 1,
            reason: TransferReason::Rebalance,
        }));
    }

    #[test]
    fn heartbeat_round_trips() {
        round_trip(ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
            from: 3,
            seq: u64::MAX,
            load_rps: 1234.5,
            owned_groups: 9,
        }));
    }

    #[test]
    fn lookups_round_trip() {
        round_trip(ClusterMsg::LookupRequest(LookupRequestMsg {
            from: 0,
            mac: MacAddr::for_host(77),
        }));
        round_trip(ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(77),
            location: Some(entry(77, 9)),
        }));
        round_trip(ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(78),
            location: None,
        }));
    }

    #[test]
    fn chunking_splits_large_syncs() {
        let entries: Vec<HostEntry> = (0..250).map(|i| entry(i, (i % 16) as u32)).collect();
        let chunks = PeerSyncMsg::chunked(2, 9, entries.clone(), vec![], 100);
        assert_eq!(chunks.len(), 3);
        let reassembled: Vec<HostEntry> = chunks.iter().flat_map(|c| c.entries.clone()).collect();
        assert_eq!(reassembled, entries);
        for c in &chunks {
            assert_eq!(c.seq, 9);
            assert!(c.entries.len() <= 100);
        }
    }

    #[test]
    fn unknown_subtype_rejected() {
        let body = 0x6666u16.to_be_bytes();
        assert!(ClusterMsg::decode_body(&body).is_err());
    }

    #[test]
    fn bad_option_flag_rejected() {
        let mut body = Vec::new();
        ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(1),
            location: None,
        })
        .encode_body(&mut body);
        *body.last_mut().unwrap() = 9; // corrupt the option flag
        assert!(matches!(
            ClusterMsg::decode_body(&body).unwrap_err(),
            ProtoError::InvalidField {
                field: "lookup_reply.has_location",
                ..
            }
        ));
    }
}
