//! Controller-to-controller messages for the `lazyctrl-cluster` control
//! plane.
//!
//! A LazyCtrl *cluster* shards the switch groups across N cooperating
//! controllers (see `DESIGN.md`, "cluster architecture"). Three concerns
//! need wire messages between controllers, carried over the
//! controller-peer channel class:
//!
//! * **C-LIB replication** ([`PeerSyncMsg`]) — each controller
//!   publishes its C-LIB shard's deltas so inter-shard flow setups usually
//!   resolve against a local replica. *How* a delta reaches the other
//!   members is the cluster's dissemination strategy: direct flood
//!   (per-peer [`PeerSyncMsg`]), or relayed along a ring/tree overlay in
//!   bundles ([`SyncRelayMsg`]), with a periodic anti-entropy digest
//!   exchange ([`SyncDigestMsg`]) as the catch-up path for members that
//!   missed deltas (crashed, partitioned, late-joining);
//! * **host lookups** ([`LookupRequestMsg`]/[`LookupReplyMsg`]) — the
//!   synchronous fallback when a destination is not yet replicated;
//! * **membership** ([`CtrlHeartbeatMsg`], [`OwnershipTransferMsg`]) —
//!   heartbeats on the controller ring feed the Table-I failure inference
//!   (reused from the switch wheel), and ownership transfers move groups
//!   between controllers for load rebalancing and failover takeover.

use bytes::BufMut;
use lazyctrl_net::{GroupId, MacAddr, PortNo, SwitchId, TenantId};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

const SUB_PEER_SYNC: u16 = 1;
const SUB_OWNERSHIP_TRANSFER: u16 = 2;
const SUB_CTRL_HEARTBEAT: u16 = 3;
const SUB_LOOKUP_REQUEST: u16 = 4;
const SUB_LOOKUP_REPLY: u16 = 5;
const SUB_SYNC_DIGEST: u16 = 6;
const SUB_SYNC_RELAY: u16 = 7;
const SUB_VOTE_REQUEST: u16 = 8;
const SUB_VOTE_REPLY: u16 = 9;
const SUB_LEADER_CLAIM: u16 = 10;
const SUB_TRANSFER_ACK: u16 = 11;

/// One replicated C-LIB entry: a host and the edge switch it lives behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostEntry {
    /// Host MAC address.
    pub mac: MacAddr,
    /// The edge switch the host is attached to.
    pub switch: SwitchId,
    /// The port on that switch.
    pub port: PortNo,
    /// The owning tenant.
    pub tenant: TenantId,
}

impl HostEntry {
    const WIRE_LEN: usize = 6 + 4 + 2 + 2;

    fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.mac.octets());
        buf.put_u32(self.switch.0);
        buf.put_u16(self.port.as_u16());
        buf.put_u16(self.tenant.as_u16());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mac = MacAddr::new(r.array()?);
        let switch = SwitchId::new(r.u32()?);
        let port = PortNo::new(r.u16()?);
        let tenant_raw = r.u16()?;
        if tenant_raw > 0x0fff {
            return Err(ProtoError::InvalidField {
                field: "host_entry.tenant",
                value: tenant_raw as u64,
            });
        }
        Ok(HostEntry {
            mac,
            switch,
            port,
            tenant: TenantId::new(tenant_raw),
        })
    }
}

/// Asynchronous C-LIB shard replication: the origin controller's learned
/// host locations since the previous sync, plus withdrawals.
///
/// Application is idempotent: entries overwrite, withdrawals remove only
/// while the stored location still matches the withdrawing switch (the
/// C-LIB's stale-withdrawal rule). `seq` is a per-origin monotonic
/// sequence number: chunks of one flush share it (distinguished by
/// `chunk`), receivers track it as a high-water mark, and relay-based
/// dissemination dedups on the `(origin, seq, chunk)` triple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerSyncMsg {
    /// The controller whose shard changed.
    pub origin: u32,
    /// Per-origin monotonic sequence number.
    pub seq: u64,
    /// Chunk index within the flush sharing `seq` (0 for the first or
    /// only chunk). Part of the relay dedup key.
    pub chunk: u32,
    /// True for an anti-entropy catch-up sync that carries *all* of the
    /// origin's knowledge up to `seq`: receivers advance their contiguous
    /// per-origin head to `seq` directly, instead of waiting for every
    /// intermediate delta. Ordinary flush deltas are `false`.
    pub summary: bool,
    /// Added or refreshed host locations.
    pub entries: Vec<HostEntry>,
    /// Host addresses withdrawn from the origin's shard, each with the
    /// switch that withdrew it (so receivers can apply the
    /// stale-withdrawal guard: a fresh learn elsewhere must not be
    /// clobbered by the old location's late withdrawal).
    pub removed: Vec<(MacAddr, SwitchId)>,
}

impl PeerSyncMsg {
    /// Splits a large sync into wire-sized messages, `max_entries` entries
    /// at a time (every chunk reuses the same `seq` and numbers its
    /// `chunk` consecutively; receivers treat the chunks of one flush as
    /// one logical update).
    pub fn chunked(
        origin: u32,
        seq: u64,
        entries: Vec<HostEntry>,
        removed: Vec<(MacAddr, SwitchId)>,
        max_entries: usize,
    ) -> Vec<PeerSyncMsg> {
        assert!(max_entries > 0, "max_entries must be positive");
        if entries.len() <= max_entries && removed.len() <= max_entries {
            return vec![PeerSyncMsg {
                origin,
                seq,
                chunk: 0,
                summary: false,
                entries,
                removed,
            }];
        }
        let mut out = Vec::new();
        let mut entries = entries.as_slice();
        let mut removed = removed.as_slice();
        let mut chunk = 0u32;
        while !entries.is_empty() || !removed.is_empty() {
            let take_e = entries.len().min(max_entries);
            let take_r = removed.len().min(max_entries);
            out.push(PeerSyncMsg {
                origin,
                seq,
                chunk,
                summary: false,
                entries: entries[..take_e].to_vec(),
                removed: removed[..take_r].to_vec(),
            });
            entries = &entries[take_e..];
            removed = &removed[take_r..];
            chunk += 1;
        }
        out
    }

    /// The relay/anti-entropy dedup key of this chunk.
    pub fn key(&self) -> (u32, u64, u32) {
        (self.origin, self.seq, self.chunk)
    }

    /// Encoded size of this sync on the wire (body bytes), for peer-sync
    /// traffic accounting without paying for an actual encode.
    pub fn wire_len(&self) -> usize {
        // subtype + origin + seq + chunk + summary flag + two count
        // prefixes.
        2 + 4
            + 8
            + 4
            + 1
            + 4
            + self.entries.len() * HostEntry::WIRE_LEN
            + 4
            + self.removed.len() * 10
    }

    fn encode_fields<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.origin);
        buf.put_u64(self.seq);
        buf.put_u32(self.chunk);
        buf.put_u8(u8::from(self.summary));
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode_into(buf);
        }
        buf.put_u32(self.removed.len() as u32);
        for (mac, switch) in &self.removed {
            buf.put_slice(&mac.octets());
            buf.put_u32(switch.0);
        }
    }

    fn decode_fields(r: &mut Reader<'_>) -> Result<Self> {
        let origin = r.u32()?;
        let seq = r.u64()?;
        let chunk = r.u32()?;
        let summary = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "peer_sync.summary",
                    value: other as u64,
                })
            }
        };
        let n = r.count_prefix(HostEntry::WIRE_LEN)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(HostEntry::decode(r)?);
        }
        let nr = r.count_prefix(10)?;
        let mut removed = Vec::with_capacity(nr);
        for _ in 0..nr {
            let mac = MacAddr::new(r.array()?);
            let switch = SwitchId::new(r.u32()?);
            removed.push((mac, switch));
        }
        Ok(PeerSyncMsg {
            origin,
            seq,
            chunk,
            summary,
            entries,
            removed,
        })
    }
}

/// A bundle of [`PeerSyncMsg`]s travelling the dissemination overlay
/// (ring successor hop, or tree up/down edge). Bundling is what makes
/// ring/tree dissemination O(n) messages per flush round: every member
/// forwards *all* deltas it is relaying in one message per overlay edge,
/// instead of one message per (delta, peer) pair as flooding does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRelayMsg {
    /// The member that sent this bundle (the relay hop, not the deltas'
    /// origins — each bundled sync carries its own origin).
    pub from: u32,
    /// The bundled deltas, each dedupable by `(origin, seq, chunk)`.
    pub syncs: Vec<PeerSyncMsg>,
}

impl SyncRelayMsg {
    /// Encoded size of this bundle on the wire (body bytes).
    pub fn wire_len(&self) -> usize {
        // The nested syncs re-count their own subtype bytes; close enough
        // for traffic accounting (within 2 bytes per sync).
        2 + 4 + 4 + self.syncs.iter().map(PeerSyncMsg::wire_len).sum::<usize>()
    }
}

/// Anti-entropy digest: the per-origin replication high-waters the sender
/// currently holds. The receiver compares them against its own knowledge
/// and pushes the deltas (or a snapshot) the sender is missing — the
/// catch-up path that reconverges members that missed relayed deltas
/// (crashed mid-circulation, recovered after a takeover, late-joining).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncDigestMsg {
    /// The member whose knowledge is summarized.
    pub from: u32,
    /// `(origin, highest seq seen from that origin)`, ascending by origin.
    /// The sender's own origin appears with its own flush sequence.
    pub heads: Vec<(u32, u64)>,
}

/// Why a group changed owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferReason {
    /// Load rebalancing moved the group off an overloaded controller.
    Rebalance,
    /// The previous owner was declared dead; a survivor took over.
    Failover,
}

impl TransferReason {
    fn to_u8(self) -> u8 {
        match self {
            TransferReason::Rebalance => 0,
            TransferReason::Failover => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => TransferReason::Rebalance,
            1 => TransferReason::Failover,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "ownership_transfer.reason",
                    value: other as u64,
                })
            }
        })
    }
}

/// Moves ownership of one switch group between controllers. Carries the
/// ownership-map epoch so stale transfers are rejected, and the leader
/// term under which the transfer was initiated so a deposed leader's
/// in-flight announcements are recognizable as stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OwnershipTransferMsg {
    /// Ownership-map epoch after this transfer applies.
    pub epoch: u32,
    /// Leader term under which the transfer was initiated.
    pub term: u64,
    /// The group changing hands.
    pub group: GroupId,
    /// Previous owner.
    pub from: u32,
    /// New owner.
    pub to: u32,
    /// Why the transfer happened.
    pub reason: TransferReason,
}

/// Acknowledges receipt of an [`OwnershipTransferMsg`] by the new owner.
/// The initiating leader retransmits unacked transfers on its heartbeat
/// tick, closing the in-flight-loss window where a dropped announcement
/// would leave the new owner unaware of (and unseeded for) its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferAckMsg {
    /// The acknowledging member (the transfer's `to`).
    pub from: u32,
    /// The acknowledged transfer's epoch.
    pub epoch: u32,
    /// The acknowledged transfer's group.
    pub group: GroupId,
}

/// Requests a vote for `candidate` in `term` (term-based leader
/// election, Raft-style: a member grants at most one vote per term, so
/// two candidates can never both assemble a majority for the same term).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoteRequestMsg {
    /// The term the candidate is standing for.
    pub term: u64,
    /// The candidate (also the link-level sender).
    pub candidate: u32,
}

/// Reply to a [`VoteRequestMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoteReplyMsg {
    /// The voter's current term (the candidate steps down if it trails).
    pub term: u64,
    /// The voting member.
    pub from: u32,
    /// Whether the vote was granted.
    pub granted: bool,
}

/// A candidate that assembled a majority announces itself leader of
/// `term`. Receivers at an older term adopt it immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LeaderClaimMsg {
    /// The claimed term.
    pub term: u64,
    /// The new leader.
    pub leader: u32,
}

/// Controller-ring keep-alive, the cluster analogue of the switch wheel's
/// [`KeepAliveMsg`](crate::KeepAliveMsg). Carries the sender's measured
/// load so receivers can rebalance without extra round trips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtrlHeartbeatMsg {
    /// Sending controller.
    pub from: u32,
    /// Monotonic sequence number.
    pub seq: u64,
    /// The sender's current election term.
    pub term: u64,
    /// True when the sender believes itself the leader of `term` — the
    /// leadership keep-alive that lets recovered members relearn who
    /// leads without a dedicated message.
    pub leader: bool,
    /// Sender's request rate over its meter window (requests/sec).
    pub load_rps: f64,
    /// Number of groups the sender currently owns.
    pub owned_groups: u32,
}

/// Synchronous host-location lookup towards a peer controller, the
/// fallback when the local replica misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LookupRequestMsg {
    /// Requesting controller.
    pub from: u32,
    /// The host being resolved.
    pub mac: MacAddr,
}

/// Reply to a [`LookupRequestMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupReplyMsg {
    /// Replying controller.
    pub from: u32,
    /// The host that was looked up.
    pub mac: MacAddr,
    /// The location, if the replier's shard (or replica) knows it.
    pub location: Option<HostEntry>,
}

/// The controller-cluster message family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterMsg {
    /// Asynchronous C-LIB shard replication (boxed: bulk payload, flush
    /// cadence — the frequent heartbeat/lookup variants stay inline).
    PeerSync(Box<PeerSyncMsg>),
    /// Group ownership transfer (rebalance or failover).
    OwnershipTransfer(OwnershipTransferMsg),
    /// Controller-ring keep-alive with load piggyback.
    Heartbeat(CtrlHeartbeatMsg),
    /// Synchronous host lookup (replica miss fallback).
    LookupRequest(LookupRequestMsg),
    /// Lookup response.
    LookupReply(LookupReplyMsg),
    /// Anti-entropy digest (boxed: bulk payload, repair cadence).
    SyncDigest(Box<SyncDigestMsg>),
    /// Bundled deltas on a ring/tree dissemination edge (boxed: bulk
    /// payload, flush cadence).
    SyncRelay(Box<SyncRelayMsg>),
    /// Election: a candidate requests a vote.
    VoteRequest(VoteRequestMsg),
    /// Election: a member answers a vote request.
    VoteReply(VoteReplyMsg),
    /// Election: a majority winner announces its term.
    LeaderClaim(LeaderClaimMsg),
    /// Ownership-handoff acknowledgement (stops leader retransmits).
    TransferAck(TransferAckMsg),
}

impl ClusterMsg {
    /// Wraps (and boxes) a peer sync.
    pub fn peer_sync(m: PeerSyncMsg) -> Self {
        ClusterMsg::PeerSync(Box::new(m))
    }

    /// Wraps (and boxes) an anti-entropy digest.
    pub fn sync_digest(m: SyncDigestMsg) -> Self {
        ClusterMsg::SyncDigest(Box::new(m))
    }

    /// Wraps (and boxes) a relay bundle.
    pub fn sync_relay(m: SyncRelayMsg) -> Self {
        ClusterMsg::SyncRelay(Box::new(m))
    }

    /// Exact encoded body size (bytes after the common header), without
    /// paying for an encode (see `LazyMsg::wire_body_len`). Unlike
    /// [`SyncRelayMsg::wire_len`] (traffic accounting, 2 bytes high per
    /// bundled sync), this is exact — the nested syncs' subtype bytes are
    /// subtracted back out.
    pub(crate) fn wire_body_len(&self) -> usize {
        match self {
            ClusterMsg::PeerSync(m) => m.wire_len(),
            ClusterMsg::OwnershipTransfer(_) => 2 + 4 + 8 + 4 + 4 + 4 + 1,
            ClusterMsg::Heartbeat(_) => 2 + 4 + 8 + 8 + 1 + 8 + 4,
            ClusterMsg::LookupRequest(_) => 2 + 4 + 6,
            ClusterMsg::LookupReply(m) => {
                2 + 4 + 6 + 1 + m.location.map_or(0, |_| HostEntry::WIRE_LEN)
            }
            ClusterMsg::SyncDigest(m) => 2 + 4 + 4 + m.heads.len() * 12,
            ClusterMsg::SyncRelay(m) => {
                2 + 4 + 4 + m.syncs.iter().map(|s| s.wire_len() - 2).sum::<usize>()
            }
            ClusterMsg::VoteRequest(_) => 2 + 8 + 4,
            ClusterMsg::VoteReply(_) => 2 + 8 + 4 + 1,
            ClusterMsg::LeaderClaim(_) => 2 + 8 + 4,
            ClusterMsg::TransferAck(_) => 2 + 4 + 4 + 4,
        }
    }

    pub(crate) fn encode_body<B: BufMut>(&self, buf: &mut B) {
        match self {
            ClusterMsg::PeerSync(m) => {
                buf.put_u16(SUB_PEER_SYNC);
                m.encode_fields(buf);
            }
            ClusterMsg::OwnershipTransfer(m) => {
                buf.put_u16(SUB_OWNERSHIP_TRANSFER);
                buf.put_u32(m.epoch);
                buf.put_u64(m.term);
                buf.put_u32(m.group.0);
                buf.put_u32(m.from);
                buf.put_u32(m.to);
                buf.put_u8(m.reason.to_u8());
            }
            ClusterMsg::Heartbeat(m) => {
                buf.put_u16(SUB_CTRL_HEARTBEAT);
                buf.put_u32(m.from);
                buf.put_u64(m.seq);
                buf.put_u64(m.term);
                buf.put_u8(u8::from(m.leader));
                buf.put_u64(m.load_rps.to_bits());
                buf.put_u32(m.owned_groups);
            }
            ClusterMsg::LookupRequest(m) => {
                buf.put_u16(SUB_LOOKUP_REQUEST);
                buf.put_u32(m.from);
                buf.put_slice(&m.mac.octets());
            }
            ClusterMsg::LookupReply(m) => {
                buf.put_u16(SUB_LOOKUP_REPLY);
                buf.put_u32(m.from);
                buf.put_slice(&m.mac.octets());
                match &m.location {
                    Some(e) => {
                        buf.put_u8(1);
                        e.encode_into(buf);
                    }
                    None => buf.put_u8(0),
                }
            }
            ClusterMsg::SyncDigest(m) => {
                buf.put_u16(SUB_SYNC_DIGEST);
                buf.put_u32(m.from);
                buf.put_u32(m.heads.len() as u32);
                for (origin, seq) in &m.heads {
                    buf.put_u32(*origin);
                    buf.put_u64(*seq);
                }
            }
            ClusterMsg::SyncRelay(m) => {
                buf.put_u16(SUB_SYNC_RELAY);
                buf.put_u32(m.from);
                buf.put_u32(m.syncs.len() as u32);
                for s in &m.syncs {
                    s.encode_fields(buf);
                }
            }
            ClusterMsg::VoteRequest(m) => {
                buf.put_u16(SUB_VOTE_REQUEST);
                buf.put_u64(m.term);
                buf.put_u32(m.candidate);
            }
            ClusterMsg::VoteReply(m) => {
                buf.put_u16(SUB_VOTE_REPLY);
                buf.put_u64(m.term);
                buf.put_u32(m.from);
                buf.put_u8(u8::from(m.granted));
            }
            ClusterMsg::LeaderClaim(m) => {
                buf.put_u16(SUB_LEADER_CLAIM);
                buf.put_u64(m.term);
                buf.put_u32(m.leader);
            }
            ClusterMsg::TransferAck(m) => {
                buf.put_u16(SUB_TRANSFER_ACK);
                buf.put_u32(m.from);
                buf.put_u32(m.epoch);
                buf.put_u32(m.group.0);
            }
        }
    }

    pub(crate) fn decode_body(body: &[u8]) -> Result<Self> {
        let mut r = Reader::new(body, "cluster body");
        let subtype = r.u16()?;
        let msg = match subtype {
            SUB_PEER_SYNC => ClusterMsg::peer_sync(PeerSyncMsg::decode_fields(&mut r)?),
            SUB_OWNERSHIP_TRANSFER => ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
                epoch: r.u32()?,
                term: r.u64()?,
                group: GroupId::new(r.u32()?),
                from: r.u32()?,
                to: r.u32()?,
                reason: TransferReason::from_u8(r.u8()?)?,
            }),
            SUB_CTRL_HEARTBEAT => {
                let from = r.u32()?;
                let seq = r.u64()?;
                let term = r.u64()?;
                let leader = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ProtoError::InvalidField {
                            field: "heartbeat.leader",
                            value: other as u64,
                        })
                    }
                };
                ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
                    from,
                    seq,
                    term,
                    leader,
                    load_rps: r.f64()?,
                    owned_groups: r.u32()?,
                })
            }
            SUB_LOOKUP_REQUEST => ClusterMsg::LookupRequest(LookupRequestMsg {
                from: r.u32()?,
                mac: MacAddr::new(r.array()?),
            }),
            SUB_LOOKUP_REPLY => {
                let from = r.u32()?;
                let mac = MacAddr::new(r.array()?);
                let location = match r.u8()? {
                    0 => None,
                    1 => Some(HostEntry::decode(&mut r)?),
                    other => {
                        return Err(ProtoError::InvalidField {
                            field: "lookup_reply.has_location",
                            value: other as u64,
                        })
                    }
                };
                ClusterMsg::LookupReply(LookupReplyMsg {
                    from,
                    mac,
                    location,
                })
            }
            SUB_SYNC_DIGEST => {
                let from = r.u32()?;
                let n = r.count_prefix(12)?;
                let mut heads = Vec::with_capacity(n);
                for _ in 0..n {
                    let origin = r.u32()?;
                    let seq = r.u64()?;
                    heads.push((origin, seq));
                }
                ClusterMsg::sync_digest(SyncDigestMsg { from, heads })
            }
            SUB_SYNC_RELAY => {
                let from = r.u32()?;
                // A sync is at least its fixed header (origin + seq +
                // chunk + summary flag + two empty count prefixes).
                let n = r.count_prefix(4 + 8 + 4 + 1 + 4 + 4)?;
                let mut syncs = Vec::with_capacity(n);
                for _ in 0..n {
                    syncs.push(PeerSyncMsg::decode_fields(&mut r)?);
                }
                ClusterMsg::sync_relay(SyncRelayMsg { from, syncs })
            }
            SUB_VOTE_REQUEST => ClusterMsg::VoteRequest(VoteRequestMsg {
                term: r.u64()?,
                candidate: r.u32()?,
            }),
            SUB_VOTE_REPLY => {
                let term = r.u64()?;
                let from = r.u32()?;
                let granted = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ProtoError::InvalidField {
                            field: "vote_reply.granted",
                            value: other as u64,
                        })
                    }
                };
                ClusterMsg::VoteReply(VoteReplyMsg {
                    term,
                    from,
                    granted,
                })
            }
            SUB_LEADER_CLAIM => ClusterMsg::LeaderClaim(LeaderClaimMsg {
                term: r.u64()?,
                leader: r.u32()?,
            }),
            SUB_TRANSFER_ACK => ClusterMsg::TransferAck(TransferAckMsg {
                from: r.u32()?,
                epoch: r.u32()?,
                group: GroupId::new(r.u32()?),
            }),
            other => return Err(ProtoError::UnknownLazySubtype(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::LengthMismatch {
                declared: body.len(),
                actual: body.len() - r.remaining(),
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: ClusterMsg) {
        let mut body = Vec::new();
        m.encode_body(&mut body);
        assert_eq!(ClusterMsg::decode_body(&body).unwrap(), m);
    }

    fn entry(h: u64, s: u32) -> HostEntry {
        HostEntry {
            mac: MacAddr::for_host(h),
            switch: SwitchId::new(s),
            port: PortNo::new(2),
            tenant: TenantId::new(5),
        }
    }

    #[test]
    fn peer_sync_round_trips() {
        round_trip(ClusterMsg::peer_sync(PeerSyncMsg {
            origin: 1,
            seq: 42,
            chunk: 3,
            summary: false,
            entries: vec![entry(10, 3), entry(11, 4)],
            removed: vec![(MacAddr::for_host(55), SwitchId::new(3))],
        }));
        round_trip(ClusterMsg::peer_sync(PeerSyncMsg {
            origin: 2,
            seq: 7,
            chunk: 0,
            summary: true,
            entries: vec![entry(12, 5)],
            removed: vec![],
        }));
    }

    #[test]
    fn sync_digest_round_trips() {
        round_trip(ClusterMsg::sync_digest(SyncDigestMsg {
            from: 2,
            heads: vec![(0, 17), (1, 0), (3, u64::MAX)],
        }));
        round_trip(ClusterMsg::sync_digest(SyncDigestMsg {
            from: 0,
            heads: vec![],
        }));
    }

    #[test]
    fn sync_relay_round_trips() {
        let bundle = SyncRelayMsg {
            from: 3,
            syncs: vec![
                PeerSyncMsg {
                    origin: 1,
                    seq: 9,
                    chunk: 0,
                    summary: false,
                    entries: vec![entry(10, 3)],
                    removed: vec![],
                },
                PeerSyncMsg {
                    origin: 2,
                    seq: 4,
                    chunk: 1,
                    summary: false,
                    entries: vec![],
                    removed: vec![(MacAddr::for_host(8), SwitchId::new(2))],
                },
            ],
        };
        round_trip(ClusterMsg::sync_relay(bundle));
        round_trip(ClusterMsg::sync_relay(SyncRelayMsg {
            from: 0,
            syncs: vec![],
        }));
    }

    #[test]
    fn wire_len_matches_encoded_size() {
        let sync = PeerSyncMsg {
            origin: 1,
            seq: 7,
            chunk: 0,
            summary: true,
            entries: vec![entry(10, 3), entry(11, 4)],
            removed: vec![(MacAddr::for_host(55), SwitchId::new(3))],
        };
        let mut body = Vec::new();
        ClusterMsg::peer_sync(sync.clone()).encode_body(&mut body);
        assert_eq!(sync.wire_len(), body.len());
    }

    #[test]
    fn ownership_transfer_round_trips() {
        round_trip(ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
            epoch: 7,
            term: 1,
            group: GroupId::new(3),
            from: 0,
            to: 2,
            reason: TransferReason::Failover,
        }));
        round_trip(ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
            epoch: 8,
            term: u64::MAX,
            group: GroupId::new(1),
            from: 2,
            to: 1,
            reason: TransferReason::Rebalance,
        }));
    }

    #[test]
    fn heartbeat_round_trips() {
        round_trip(ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
            from: 3,
            seq: u64::MAX,
            term: 12,
            leader: true,
            load_rps: 1234.5,
            owned_groups: 9,
        }));
        round_trip(ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
            from: 0,
            seq: 1,
            term: 1,
            leader: false,
            load_rps: 0.0,
            owned_groups: 0,
        }));
    }

    #[test]
    fn election_messages_round_trip() {
        round_trip(ClusterMsg::VoteRequest(VoteRequestMsg {
            term: 3,
            candidate: 2,
        }));
        round_trip(ClusterMsg::VoteReply(VoteReplyMsg {
            term: 3,
            from: 1,
            granted: true,
        }));
        round_trip(ClusterMsg::VoteReply(VoteReplyMsg {
            term: 4,
            from: 0,
            granted: false,
        }));
        round_trip(ClusterMsg::LeaderClaim(LeaderClaimMsg {
            term: u64::MAX,
            leader: 7,
        }));
    }

    #[test]
    fn transfer_ack_round_trips() {
        round_trip(ClusterMsg::TransferAck(TransferAckMsg {
            from: 2,
            epoch: 19,
            group: GroupId::new(4),
        }));
    }

    #[test]
    fn bad_vote_flag_rejected() {
        let mut body = Vec::new();
        ClusterMsg::VoteReply(VoteReplyMsg {
            term: 1,
            from: 0,
            granted: false,
        })
        .encode_body(&mut body);
        *body.last_mut().unwrap() = 7;
        assert!(matches!(
            ClusterMsg::decode_body(&body).unwrap_err(),
            ProtoError::InvalidField {
                field: "vote_reply.granted",
                ..
            }
        ));
    }

    #[test]
    fn lookups_round_trip() {
        round_trip(ClusterMsg::LookupRequest(LookupRequestMsg {
            from: 0,
            mac: MacAddr::for_host(77),
        }));
        round_trip(ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(77),
            location: Some(entry(77, 9)),
        }));
        round_trip(ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(78),
            location: None,
        }));
    }

    #[test]
    fn chunking_splits_large_syncs() {
        let entries: Vec<HostEntry> = (0..250).map(|i| entry(i, (i % 16) as u32)).collect();
        let chunks = PeerSyncMsg::chunked(2, 9, entries.clone(), vec![], 100);
        assert_eq!(chunks.len(), 3);
        let reassembled: Vec<HostEntry> = chunks.iter().flat_map(|c| c.entries.clone()).collect();
        assert_eq!(reassembled, entries);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.seq, 9);
            assert_eq!(c.chunk, i as u32, "chunks must number consecutively");
            assert!(c.entries.len() <= 100);
        }
    }

    #[test]
    fn unknown_subtype_rejected() {
        let body = 0x6666u16.to_be_bytes();
        assert!(ClusterMsg::decode_body(&body).is_err());
    }

    #[test]
    fn bad_option_flag_rejected() {
        let mut body = Vec::new();
        ClusterMsg::LookupReply(LookupReplyMsg {
            from: 1,
            mac: MacAddr::for_host(1),
            location: None,
        })
        .encode_body(&mut body);
        *body.last_mut().unwrap() = 9; // corrupt the option flag
        assert!(matches!(
            ClusterMsg::decode_body(&body).unwrap_err(),
            ProtoError::InvalidField {
                field: "lookup_reply.has_location",
                ..
            }
        ));
    }
}
