//! The LazyCtrl vendor-extension message family.
//!
//! These are the messages the paper adds on top of OpenFlow (§III-B.3,
//! §IV-A/B): group membership configuration, L-FIB synchronization over peer
//! links, bloom-filter (G-FIB) updates, aggregated state reports over the
//! state link, keep-alives for the failure-detection wheel, and the
//! group-size bargaining of Appendix C.

use bytes::BufMut;
use lazyctrl_net::{GroupId, MacAddr, PortNo, SwitchId, TenantId};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

const SUB_GROUP_ASSIGN: u16 = 1;
const SUB_LFIB_SYNC: u16 = 2;
const SUB_GFIB_UPDATE: u16 = 3;
const SUB_STATE_REPORT: u16 = 4;
const SUB_KEEP_ALIVE: u16 = 5;
const SUB_BARGAIN: u16 = 6;
const SUB_BLOCK_ARP: u16 = 7;
const SUB_WHEEL_REPORT: u16 = 8;
const SUB_CONGESTION_NOTICE: u16 = 9;

/// One L-FIB entry: a host known to live behind a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LfibEntry {
    /// Host MAC address.
    pub mac: MacAddr,
    /// Tenant owning the host.
    pub tenant: TenantId,
    /// Local port the host is attached to.
    pub port: PortNo,
}

impl LfibEntry {
    const WIRE_LEN: usize = 6 + 2 + 2;

    fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.mac.octets());
        buf.put_u16(self.tenant.as_u16());
        buf.put_u16(self.port.as_u16());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mac = MacAddr::new(r.array()?);
        let tenant_raw = r.u16()?;
        if tenant_raw > 0x0fff {
            return Err(ProtoError::InvalidField {
                field: "lfib.tenant",
                value: tenant_raw as u64,
            });
        }
        let port = PortNo::new(r.u16()?);
        Ok(LfibEntry {
            mac,
            tenant: TenantId::new(tenant_raw),
            port,
        })
    }
}

/// Group membership configuration pushed by the controller at setup and at
/// every regrouping (§III-D.1: designated switch selection, logical-ring
/// ordering, timing parameters).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupAssignMsg {
    /// The group being (re)configured.
    pub group: GroupId,
    /// Monotonic grouping epoch; stale-epoch traffic is rejected.
    pub epoch: u32,
    /// All member switches, in controller-chosen ring order.
    pub members: Vec<SwitchId>,
    /// The designated switch.
    pub designated: SwitchId,
    /// Backup designated switches.
    pub backups: Vec<SwitchId>,
    /// Receiver's upstream neighbour on the failure-detection wheel.
    pub ring_prev: SwitchId,
    /// Receiver's downstream neighbour on the failure-detection wheel.
    pub ring_next: SwitchId,
    /// How often members push state to the designated switch (ms).
    pub sync_interval_ms: u32,
    /// Keep-alive period on the wheel (ms).
    pub keepalive_interval_ms: u32,
    /// The group size limit in force.
    pub group_size_limit: u32,
}

/// L-FIB delta flooded over peer links (and relayed upward on the state
/// link): entries added/updated plus MACs removed (VM migration/removal).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LfibSyncMsg {
    /// Switch whose L-FIB changed.
    pub origin: SwitchId,
    /// Grouping epoch the update belongs to.
    pub epoch: u32,
    /// Added or refreshed entries.
    pub entries: Vec<LfibEntry>,
    /// Addresses withdrawn.
    pub removed: Vec<MacAddr>,
}

impl LfibSyncMsg {
    /// Splits a large sync into messages whose encoded size stays under the
    /// 16-bit length field, `max_entries` entries at a time.
    pub fn chunked(
        origin: SwitchId,
        epoch: u32,
        entries: Vec<LfibEntry>,
        removed: Vec<MacAddr>,
        max_entries: usize,
    ) -> Vec<LfibSyncMsg> {
        assert!(max_entries > 0, "max_entries must be positive");
        if entries.len() <= max_entries && removed.len() <= max_entries {
            return vec![LfibSyncMsg {
                origin,
                epoch,
                entries,
                removed,
            }];
        }
        let mut out = Vec::new();
        let mut entries = entries.as_slice();
        let mut removed = removed.as_slice();
        while !entries.is_empty() || !removed.is_empty() {
            let take_e = entries.len().min(max_entries);
            let take_r = removed.len().min(max_entries);
            out.push(LfibSyncMsg {
                origin,
                epoch,
                entries: entries[..take_e].to_vec(),
                removed: removed[..take_r].to_vec(),
            });
            entries = &entries[take_e..];
            removed = &removed[take_r..];
        }
        out
    }
}

/// A bloom-filter snapshot of one switch's L-FIB, used to refresh peers'
/// G-FIBs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GfibUpdateMsg {
    /// Switch whose L-FIB the filter summarizes.
    pub origin: SwitchId,
    /// Grouping epoch.
    pub epoch: u32,
    /// Number of hash functions used by the filter.
    pub num_hashes: u8,
    /// Exact number of addressable bits (the byte array is padded to whole
    /// 64-bit words; probe indexes are taken modulo this value).
    pub m_bits: u32,
    /// Number of addresses inserted.
    pub entries: u32,
    /// Raw filter bits.
    pub bits: Vec<u8>,
}

/// Per-switch counters carried in state reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SwitchStats {
    /// New flows per second observed at this switch (the paper's intensity
    /// unit, §III-C.1).
    pub new_flows_per_sec: f64,
    /// Packets forwarded locally (L-FIB hits).
    pub local_hits: u64,
    /// Packets tunnelled intra-group (G-FIB hits).
    pub group_hits: u64,
    /// Packets punted to the controller.
    pub controller_punts: u64,
}

/// Aggregated group state the designated switch reports to the controller
/// over the state link (asynchronously, §III-B.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateReportMsg {
    /// Reporting group.
    pub group: GroupId,
    /// Grouping epoch.
    pub epoch: u32,
    /// Pairwise intensity samples: (src switch, dst switch, new flows/sec).
    pub intensity: Vec<(SwitchId, SwitchId, f64)>,
    /// Per-switch counters.
    pub stats: Vec<(SwitchId, SwitchStats)>,
}

/// Wheel keep-alive (§III-E.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeepAliveMsg {
    /// Sender.
    pub from: SwitchId,
    /// Monotonic sequence number.
    pub seq: u64,
}

/// One round of the modified Rubinstein group-size bargaining (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BargainMsg {
    /// Bargaining round number.
    pub round: u32,
    /// True if the controller made this offer, false if a switch did.
    pub from_controller: bool,
    /// Proposed group size limit.
    pub proposed_limit: u32,
    /// True when the sender accepts the counterparty's last offer; the
    /// `proposed_limit` then records the agreed value.
    pub accept: bool,
}

/// Which keep-alive source went silent, from the reporter's viewpoint
/// (the columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WheelLoss {
    /// The upstream ring neighbour's keep-alives stopped (`Sn → Sn+1` seen
    /// missing by `Sn+1`).
    Upstream,
    /// The downstream ring neighbour's keep-alives stopped (`Sn → Sn−1`
    /// seen missing by `Sn−1`).
    Downstream,
    /// The controller's keep-alives stopped (`Controller → Sn`).
    Controller,
}

impl WheelLoss {
    fn to_u8(self) -> u8 {
        match self {
            WheelLoss::Upstream => 0,
            WheelLoss::Downstream => 1,
            WheelLoss::Controller => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => WheelLoss::Upstream,
            1 => WheelLoss::Downstream,
            2 => WheelLoss::Controller,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "wheel_report.loss",
                    value: other as u64,
                })
            }
        })
    }
}

/// How many keep-alive intervals a wheel participant waits before
/// declaring (and re-raising) a loss. Part of the wheel protocol
/// contract: the controller's Table-I correlation window is derived from
/// it (≥ 2 × interval × threshold), so reporter and detector must agree.
pub const WHEEL_MISS_THRESHOLD: u32 = 3;

/// A keep-alive loss observation reported towards the controller, the raw
/// material for Table I failure inference (§III-E.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WheelReportMsg {
    /// The switch that observed the silence.
    pub reporter: SwitchId,
    /// The switch whose keep-alives went missing (the reporter itself when
    /// the controller's keep-alives stopped).
    pub missing: SwitchId,
    /// Which keep-alive direction dried up.
    pub loss: WheelLoss,
}

/// ECN-style controller back-pressure notification: the controller's
/// ingress queue crossed its high-water mark and flow-setup work is being
/// shed, so switches should pace their PacketIn-driven setups. Tiny and
/// unreliable by design — a lost notice merely delays pacing one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CongestionNoticeMsg {
    /// The overloaded controller (cluster member index).
    pub from: u32,
    /// Overload severity in backoff doublings the switch should apply on
    /// top of its current pacing state (capped switch-side).
    pub level: u8,
}

/// The LazyCtrl extension message family.
///
/// The bulk configuration/sync payloads are boxed so the enum's inline
/// size stays small: a `Message` rides every scheduler entry, and the
/// *frequent* members of this family (`KeepAlive`, `WheelReport`,
/// `BlockArp`) are tiny — only the rare fat ones pay a heap indirection.
/// Wire formats are unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LazyMsg {
    /// Group membership configuration (boxed: fat, infrequent).
    GroupAssign(Box<GroupAssignMsg>),
    /// L-FIB delta over a peer/state link (boxed: fat, infrequent).
    LfibSync(Box<LfibSyncMsg>),
    /// Bloom-filter refresh for peers' G-FIBs (boxed: fat, infrequent).
    GfibUpdate(Box<GfibUpdateMsg>),
    /// Designated switch's aggregated report to the controller (boxed:
    /// fat, infrequent).
    StateReport(Box<StateReportMsg>),
    /// Failure-detection wheel keep-alive.
    KeepAlive(KeepAliveMsg),
    /// Group-size bargaining round.
    Bargain(BargainMsg),
    /// Controller orders a switch to suppress ARP punts for a tenant whose
    /// hosts all live inside one group (§III-D.3).
    BlockArp {
        /// Tenant whose ARP traffic is handled entirely intra-group.
        tenant: TenantId,
        /// True to block, false to unblock.
        block: bool,
    },
    /// Keep-alive loss observation for Table I failure inference.
    WheelReport(WheelReportMsg),
    /// Controller overload back-pressure: pace PacketIn-driven setups.
    CongestionNotice(CongestionNoticeMsg),
}

impl LazyMsg {
    /// Wraps (and boxes) a group assignment.
    pub fn group_assign(m: GroupAssignMsg) -> Self {
        LazyMsg::GroupAssign(Box::new(m))
    }

    /// Wraps (and boxes) an L-FIB sync.
    pub fn lfib_sync(m: LfibSyncMsg) -> Self {
        LazyMsg::LfibSync(Box::new(m))
    }

    /// Wraps (and boxes) a G-FIB update.
    pub fn gfib_update(m: GfibUpdateMsg) -> Self {
        LazyMsg::GfibUpdate(Box::new(m))
    }

    /// Wraps (and boxes) a state report.
    pub fn state_report(m: StateReportMsg) -> Self {
        LazyMsg::StateReport(Box::new(m))
    }

    /// Exact encoded body size (bytes after the common header), without
    /// paying for an encode — the bandwidth model prices every message by
    /// its wire size, so this must stay in lockstep with
    /// [`encode_body`](Self::encode_body) (pinned by a round-trip test).
    pub(crate) fn wire_body_len(&self) -> usize {
        match self {
            LazyMsg::GroupAssign(m) => {
                2 + 4 + 4 + 4 + 4 * m.members.len() + 4 + 4 + 4 * m.backups.len() + 4 * 5
            }
            LazyMsg::LfibSync(m) => {
                2 + 4 + 4 + 4 + m.entries.len() * LfibEntry::WIRE_LEN + 4 + m.removed.len() * 6
            }
            LazyMsg::GfibUpdate(m) => 2 + 4 + 4 + 1 + 4 + 4 + 4 + m.bits.len(),
            LazyMsg::StateReport(m) => {
                2 + 4 + 4 + 4 + m.intensity.len() * 16 + 4 + m.stats.len() * 36
            }
            LazyMsg::KeepAlive(_) => 2 + 4 + 8,
            LazyMsg::Bargain(_) => 2 + 4 + 1 + 4 + 1,
            LazyMsg::BlockArp { .. } => 2 + 2 + 1,
            LazyMsg::WheelReport(_) => 2 + 4 + 4 + 1,
            LazyMsg::CongestionNotice(_) => 2 + 4 + 1,
        }
    }

    pub(crate) fn encode_body<B: BufMut>(&self, buf: &mut B) {
        match self {
            LazyMsg::GroupAssign(m) => {
                buf.put_u16(SUB_GROUP_ASSIGN);
                buf.put_u32(m.group.0);
                buf.put_u32(m.epoch);
                buf.put_u32(m.members.len() as u32);
                for s in &m.members {
                    buf.put_u32(s.0);
                }
                buf.put_u32(m.designated.0);
                buf.put_u32(m.backups.len() as u32);
                for s in &m.backups {
                    buf.put_u32(s.0);
                }
                buf.put_u32(m.ring_prev.0);
                buf.put_u32(m.ring_next.0);
                buf.put_u32(m.sync_interval_ms);
                buf.put_u32(m.keepalive_interval_ms);
                buf.put_u32(m.group_size_limit);
            }
            LazyMsg::LfibSync(m) => {
                buf.put_u16(SUB_LFIB_SYNC);
                buf.put_u32(m.origin.0);
                buf.put_u32(m.epoch);
                buf.put_u32(m.entries.len() as u32);
                for e in &m.entries {
                    e.encode_into(buf);
                }
                buf.put_u32(m.removed.len() as u32);
                for mac in &m.removed {
                    buf.put_slice(&mac.octets());
                }
            }
            LazyMsg::GfibUpdate(m) => {
                buf.put_u16(SUB_GFIB_UPDATE);
                buf.put_u32(m.origin.0);
                buf.put_u32(m.epoch);
                buf.put_u8(m.num_hashes);
                buf.put_u32(m.m_bits);
                buf.put_u32(m.entries);
                buf.put_u32(m.bits.len() as u32);
                buf.put_slice(&m.bits);
            }
            LazyMsg::StateReport(m) => {
                buf.put_u16(SUB_STATE_REPORT);
                buf.put_u32(m.group.0);
                buf.put_u32(m.epoch);
                buf.put_u32(m.intensity.len() as u32);
                for (a, b, w) in &m.intensity {
                    buf.put_u32(a.0);
                    buf.put_u32(b.0);
                    buf.put_u64(w.to_bits());
                }
                buf.put_u32(m.stats.len() as u32);
                for (s, st) in &m.stats {
                    buf.put_u32(s.0);
                    buf.put_u64(st.new_flows_per_sec.to_bits());
                    buf.put_u64(st.local_hits);
                    buf.put_u64(st.group_hits);
                    buf.put_u64(st.controller_punts);
                }
            }
            LazyMsg::KeepAlive(m) => {
                buf.put_u16(SUB_KEEP_ALIVE);
                buf.put_u32(m.from.0);
                buf.put_u64(m.seq);
            }
            LazyMsg::Bargain(m) => {
                buf.put_u16(SUB_BARGAIN);
                buf.put_u32(m.round);
                buf.put_u8(m.from_controller as u8);
                buf.put_u32(m.proposed_limit);
                buf.put_u8(m.accept as u8);
            }
            LazyMsg::BlockArp { tenant, block } => {
                buf.put_u16(SUB_BLOCK_ARP);
                buf.put_u16(tenant.as_u16());
                buf.put_u8(*block as u8);
            }
            LazyMsg::WheelReport(m) => {
                buf.put_u16(SUB_WHEEL_REPORT);
                buf.put_u32(m.reporter.0);
                buf.put_u32(m.missing.0);
                buf.put_u8(m.loss.to_u8());
            }
            LazyMsg::CongestionNotice(m) => {
                buf.put_u16(SUB_CONGESTION_NOTICE);
                buf.put_u32(m.from);
                buf.put_u8(m.level);
            }
        }
    }

    pub(crate) fn decode_body(body: &[u8]) -> Result<Self> {
        let mut r = Reader::new(body, "lazy body");
        let subtype = r.u16()?;
        let msg = match subtype {
            SUB_GROUP_ASSIGN => {
                let group = GroupId::new(r.u32()?);
                let epoch = r.u32()?;
                let n = r.count_prefix(4)?;
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    members.push(SwitchId::new(r.u32()?));
                }
                let designated = SwitchId::new(r.u32()?);
                let nb = r.count_prefix(4)?;
                let mut backups = Vec::with_capacity(nb);
                for _ in 0..nb {
                    backups.push(SwitchId::new(r.u32()?));
                }
                LazyMsg::group_assign(GroupAssignMsg {
                    group,
                    epoch,
                    members,
                    designated,
                    backups,
                    ring_prev: SwitchId::new(r.u32()?),
                    ring_next: SwitchId::new(r.u32()?),
                    sync_interval_ms: r.u32()?,
                    keepalive_interval_ms: r.u32()?,
                    group_size_limit: r.u32()?,
                })
            }
            SUB_LFIB_SYNC => {
                let origin = SwitchId::new(r.u32()?);
                let epoch = r.u32()?;
                let n = r.count_prefix(LfibEntry::WIRE_LEN)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(LfibEntry::decode(&mut r)?);
                }
                let nr = r.count_prefix(6)?;
                let mut removed = Vec::with_capacity(nr);
                for _ in 0..nr {
                    removed.push(MacAddr::new(r.array()?));
                }
                LazyMsg::lfib_sync(LfibSyncMsg {
                    origin,
                    epoch,
                    entries,
                    removed,
                })
            }
            SUB_GFIB_UPDATE => {
                let origin = SwitchId::new(r.u32()?);
                let epoch = r.u32()?;
                let num_hashes = r.u8()?;
                let m_bits = r.u32()?;
                let entries = r.u32()?;
                let n = r.len_prefix()?;
                if m_bits as u64 > n as u64 * 8 {
                    return Err(ProtoError::InvalidField {
                        field: "gfib.m_bits",
                        value: m_bits as u64,
                    });
                }
                LazyMsg::gfib_update(GfibUpdateMsg {
                    origin,
                    epoch,
                    num_hashes,
                    m_bits,
                    entries,
                    bits: r.bytes(n)?,
                })
            }
            SUB_STATE_REPORT => {
                let group = GroupId::new(r.u32()?);
                let epoch = r.u32()?;
                let n = r.count_prefix(16)?;
                let mut intensity = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = SwitchId::new(r.u32()?);
                    let b = SwitchId::new(r.u32()?);
                    let w = r.f64()?;
                    intensity.push((a, b, w));
                }
                let ns = r.count_prefix(36)?;
                let mut stats = Vec::with_capacity(ns);
                for _ in 0..ns {
                    let s = SwitchId::new(r.u32()?);
                    stats.push((
                        s,
                        SwitchStats {
                            new_flows_per_sec: r.f64()?,
                            local_hits: r.u64()?,
                            group_hits: r.u64()?,
                            controller_punts: r.u64()?,
                        },
                    ));
                }
                LazyMsg::state_report(StateReportMsg {
                    group,
                    epoch,
                    intensity,
                    stats,
                })
            }
            SUB_KEEP_ALIVE => LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(r.u32()?),
                seq: r.u64()?,
            }),
            SUB_BARGAIN => LazyMsg::Bargain(BargainMsg {
                round: r.u32()?,
                from_controller: r.u8()? != 0,
                proposed_limit: r.u32()?,
                accept: r.u8()? != 0,
            }),
            SUB_BLOCK_ARP => {
                let raw = r.u16()?;
                if raw > 0x0fff {
                    return Err(ProtoError::InvalidField {
                        field: "block_arp.tenant",
                        value: raw as u64,
                    });
                }
                LazyMsg::BlockArp {
                    tenant: TenantId::new(raw),
                    block: r.u8()? != 0,
                }
            }
            SUB_WHEEL_REPORT => LazyMsg::WheelReport(WheelReportMsg {
                reporter: SwitchId::new(r.u32()?),
                missing: SwitchId::new(r.u32()?),
                loss: WheelLoss::from_u8(r.u8()?)?,
            }),
            SUB_CONGESTION_NOTICE => LazyMsg::CongestionNotice(CongestionNoticeMsg {
                from: r.u32()?,
                level: r.u8()?,
            }),
            other => return Err(ProtoError::UnknownLazySubtype(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtoError::LengthMismatch {
                declared: body.len(),
                actual: body.len() - r.remaining(),
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: LazyMsg) {
        let mut body = Vec::new();
        m.encode_body(&mut body);
        assert_eq!(LazyMsg::decode_body(&body).unwrap(), m);
    }

    #[test]
    fn group_assign_round_trips() {
        round_trip(LazyMsg::group_assign(GroupAssignMsg {
            group: GroupId::new(2),
            epoch: 9,
            members: vec![SwitchId::new(1), SwitchId::new(5), SwitchId::new(9)],
            designated: SwitchId::new(5),
            backups: vec![SwitchId::new(9)],
            ring_prev: SwitchId::new(9),
            ring_next: SwitchId::new(5),
            sync_interval_ms: 1000,
            keepalive_interval_ms: 500,
            group_size_limit: 46,
        }));
    }

    #[test]
    fn lfib_sync_round_trips() {
        round_trip(LazyMsg::lfib_sync(LfibSyncMsg {
            origin: SwitchId::new(3),
            epoch: 1,
            entries: vec![
                LfibEntry {
                    mac: MacAddr::for_host(100),
                    tenant: TenantId::new(7),
                    port: PortNo::new(4),
                },
                LfibEntry {
                    mac: MacAddr::for_host(101),
                    tenant: TenantId::new(7),
                    port: PortNo::new(5),
                },
            ],
            removed: vec![MacAddr::for_host(55)],
        }));
    }

    #[test]
    fn gfib_update_round_trips() {
        round_trip(LazyMsg::gfib_update(GfibUpdateMsg {
            origin: SwitchId::new(12),
            epoch: 3,
            num_hashes: 4,
            m_bits: 2000,
            entries: 128,
            bits: vec![0xaa; 256],
        }));
    }

    #[test]
    fn state_report_round_trips() {
        round_trip(LazyMsg::state_report(StateReportMsg {
            group: GroupId::new(1),
            epoch: 2,
            intensity: vec![(SwitchId::new(1), SwitchId::new(2), 12.5)],
            stats: vec![(
                SwitchId::new(1),
                SwitchStats {
                    new_flows_per_sec: 100.25,
                    local_hits: 10,
                    group_hits: 20,
                    controller_punts: 3,
                },
            )],
        }));
    }

    #[test]
    fn keepalive_bargain_blockarp_round_trip() {
        round_trip(LazyMsg::KeepAlive(KeepAliveMsg {
            from: SwitchId::new(7),
            seq: u64::MAX,
        }));
        round_trip(LazyMsg::Bargain(BargainMsg {
            round: 3,
            from_controller: true,
            proposed_limit: 300,
            accept: false,
        }));
        round_trip(LazyMsg::BlockArp {
            tenant: TenantId::new(44),
            block: true,
        });
    }

    #[test]
    fn congestion_notice_round_trips() {
        round_trip(LazyMsg::CongestionNotice(CongestionNoticeMsg {
            from: 3,
            level: 2,
        }));
        round_trip(LazyMsg::CongestionNotice(CongestionNoticeMsg {
            from: u32::MAX,
            level: u8::MAX,
        }));
    }

    #[test]
    fn unknown_subtype_rejected() {
        let body = 0x7777u16.to_be_bytes();
        assert!(matches!(
            LazyMsg::decode_body(&body).unwrap_err(),
            ProtoError::UnknownLazySubtype(0x7777)
        ));
    }

    #[test]
    fn chunking_splits_large_syncs() {
        let entries: Vec<LfibEntry> = (0..2500)
            .map(|i| LfibEntry {
                mac: MacAddr::for_host(i),
                tenant: TenantId::new(1),
                port: PortNo::new(1),
            })
            .collect();
        let chunks = LfibSyncMsg::chunked(SwitchId::new(1), 4, entries.clone(), vec![], 1000);
        assert_eq!(chunks.len(), 3);
        let reassembled: Vec<LfibEntry> = chunks.iter().flat_map(|c| c.entries.clone()).collect();
        assert_eq!(reassembled, entries);
        for c in &chunks {
            assert_eq!(c.epoch, 4);
            assert!(c.entries.len() <= 1000);
        }
    }

    #[test]
    fn chunking_handles_removed_only() {
        let removed: Vec<MacAddr> = (0..10).map(MacAddr::for_host).collect();
        let chunks = LfibSyncMsg::chunked(SwitchId::new(1), 1, vec![], removed.clone(), 4);
        let reassembled: Vec<MacAddr> = chunks.iter().flat_map(|c| c.removed.clone()).collect();
        assert_eq!(reassembled, removed);
    }
}
