//! Control-protocol messages: the OpenFlow 1.0-style subset plus the
//! LazyCtrl vendor extension family.

mod cluster;
mod lazy;
mod of;

pub use cluster::{
    ClusterMsg, CtrlHeartbeatMsg, HostEntry, LeaderClaimMsg, LookupReplyMsg, LookupRequestMsg,
    OwnershipTransferMsg, PeerSyncMsg, SyncDigestMsg, SyncRelayMsg, TransferAckMsg, TransferReason,
    VoteReplyMsg, VoteRequestMsg,
};
pub use lazy::{
    BargainMsg, GfibUpdateMsg, GroupAssignMsg, KeepAliveMsg, LazyMsg, LfibEntry, LfibSyncMsg,
    StateReportMsg, SwitchStats, WheelLoss, WheelReportMsg, WHEEL_MISS_THRESHOLD,
};
pub use of::{
    EchoKind, ErrorCode, FlowModCommand, FlowModMsg, OfMessage, PacketInMsg, PacketInReason,
    PacketOutMsg,
};

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::header::Header;
use crate::wire::Reader;
use crate::{MsgType, ProtoError, Result, OFP_HEADER_LEN, PROTO_VERSION};

/// A complete control message: transaction id plus body.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use lazyctrl_proto::{Message, OfMessage};
///
/// let msg = Message::of(7, OfMessage::EchoRequest(vec![1, 2, 3]));
/// let wire = msg.encode();
/// assert_eq!(Message::decode(&wire)?, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id; replies echo the request's xid.
    pub xid: u32,
    /// The payload.
    pub body: MessageBody,
}

/// Either a standard OpenFlow-style message or a LazyCtrl extension.
///
/// A `Message` is moved through every scheduler entry and channel hop of
/// the simulation, so its inline size is a per-event constant. The fat
/// payload variants inside each family (`GroupAssign`, `StateReport`,
/// bulk syncs, `FlowMod`) are boxed at the *variant* level — see
/// [`LazyMsg`], [`ClusterMsg`], [`OfMessage`] — which keeps
/// `size_of::<Message>() ≤ 64` (enforced by a regression test below)
/// while the frequent small messages (`PacketIn`/`PacketOut` on the
/// packet path, `KeepAlive`/`Heartbeat`/`WheelReport` on the liveness
/// path) stay inline and allocation-free. Wire formats are unchanged —
/// encode/decode go through the boxes transparently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MessageBody {
    /// Standard OpenFlow 1.0-style message.
    Of(OfMessage),
    /// LazyCtrl vendor extension message.
    Lazy(LazyMsg),
    /// Controller-to-controller cluster message.
    Cluster(ClusterMsg),
}

impl Message {
    /// Wraps a standard message.
    pub fn of(xid: u32, msg: OfMessage) -> Self {
        Message {
            xid,
            body: MessageBody::Of(msg),
        }
    }

    /// Wraps a LazyCtrl extension message.
    pub fn lazy(xid: u32, msg: LazyMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Lazy(msg),
        }
    }

    /// Wraps a controller-cluster message.
    pub fn cluster(xid: u32, msg: ClusterMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Cluster(msg),
        }
    }

    /// The OpenFlow-style body, if this is a standard message.
    pub fn as_of(&self) -> Option<&OfMessage> {
        match &self.body {
            MessageBody::Of(m) => Some(m),
            _ => None,
        }
    }

    /// The LazyCtrl extension body, if any.
    pub fn as_lazy(&self) -> Option<&LazyMsg> {
        match &self.body {
            MessageBody::Lazy(m) => Some(m),
            _ => None,
        }
    }

    /// The cluster body, if any.
    pub fn as_cluster(&self) -> Option<&ClusterMsg> {
        match &self.body {
            MessageBody::Cluster(m) => Some(m),
            _ => None,
        }
    }

    /// The wire-level message type.
    pub fn msg_type(&self) -> MsgType {
        match &self.body {
            MessageBody::Of(m) => m.msg_type(),
            MessageBody::Lazy(_) => MsgType::Lazy,
            MessageBody::Cluster(_) => MsgType::Cluster,
        }
    }

    /// Serializes header + body.
    ///
    /// # Panics
    ///
    /// Panics if the encoded message exceeds 65535 bytes (the header length
    /// field is 16 bits, as in OpenFlow). Bulk payloads such as L-FIB syncs
    /// provide chunking helpers to stay under the limit.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match &self.body {
            MessageBody::Of(m) => m.encode_body(&mut body),
            MessageBody::Lazy(m) => m.encode_body(&mut body),
            MessageBody::Cluster(m) => m.encode_body(&mut body),
        }
        let total = OFP_HEADER_LEN + body.len();
        assert!(
            total <= u16::MAX as usize,
            "message of {total} bytes exceeds 16-bit length field; chunk the payload"
        );
        let mut buf = Vec::with_capacity(total);
        Header {
            version: PROTO_VERSION,
            msg_type: self.msg_type(),
            length: total as u16,
            xid: self.xid,
        }
        .encode_into(&mut buf);
        buf.put_slice(&body);
        buf
    }

    /// Parses one complete message from `buf`.
    ///
    /// `buf` must contain exactly one message (use
    /// [`codec::MessageCodec`](crate::codec::MessageCodec) to frame a byte
    /// stream first).
    ///
    /// # Errors
    ///
    /// Any header or body parse failure, or a length field that disagrees
    /// with `buf.len()`.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "message");
        let header = Header::decode(&mut r)?;
        if header.length as usize != buf.len() {
            return Err(ProtoError::LengthMismatch {
                declared: header.length as usize,
                actual: buf.len(),
            });
        }
        let body = &buf[OFP_HEADER_LEN..];
        let parsed = match header.msg_type {
            MsgType::Lazy => MessageBody::Lazy(LazyMsg::decode_body(body)?),
            MsgType::Cluster => MessageBody::Cluster(ClusterMsg::decode_body(body)?),
            t => MessageBody::Of(OfMessage::decode_body(t, body)?),
        };
        Ok(Message {
            xid: header.xid,
            body: parsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};

    /// The layout contract the hot path depends on: a `Message` moves
    /// through every scheduler entry and channel hop, so its inline size
    /// is a per-event constant. Boxing the fat payload variants
    /// (`GroupAssign`, bulk syncs, `StateReport`, `FlowMod`) bought the
    /// ≤64-byte bound — this test keeps the enums from silently regrowing
    /// when a variant gains a field.
    #[test]
    fn message_stays_compact() {
        use std::mem::size_of;
        assert!(
            size_of::<Message>() <= 64,
            "Message grew to {} bytes; box the offending variant",
            size_of::<Message>()
        );
        // The hot small variants stay inline (boxing them would put an
        // allocation on the per-packet / per-keepalive path), so each
        // family must stay within the bound on its own.
        assert!(size_of::<OfMessage>() <= 56, "OfMessage grew");
        assert!(size_of::<LazyMsg>() <= 32, "LazyMsg grew");
        assert!(size_of::<ClusterMsg>() <= 48, "ClusterMsg grew");
        assert!(size_of::<PacketInMsg>() <= 24, "PacketInMsg grew");
        assert!(size_of::<PacketOutMsg>() <= 48, "PacketOutMsg grew");
    }

    #[test]
    fn body_accessors_see_through_the_box() {
        let of = Message::of(1, OfMessage::Hello);
        assert_eq!(of.as_of(), Some(&OfMessage::Hello));
        assert!(of.as_lazy().is_none() && of.as_cluster().is_none());
        let lazy = Message::lazy(
            2,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(1),
                seq: 9,
            }),
        );
        assert!(matches!(lazy.as_lazy(), Some(LazyMsg::KeepAlive(k)) if k.seq == 9));
        let cluster = Message::cluster(
            3,
            ClusterMsg::LookupRequest(LookupRequestMsg {
                from: 4,
                mac: MacAddr::for_host(5),
            }),
        );
        assert!(matches!(
            cluster.as_cluster(),
            Some(ClusterMsg::LookupRequest(r)) if r.from == 4
        ));
    }

    #[test]
    fn hello_round_trips() {
        let m = Message::of(1, OfMessage::Hello);
        let wire = m.encode();
        assert_eq!(wire.len(), OFP_HEADER_LEN);
        assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut wire = Message::of(1, OfMessage::Hello).encode();
        wire.push(0); // trailing garbage
        assert!(matches!(
            Message::decode(&wire).unwrap_err(),
            ProtoError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn lazy_keepalive_round_trips() {
        let m = Message::lazy(
            9,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(3),
                seq: 77,
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn packet_in_round_trips() {
        let m = Message::of(
            2,
            OfMessage::PacketIn(PacketInMsg {
                buffer_id: 42,
                in_port: PortNo::new(3),
                reason: PacketInReason::NoMatch,
                data: vec![1, 2, 3, 4].into(),
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lfib_sync_round_trips() {
        let m = Message::lazy(
            3,
            LazyMsg::lfib_sync(LfibSyncMsg {
                origin: SwitchId::new(8),
                epoch: 5,
                entries: vec![LfibEntry {
                    mac: MacAddr::for_host(11),
                    tenant: TenantId::new(2),
                    port: PortNo::new(1),
                }],
                removed: vec![MacAddr::for_host(12)],
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "chunk the payload")]
    fn oversized_message_panics_at_encode() {
        let entries = (0..7000)
            .map(|i| LfibEntry {
                mac: MacAddr::for_host(i),
                tenant: TenantId::new(1),
                port: PortNo::new(1),
            })
            .collect();
        let m = Message::lazy(
            1,
            LazyMsg::lfib_sync(LfibSyncMsg {
                origin: SwitchId::new(1),
                epoch: 1,
                entries,
                removed: vec![],
            }),
        );
        let _ = m.encode();
    }
}
