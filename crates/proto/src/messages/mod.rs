//! Control-protocol messages: the OpenFlow 1.0-style subset plus the
//! LazyCtrl vendor extension family.

mod cluster;
mod lazy;
mod of;

pub use cluster::{
    ClusterMsg, CtrlHeartbeatMsg, HostEntry, LeaderClaimMsg, LookupReplyMsg, LookupRequestMsg,
    OwnershipTransferMsg, PeerSyncMsg, SyncDigestMsg, SyncRelayMsg, TransferAckMsg, TransferReason,
    VoteReplyMsg, VoteRequestMsg,
};
pub use lazy::{
    BargainMsg, CongestionNoticeMsg, GfibUpdateMsg, GroupAssignMsg, KeepAliveMsg, LazyMsg,
    LfibEntry, LfibSyncMsg, StateReportMsg, SwitchStats, WheelLoss, WheelReportMsg,
    WHEEL_MISS_THRESHOLD,
};
pub use of::{
    EchoKind, ErrorCode, FlowModCommand, FlowModMsg, OfMessage, PacketInMsg, PacketInReason,
    PacketOutMsg,
};

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::header::Header;
use crate::wire::Reader;
use crate::{MsgType, ProtoError, Result, OFP_HEADER_LEN, PROTO_VERSION};

/// A complete control message: transaction id plus body.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use lazyctrl_proto::{Message, OfMessage};
///
/// let msg = Message::of(7, OfMessage::EchoRequest(vec![1, 2, 3]));
/// let wire = msg.encode();
/// assert_eq!(Message::decode(&wire)?, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id; replies echo the request's xid.
    pub xid: u32,
    /// The payload.
    pub body: MessageBody,
}

/// Ingress priority class of a control message at a controller, highest
/// first. The bounded ingress queues shed the *lowest* classes first when
/// overloaded; [`MsgPriority::Critical`] traffic (failure detection and
/// elections) is never shed — overload must not look like death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgPriority {
    /// Keep-alives, wheel reports, controller heartbeats and election
    /// traffic. Never shed: shedding these would turn overload into
    /// spurious failovers.
    Critical,
    /// Ownership transfers, replication syncs, configuration pushes —
    /// state the cluster must eventually converge on.
    OwnershipSync,
    /// Synchronous host lookups (a shed lookup retries under its own
    /// deadline machinery).
    Lookup,
    /// PacketIn-driven flow setups — the elastic load, first to shed.
    FlowSetup,
}

impl MsgPriority {
    /// Number of priority classes (for dense per-class tables).
    pub const COUNT: usize = 4;

    /// Dense index of this class in `0..COUNT`, highest priority first.
    pub const fn index(self) -> usize {
        match self {
            MsgPriority::Critical => 0,
            MsgPriority::OwnershipSync => 1,
            MsgPriority::Lookup => 2,
            MsgPriority::FlowSetup => 3,
        }
    }
}

/// Either a standard OpenFlow-style message or a LazyCtrl extension.
///
/// A `Message` is moved through every scheduler entry and channel hop of
/// the simulation, so its inline size is a per-event constant. The fat
/// payload variants inside each family (`GroupAssign`, `StateReport`,
/// bulk syncs, `FlowMod`) are boxed at the *variant* level — see
/// [`LazyMsg`], [`ClusterMsg`], [`OfMessage`] — which keeps
/// `size_of::<Message>() ≤ 64` (enforced by a regression test below)
/// while the frequent small messages (`PacketIn`/`PacketOut` on the
/// packet path, `KeepAlive`/`Heartbeat`/`WheelReport` on the liveness
/// path) stay inline and allocation-free. Wire formats are unchanged —
/// encode/decode go through the boxes transparently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MessageBody {
    /// Standard OpenFlow 1.0-style message.
    Of(OfMessage),
    /// LazyCtrl vendor extension message.
    Lazy(LazyMsg),
    /// Controller-to-controller cluster message.
    Cluster(ClusterMsg),
}

impl Message {
    /// Wraps a standard message.
    pub fn of(xid: u32, msg: OfMessage) -> Self {
        Message {
            xid,
            body: MessageBody::Of(msg),
        }
    }

    /// Wraps a LazyCtrl extension message.
    pub fn lazy(xid: u32, msg: LazyMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Lazy(msg),
        }
    }

    /// Wraps a controller-cluster message.
    pub fn cluster(xid: u32, msg: ClusterMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Cluster(msg),
        }
    }

    /// The OpenFlow-style body, if this is a standard message.
    pub fn as_of(&self) -> Option<&OfMessage> {
        match &self.body {
            MessageBody::Of(m) => Some(m),
            _ => None,
        }
    }

    /// The LazyCtrl extension body, if any.
    pub fn as_lazy(&self) -> Option<&LazyMsg> {
        match &self.body {
            MessageBody::Lazy(m) => Some(m),
            _ => None,
        }
    }

    /// The cluster body, if any.
    pub fn as_cluster(&self) -> Option<&ClusterMsg> {
        match &self.body {
            MessageBody::Cluster(m) => Some(m),
            _ => None,
        }
    }

    /// The wire-level message type.
    pub fn msg_type(&self) -> MsgType {
        match &self.body {
            MessageBody::Of(m) => m.msg_type(),
            MessageBody::Lazy(_) => MsgType::Lazy,
            MessageBody::Cluster(_) => MsgType::Cluster,
        }
    }

    /// Exact encoded size of this message on the wire (header + body),
    /// without paying for an encode. The bandwidth model prices every
    /// dispatched message by this; it must equal `self.encode().len()`
    /// (pinned by a test over every variant).
    pub fn wire_len(&self) -> usize {
        OFP_HEADER_LEN
            + match &self.body {
                MessageBody::Of(m) => m.wire_body_len(),
                MessageBody::Lazy(m) => m.wire_body_len(),
                MessageBody::Cluster(m) => m.wire_body_len(),
            }
    }

    /// The controller-ingress priority class of this message (see
    /// [`MsgPriority`] for the shedding ladder).
    pub fn priority(&self) -> MsgPriority {
        match &self.body {
            MessageBody::Of(OfMessage::PacketIn(_)) => MsgPriority::FlowSetup,
            MessageBody::Lazy(LazyMsg::KeepAlive(_) | LazyMsg::WheelReport(_)) => {
                MsgPriority::Critical
            }
            MessageBody::Cluster(
                ClusterMsg::Heartbeat(_)
                | ClusterMsg::VoteRequest(_)
                | ClusterMsg::VoteReply(_)
                | ClusterMsg::LeaderClaim(_),
            ) => MsgPriority::Critical,
            MessageBody::Cluster(ClusterMsg::LookupRequest(_) | ClusterMsg::LookupReply(_)) => {
                MsgPriority::Lookup
            }
            // Ownership transfers, replication syncs, configuration
            // pushes, and the miscellaneous OpenFlow plumbing.
            _ => MsgPriority::OwnershipSync,
        }
    }

    /// Serializes header + body.
    ///
    /// # Panics
    ///
    /// Panics if the encoded message exceeds 65535 bytes (the header length
    /// field is 16 bits, as in OpenFlow). Bulk payloads such as L-FIB syncs
    /// provide chunking helpers to stay under the limit.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match &self.body {
            MessageBody::Of(m) => m.encode_body(&mut body),
            MessageBody::Lazy(m) => m.encode_body(&mut body),
            MessageBody::Cluster(m) => m.encode_body(&mut body),
        }
        let total = OFP_HEADER_LEN + body.len();
        assert!(
            total <= u16::MAX as usize,
            "message of {total} bytes exceeds 16-bit length field; chunk the payload"
        );
        let mut buf = Vec::with_capacity(total);
        Header {
            version: PROTO_VERSION,
            msg_type: self.msg_type(),
            length: total as u16,
            xid: self.xid,
        }
        .encode_into(&mut buf);
        buf.put_slice(&body);
        buf
    }

    /// Parses one complete message from `buf`.
    ///
    /// `buf` must contain exactly one message (use
    /// [`codec::MessageCodec`](crate::codec::MessageCodec) to frame a byte
    /// stream first).
    ///
    /// # Errors
    ///
    /// Any header or body parse failure, or a length field that disagrees
    /// with `buf.len()`.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "message");
        let header = Header::decode(&mut r)?;
        if header.length as usize != buf.len() {
            return Err(ProtoError::LengthMismatch {
                declared: header.length as usize,
                actual: buf.len(),
            });
        }
        let body = &buf[OFP_HEADER_LEN..];
        let parsed = match header.msg_type {
            MsgType::Lazy => MessageBody::Lazy(LazyMsg::decode_body(body)?),
            MsgType::Cluster => MessageBody::Cluster(ClusterMsg::decode_body(body)?),
            t => MessageBody::Of(OfMessage::decode_body(t, body)?),
        };
        Ok(Message {
            xid: header.xid,
            body: parsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};

    /// The layout contract the hot path depends on: a `Message` moves
    /// through every scheduler entry and channel hop, so its inline size
    /// is a per-event constant. Boxing the fat payload variants
    /// (`GroupAssign`, bulk syncs, `StateReport`, `FlowMod`) bought the
    /// ≤64-byte bound — this test keeps the enums from silently regrowing
    /// when a variant gains a field.
    #[test]
    fn message_stays_compact() {
        use std::mem::size_of;
        assert!(
            size_of::<Message>() <= 64,
            "Message grew to {} bytes; box the offending variant",
            size_of::<Message>()
        );
        // The hot small variants stay inline (boxing them would put an
        // allocation on the per-packet / per-keepalive path), so each
        // family must stay within the bound on its own.
        assert!(size_of::<OfMessage>() <= 56, "OfMessage grew");
        assert!(size_of::<LazyMsg>() <= 32, "LazyMsg grew");
        assert!(size_of::<ClusterMsg>() <= 48, "ClusterMsg grew");
        assert!(size_of::<PacketInMsg>() <= 24, "PacketInMsg grew");
        assert!(size_of::<PacketOutMsg>() <= 48, "PacketOutMsg grew");
    }

    #[test]
    fn body_accessors_see_through_the_box() {
        let of = Message::of(1, OfMessage::Hello);
        assert_eq!(of.as_of(), Some(&OfMessage::Hello));
        assert!(of.as_lazy().is_none() && of.as_cluster().is_none());
        let lazy = Message::lazy(
            2,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(1),
                seq: 9,
            }),
        );
        assert!(matches!(lazy.as_lazy(), Some(LazyMsg::KeepAlive(k)) if k.seq == 9));
        let cluster = Message::cluster(
            3,
            ClusterMsg::LookupRequest(LookupRequestMsg {
                from: 4,
                mac: MacAddr::for_host(5),
            }),
        );
        assert!(matches!(
            cluster.as_cluster(),
            Some(ClusterMsg::LookupRequest(r)) if r.from == 4
        ));
    }

    #[test]
    fn hello_round_trips() {
        let m = Message::of(1, OfMessage::Hello);
        let wire = m.encode();
        assert_eq!(wire.len(), OFP_HEADER_LEN);
        assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut wire = Message::of(1, OfMessage::Hello).encode();
        wire.push(0); // trailing garbage
        assert!(matches!(
            Message::decode(&wire).unwrap_err(),
            ProtoError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn lazy_keepalive_round_trips() {
        let m = Message::lazy(
            9,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(3),
                seq: 77,
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn packet_in_round_trips() {
        let m = Message::of(
            2,
            OfMessage::PacketIn(PacketInMsg {
                buffer_id: 42,
                in_port: PortNo::new(3),
                reason: PacketInReason::NoMatch,
                data: vec![1, 2, 3, 4].into(),
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lfib_sync_round_trips() {
        let m = Message::lazy(
            3,
            LazyMsg::lfib_sync(LfibSyncMsg {
                origin: SwitchId::new(8),
                epoch: 5,
                entries: vec![LfibEntry {
                    mac: MacAddr::for_host(11),
                    tenant: TenantId::new(2),
                    port: PortNo::new(1),
                }],
                removed: vec![MacAddr::for_host(12)],
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    /// One representative `Message` per wire variant, fat payloads
    /// populated so every length term is exercised.
    fn every_variant() -> Vec<Message> {
        use crate::{Action, FlowMatch};
        let entry = HostEntry {
            mac: MacAddr::for_host(10),
            switch: SwitchId::new(3),
            port: PortNo::new(2),
            tenant: TenantId::new(5),
        };
        let sync = PeerSyncMsg {
            origin: 1,
            seq: 42,
            chunk: 3,
            summary: false,
            entries: vec![entry, entry],
            removed: vec![(MacAddr::for_host(55), SwitchId::new(3))],
        };
        vec![
            Message::of(1, OfMessage::Hello),
            Message::of(2, OfMessage::FeaturesRequest),
            Message::of(3, OfMessage::StatsRequest),
            Message::of(
                4,
                OfMessage::Error {
                    code: ErrorCode::StaleEpoch,
                    data: vec![1, 2, 3],
                },
            ),
            Message::of(5, OfMessage::EchoRequest(vec![7; 9])),
            Message::of(6, OfMessage::EchoReply(vec![])),
            Message::of(
                7,
                OfMessage::FeaturesReply {
                    datapath_id: 0xabcd,
                    n_ports: 48,
                },
            ),
            Message::of(
                8,
                OfMessage::PacketIn(PacketInMsg {
                    buffer_id: 42,
                    in_port: PortNo::new(3),
                    reason: PacketInReason::NoMatch,
                    data: vec![1, 2, 3, 4].into(),
                }),
            ),
            Message::of(
                9,
                OfMessage::PacketOut(PacketOutMsg {
                    buffer_id: u32::MAX,
                    in_port: PortNo::NONE,
                    actions: vec![Action::Output(PortNo::FLOOD)],
                    data: vec![9; 60].into(),
                }),
            ),
            Message::of(
                10,
                OfMessage::flow_mod(FlowModMsg {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::for_pair(MacAddr::for_host(1), MacAddr::for_host(2)),
                    priority: 100,
                    idle_timeout: 30,
                    hard_timeout: 0,
                    cookie: 0xfeed,
                    actions: vec![
                        Action::SetVlan(TenantId::new(7)),
                        Action::Output(PortNo::new(2)),
                    ],
                }),
            ),
            Message::of(
                11,
                OfMessage::StatsReply {
                    packets: 1 << 40,
                    flows: 1000,
                    packet_ins: 77,
                },
            ),
            Message::lazy(
                12,
                LazyMsg::group_assign(GroupAssignMsg {
                    group: lazyctrl_net::GroupId::new(2),
                    epoch: 9,
                    members: vec![SwitchId::new(1), SwitchId::new(5), SwitchId::new(9)],
                    designated: SwitchId::new(5),
                    backups: vec![SwitchId::new(9)],
                    ring_prev: SwitchId::new(9),
                    ring_next: SwitchId::new(5),
                    sync_interval_ms: 1000,
                    keepalive_interval_ms: 500,
                    group_size_limit: 46,
                }),
            ),
            Message::lazy(
                13,
                LazyMsg::lfib_sync(LfibSyncMsg {
                    origin: SwitchId::new(3),
                    epoch: 1,
                    entries: vec![LfibEntry {
                        mac: MacAddr::for_host(100),
                        tenant: TenantId::new(7),
                        port: PortNo::new(4),
                    }],
                    removed: vec![MacAddr::for_host(55), MacAddr::for_host(56)],
                }),
            ),
            Message::lazy(
                14,
                LazyMsg::gfib_update(GfibUpdateMsg {
                    origin: SwitchId::new(12),
                    epoch: 3,
                    num_hashes: 4,
                    m_bits: 2000,
                    entries: 128,
                    bits: vec![0xaa; 256],
                }),
            ),
            Message::lazy(
                15,
                LazyMsg::state_report(StateReportMsg {
                    group: lazyctrl_net::GroupId::new(1),
                    epoch: 2,
                    intensity: vec![(SwitchId::new(1), SwitchId::new(2), 12.5)],
                    stats: vec![(SwitchId::new(1), SwitchStats::default())],
                }),
            ),
            Message::lazy(
                16,
                LazyMsg::KeepAlive(KeepAliveMsg {
                    from: SwitchId::new(1),
                    seq: 9,
                }),
            ),
            Message::lazy(
                17,
                LazyMsg::Bargain(BargainMsg {
                    round: 3,
                    from_controller: true,
                    proposed_limit: 300,
                    accept: false,
                }),
            ),
            Message::lazy(
                18,
                LazyMsg::BlockArp {
                    tenant: TenantId::new(44),
                    block: true,
                },
            ),
            Message::lazy(
                19,
                LazyMsg::WheelReport(WheelReportMsg {
                    reporter: SwitchId::new(1),
                    missing: SwitchId::new(2),
                    loss: WheelLoss::Upstream,
                }),
            ),
            Message::lazy(
                20,
                LazyMsg::CongestionNotice(CongestionNoticeMsg { from: 3, level: 2 }),
            ),
            Message::cluster(21, ClusterMsg::peer_sync(sync.clone())),
            Message::cluster(
                22,
                ClusterMsg::OwnershipTransfer(OwnershipTransferMsg {
                    epoch: 4,
                    term: 2,
                    group: lazyctrl_net::GroupId::new(7),
                    from: 0,
                    to: 1,
                    reason: TransferReason::Failover,
                }),
            ),
            Message::cluster(
                23,
                ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
                    from: 0,
                    seq: 11,
                    term: 2,
                    leader: true,
                    load_rps: 12.5,
                    owned_groups: 3,
                }),
            ),
            Message::cluster(
                24,
                ClusterMsg::LookupRequest(LookupRequestMsg {
                    from: 4,
                    mac: MacAddr::for_host(5),
                }),
            ),
            Message::cluster(
                25,
                ClusterMsg::LookupReply(LookupReplyMsg {
                    from: 4,
                    mac: MacAddr::for_host(5),
                    location: Some(entry),
                }),
            ),
            Message::cluster(
                26,
                ClusterMsg::LookupReply(LookupReplyMsg {
                    from: 4,
                    mac: MacAddr::for_host(5),
                    location: None,
                }),
            ),
            Message::cluster(
                27,
                ClusterMsg::sync_digest(SyncDigestMsg {
                    from: 2,
                    heads: vec![(0, 17), (1, 0)],
                }),
            ),
            Message::cluster(
                28,
                ClusterMsg::sync_relay(SyncRelayMsg {
                    from: 1,
                    syncs: vec![sync.clone(), sync],
                }),
            ),
            Message::cluster(
                29,
                ClusterMsg::VoteRequest(VoteRequestMsg {
                    term: 3,
                    candidate: 1,
                }),
            ),
            Message::cluster(
                30,
                ClusterMsg::VoteReply(VoteReplyMsg {
                    term: 3,
                    from: 2,
                    granted: true,
                }),
            ),
            Message::cluster(
                31,
                ClusterMsg::LeaderClaim(LeaderClaimMsg { term: 3, leader: 1 }),
            ),
            Message::cluster(
                32,
                ClusterMsg::TransferAck(TransferAckMsg {
                    from: 1,
                    epoch: 4,
                    group: lazyctrl_net::GroupId::new(7),
                }),
            ),
        ]
    }

    /// `wire_len` must be *exact* for every variant — the bandwidth model
    /// prices messages by it, so a drifting estimate would silently skew
    /// congestion results.
    #[test]
    fn wire_len_matches_encoded_size() {
        for m in every_variant() {
            assert_eq!(
                m.wire_len(),
                m.encode().len(),
                "wire_len out of lockstep with encode for {:?}",
                m.body
            );
        }
    }

    /// The shedding ladder: failure detection/elections are Critical,
    /// PacketIns are FlowSetup, lookups sit between, everything else is
    /// OwnershipSync.
    #[test]
    fn priority_ladder_is_total_and_correct() {
        assert!(MsgPriority::Critical < MsgPriority::OwnershipSync);
        assert!(MsgPriority::OwnershipSync < MsgPriority::Lookup);
        assert!(MsgPriority::Lookup < MsgPriority::FlowSetup);
        for m in every_variant() {
            let p = m.priority();
            match &m.body {
                MessageBody::Of(OfMessage::PacketIn(_)) => {
                    assert_eq!(p, MsgPriority::FlowSetup)
                }
                MessageBody::Lazy(LazyMsg::KeepAlive(_) | LazyMsg::WheelReport(_))
                | MessageBody::Cluster(
                    ClusterMsg::Heartbeat(_)
                    | ClusterMsg::VoteRequest(_)
                    | ClusterMsg::VoteReply(_)
                    | ClusterMsg::LeaderClaim(_),
                ) => assert_eq!(p, MsgPriority::Critical),
                MessageBody::Cluster(ClusterMsg::LookupRequest(_) | ClusterMsg::LookupReply(_)) => {
                    assert_eq!(p, MsgPriority::Lookup)
                }
                _ => assert_eq!(p, MsgPriority::OwnershipSync),
            }
            assert!(p.index() < MsgPriority::COUNT);
        }
    }

    #[test]
    #[should_panic(expected = "chunk the payload")]
    fn oversized_message_panics_at_encode() {
        let entries = (0..7000)
            .map(|i| LfibEntry {
                mac: MacAddr::for_host(i),
                tenant: TenantId::new(1),
                port: PortNo::new(1),
            })
            .collect();
        let m = Message::lazy(
            1,
            LazyMsg::lfib_sync(LfibSyncMsg {
                origin: SwitchId::new(1),
                epoch: 1,
                entries,
                removed: vec![],
            }),
        );
        let _ = m.encode();
    }
}
