//! Control-protocol messages: the OpenFlow 1.0-style subset plus the
//! LazyCtrl vendor extension family.

mod cluster;
mod lazy;
mod of;

pub use cluster::{
    ClusterMsg, CtrlHeartbeatMsg, HostEntry, LookupReplyMsg, LookupRequestMsg,
    OwnershipTransferMsg, PeerSyncMsg, SyncDigestMsg, SyncRelayMsg, TransferReason,
};
pub use lazy::{
    BargainMsg, GfibUpdateMsg, GroupAssignMsg, KeepAliveMsg, LazyMsg, LfibEntry, LfibSyncMsg,
    StateReportMsg, SwitchStats, WheelLoss, WheelReportMsg, WHEEL_MISS_THRESHOLD,
};
pub use of::{
    EchoKind, ErrorCode, FlowModCommand, FlowModMsg, OfMessage, PacketInMsg, PacketInReason,
    PacketOutMsg,
};

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::header::Header;
use crate::wire::Reader;
use crate::{MsgType, ProtoError, Result, OFP_HEADER_LEN, PROTO_VERSION};

/// A complete control message: transaction id plus body.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use lazyctrl_proto::{Message, OfMessage};
///
/// let msg = Message::of(7, OfMessage::EchoRequest(vec![1, 2, 3]));
/// let wire = msg.encode();
/// assert_eq!(Message::decode(&wire)?, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id; replies echo the request's xid.
    pub xid: u32,
    /// The payload.
    pub body: MessageBody,
}

/// Either a standard OpenFlow-style message or a LazyCtrl extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MessageBody {
    /// Standard OpenFlow 1.0-style message.
    Of(OfMessage),
    /// LazyCtrl vendor extension message.
    Lazy(LazyMsg),
    /// Controller-to-controller cluster message.
    Cluster(ClusterMsg),
}

impl Message {
    /// Wraps a standard message.
    pub fn of(xid: u32, msg: OfMessage) -> Self {
        Message {
            xid,
            body: MessageBody::Of(msg),
        }
    }

    /// Wraps a LazyCtrl extension message.
    pub fn lazy(xid: u32, msg: LazyMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Lazy(msg),
        }
    }

    /// Wraps a controller-cluster message.
    pub fn cluster(xid: u32, msg: ClusterMsg) -> Self {
        Message {
            xid,
            body: MessageBody::Cluster(msg),
        }
    }

    /// The wire-level message type.
    pub fn msg_type(&self) -> MsgType {
        match &self.body {
            MessageBody::Of(m) => m.msg_type(),
            MessageBody::Lazy(_) => MsgType::Lazy,
            MessageBody::Cluster(_) => MsgType::Cluster,
        }
    }

    /// Serializes header + body.
    ///
    /// # Panics
    ///
    /// Panics if the encoded message exceeds 65535 bytes (the header length
    /// field is 16 bits, as in OpenFlow). Bulk payloads such as L-FIB syncs
    /// provide chunking helpers to stay under the limit.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match &self.body {
            MessageBody::Of(m) => m.encode_body(&mut body),
            MessageBody::Lazy(m) => m.encode_body(&mut body),
            MessageBody::Cluster(m) => m.encode_body(&mut body),
        }
        let total = OFP_HEADER_LEN + body.len();
        assert!(
            total <= u16::MAX as usize,
            "message of {total} bytes exceeds 16-bit length field; chunk the payload"
        );
        let mut buf = Vec::with_capacity(total);
        Header {
            version: PROTO_VERSION,
            msg_type: self.msg_type(),
            length: total as u16,
            xid: self.xid,
        }
        .encode_into(&mut buf);
        buf.put_slice(&body);
        buf
    }

    /// Parses one complete message from `buf`.
    ///
    /// `buf` must contain exactly one message (use
    /// [`codec::MessageCodec`](crate::codec::MessageCodec) to frame a byte
    /// stream first).
    ///
    /// # Errors
    ///
    /// Any header or body parse failure, or a length field that disagrees
    /// with `buf.len()`.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "message");
        let header = Header::decode(&mut r)?;
        if header.length as usize != buf.len() {
            return Err(ProtoError::LengthMismatch {
                declared: header.length as usize,
                actual: buf.len(),
            });
        }
        let body = &buf[OFP_HEADER_LEN..];
        let parsed = match header.msg_type {
            MsgType::Lazy => MessageBody::Lazy(LazyMsg::decode_body(body)?),
            MsgType::Cluster => MessageBody::Cluster(ClusterMsg::decode_body(body)?),
            t => MessageBody::Of(OfMessage::decode_body(t, body)?),
        };
        Ok(Message {
            xid: header.xid,
            body: parsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};

    #[test]
    fn hello_round_trips() {
        let m = Message::of(1, OfMessage::Hello);
        let wire = m.encode();
        assert_eq!(wire.len(), OFP_HEADER_LEN);
        assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut wire = Message::of(1, OfMessage::Hello).encode();
        wire.push(0); // trailing garbage
        assert!(matches!(
            Message::decode(&wire).unwrap_err(),
            ProtoError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn lazy_keepalive_round_trips() {
        let m = Message::lazy(
            9,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(3),
                seq: 77,
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn packet_in_round_trips() {
        let m = Message::of(
            2,
            OfMessage::PacketIn(PacketInMsg {
                buffer_id: 42,
                in_port: PortNo::new(3),
                reason: PacketInReason::NoMatch,
                data: vec![1, 2, 3, 4].into(),
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lfib_sync_round_trips() {
        let m = Message::lazy(
            3,
            LazyMsg::LfibSync(LfibSyncMsg {
                origin: SwitchId::new(8),
                epoch: 5,
                entries: vec![LfibEntry {
                    mac: MacAddr::for_host(11),
                    tenant: TenantId::new(2),
                    port: PortNo::new(1),
                }],
                removed: vec![MacAddr::for_host(12)],
            }),
        );
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "chunk the payload")]
    fn oversized_message_panics_at_encode() {
        let entries = (0..7000)
            .map(|i| LfibEntry {
                mac: MacAddr::for_host(i),
                tenant: TenantId::new(1),
                port: PortNo::new(1),
            })
            .collect();
        let m = Message::lazy(
            1,
            LazyMsg::LfibSync(LfibSyncMsg {
                origin: SwitchId::new(1),
                epoch: 1,
                entries,
                removed: vec![],
            }),
        );
        let _ = m.encode();
    }
}
