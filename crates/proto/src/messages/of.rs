//! The OpenFlow 1.0-style message subset.

use bytes::{BufMut, Bytes};
use lazyctrl_net::PortNo;
use serde::{Deserialize, Serialize};

use crate::actions::{decode_actions, encode_actions};
use crate::wire::Reader;
use crate::{Action, FlowMatch, MsgType, ProtoError, Result};

/// Why a switch punted a packet to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketInReason {
    /// No flow-table, L-FIB or G-FIB entry matched (the LazyCtrl inter-group
    /// path, Fig. 5 line 16).
    NoMatch,
    /// An explicit rule action sent it here.
    Action,
    /// The packet was mis-forwarded due to a G-FIB bloom-filter false
    /// positive and the egress switch elected to report it so the controller
    /// can install a corrective rule (Fig. 5, optional path after line 28).
    FalsePositive,
}

impl PacketInReason {
    fn to_u8(self) -> u8 {
        match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
            PacketInReason::FalsePositive => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PacketInReason::NoMatch,
            1 => PacketInReason::Action,
            2 => PacketInReason::FalsePositive,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "packet_in.reason",
                    value: other as u64,
                })
            }
        })
    }
}

/// Switch-to-controller: a packet that needs a controller decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketInMsg {
    /// Opaque id of the buffered packet on the switch (`u32::MAX` = none).
    pub buffer_id: u32,
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Why it was punted.
    pub reason: PacketInReason,
    /// The raw packet bytes (possibly truncated by the switch). Shared:
    /// relaying a punted packet to several switches clones the handle,
    /// not the bytes.
    pub data: Bytes,
}

/// Controller-to-switch: inject/release a packet with an action list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketOutMsg {
    /// Buffered packet to release (`u32::MAX` = the packet is in `data`).
    pub buffer_id: u32,
    /// Port to treat as ingress for action processing.
    pub in_port: PortNo,
    /// Actions to apply.
    pub actions: Vec<Action>,
    /// Raw packet, when not referring to a buffer (shared bytes).
    pub data: Bytes,
}

/// Flow-table mutation command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowModCommand {
    /// Insert a new rule.
    Add,
    /// Modify matching rules' actions.
    Modify,
    /// Remove matching rules.
    Delete,
}

impl FlowModCommand {
    fn to_u8(self) -> u8 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::Delete => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            3 => FlowModCommand::Delete,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "flow_mod.command",
                    value: other as u64,
                })
            }
        })
    }
}

/// Controller-to-switch flow-table modification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowModMsg {
    /// What to do.
    pub command: FlowModCommand,
    /// Which packets the rule matches.
    pub flow_match: FlowMatch,
    /// Rule priority; higher wins.
    pub priority: u16,
    /// Evict after this many seconds idle (0 = never).
    pub idle_timeout: u16,
    /// Evict after this many seconds regardless (0 = never).
    pub hard_timeout: u16,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Actions applied on match.
    pub actions: Vec<Action>,
}

/// Error categories a peer can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Handshake failed.
    HelloFailed,
    /// Malformed or unsupported request.
    BadRequest,
    /// A `FlowMod` could not be applied (e.g. table full).
    FlowModFailed,
    /// The referenced epoch is stale (LazyCtrl regrouping races).
    StaleEpoch,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::HelloFailed => 0,
            ErrorCode::BadRequest => 1,
            ErrorCode::FlowModFailed => 3,
            ErrorCode::StaleEpoch => 0xf0,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        Ok(match v {
            0 => ErrorCode::HelloFailed,
            1 => ErrorCode::BadRequest,
            3 => ErrorCode::FlowModFailed,
            0xf0 => ErrorCode::StaleEpoch,
            other => {
                return Err(ProtoError::InvalidField {
                    field: "error.code",
                    value: other as u64,
                })
            }
        })
    }
}

/// Distinguishes the two echo directions (they share an encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EchoKind {
    /// `EchoRequest`.
    Request,
    /// `EchoReply`.
    Reply,
}

/// The standard message subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OfMessage {
    /// Connection handshake.
    Hello,
    /// Error report with the request's raw bytes attached.
    Error {
        /// Category.
        code: ErrorCode,
        /// Offending request prefix.
        data: Vec<u8>,
    },
    /// Liveness probe.
    EchoRequest(Vec<u8>),
    /// Liveness probe response.
    EchoReply(Vec<u8>),
    /// Ask the switch to describe itself.
    FeaturesRequest,
    /// Switch self-description.
    FeaturesReply {
        /// Unique datapath id.
        datapath_id: u64,
        /// Number of physical ports.
        n_ports: u16,
    },
    /// Packet punt.
    PacketIn(PacketInMsg),
    /// Packet injection.
    PacketOut(PacketOutMsg),
    /// Flow-table mutation. Boxed: `FlowModMsg` is the widest OpenFlow
    /// body by far and rides only the (infrequent) rule-install path,
    /// while `PacketIn`/`PacketOut` dominate event volume — boxing it
    /// here is what keeps `size_of::<Message>() ≤ 64` (see the layout
    /// regression test in `messages::mod`).
    FlowMod(Box<FlowModMsg>),
    /// Ask for switch counters.
    StatsRequest,
    /// Counter snapshot: (packets seen, flow-table entries, packet-ins sent).
    StatsReply {
        /// Total packets processed.
        packets: u64,
        /// Current flow-table size.
        flows: u32,
        /// Total `PacketIn`s emitted.
        packet_ins: u64,
    },
}

impl OfMessage {
    /// Wraps (and boxes) a flow-table mutation.
    pub fn flow_mod(msg: FlowModMsg) -> Self {
        OfMessage::FlowMod(Box::new(msg))
    }

    /// The wire-level message type for this body.
    pub fn msg_type(&self) -> MsgType {
        match self {
            OfMessage::Hello => MsgType::Hello,
            OfMessage::Error { .. } => MsgType::Error,
            OfMessage::EchoRequest(_) => MsgType::EchoRequest,
            OfMessage::EchoReply(_) => MsgType::EchoReply,
            OfMessage::FeaturesRequest => MsgType::FeaturesRequest,
            OfMessage::FeaturesReply { .. } => MsgType::FeaturesReply,
            OfMessage::PacketIn(_) => MsgType::PacketIn,
            OfMessage::PacketOut(_) => MsgType::PacketOut,
            OfMessage::FlowMod(_) => MsgType::FlowMod,
            OfMessage::StatsRequest => MsgType::StatsRequest,
            OfMessage::StatsReply { .. } => MsgType::StatsReply,
        }
    }

    /// Exact encoded body size (bytes after the common header), without
    /// paying for an encode (see `LazyMsg::wire_body_len`).
    pub(crate) fn wire_body_len(&self) -> usize {
        match self {
            OfMessage::Hello | OfMessage::FeaturesRequest | OfMessage::StatsRequest => 0,
            OfMessage::Error { data, .. } => 2 + 4 + data.len(),
            OfMessage::EchoRequest(data) | OfMessage::EchoReply(data) => 4 + data.len(),
            OfMessage::FeaturesReply { .. } => 8 + 2,
            OfMessage::PacketIn(m) => 4 + 2 + 1 + 4 + m.data.len(),
            OfMessage::PacketOut(m) => {
                4 + 2 + 4 + m.actions.len() * Action::WIRE_LEN + 4 + m.data.len()
            }
            OfMessage::FlowMod(m) => {
                1 + FlowMatch::WIRE_LEN + 2 + 2 + 2 + 8 + 4 + m.actions.len() * Action::WIRE_LEN
            }
            OfMessage::StatsReply { .. } => 8 + 4 + 8,
        }
    }

    pub(crate) fn encode_body<B: BufMut>(&self, buf: &mut B) {
        match self {
            OfMessage::Hello | OfMessage::FeaturesRequest | OfMessage::StatsRequest => {}
            OfMessage::Error { code, data } => {
                buf.put_u16(code.to_u16());
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
            OfMessage::EchoRequest(data) | OfMessage::EchoReply(data) => {
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
            OfMessage::FeaturesReply {
                datapath_id,
                n_ports,
            } => {
                buf.put_u64(*datapath_id);
                buf.put_u16(*n_ports);
            }
            OfMessage::PacketIn(m) => {
                buf.put_u32(m.buffer_id);
                buf.put_u16(m.in_port.as_u16());
                buf.put_u8(m.reason.to_u8());
                buf.put_u32(m.data.len() as u32);
                buf.put_slice(&m.data);
            }
            OfMessage::PacketOut(m) => {
                buf.put_u32(m.buffer_id);
                buf.put_u16(m.in_port.as_u16());
                encode_actions(&m.actions, buf);
                buf.put_u32(m.data.len() as u32);
                buf.put_slice(&m.data);
            }
            OfMessage::FlowMod(m) => {
                buf.put_u8(m.command.to_u8());
                m.flow_match.encode_into(buf);
                buf.put_u16(m.priority);
                buf.put_u16(m.idle_timeout);
                buf.put_u16(m.hard_timeout);
                buf.put_u64(m.cookie);
                encode_actions(&m.actions, buf);
            }
            OfMessage::StatsReply {
                packets,
                flows,
                packet_ins,
            } => {
                buf.put_u64(*packets);
                buf.put_u32(*flows);
                buf.put_u64(*packet_ins);
            }
        }
    }

    pub(crate) fn decode_body(msg_type: MsgType, body: &[u8]) -> Result<Self> {
        let mut r = Reader::new(body, "of body");
        let msg = match msg_type {
            MsgType::Hello => OfMessage::Hello,
            MsgType::FeaturesRequest => OfMessage::FeaturesRequest,
            MsgType::StatsRequest => OfMessage::StatsRequest,
            MsgType::Error => {
                let code = ErrorCode::from_u16(r.u16()?)?;
                let n = r.len_prefix()?;
                OfMessage::Error {
                    code,
                    data: r.bytes(n)?,
                }
            }
            MsgType::EchoRequest => {
                let n = r.len_prefix()?;
                OfMessage::EchoRequest(r.bytes(n)?)
            }
            MsgType::EchoReply => {
                let n = r.len_prefix()?;
                OfMessage::EchoReply(r.bytes(n)?)
            }
            MsgType::FeaturesReply => OfMessage::FeaturesReply {
                datapath_id: r.u64()?,
                n_ports: r.u16()?,
            },
            MsgType::PacketIn => {
                let buffer_id = r.u32()?;
                let in_port = PortNo::new(r.u16()?);
                let reason = PacketInReason::from_u8(r.u8()?)?;
                let n = r.len_prefix()?;
                OfMessage::PacketIn(PacketInMsg {
                    buffer_id,
                    in_port,
                    reason,
                    data: r.bytes(n)?.into(),
                })
            }
            MsgType::PacketOut => {
                let buffer_id = r.u32()?;
                let in_port = PortNo::new(r.u16()?);
                let actions = decode_actions(&mut r)?;
                let n = r.len_prefix()?;
                OfMessage::PacketOut(PacketOutMsg {
                    buffer_id,
                    in_port,
                    actions,
                    data: r.bytes(n)?.into(),
                })
            }
            MsgType::FlowMod => {
                let command = FlowModCommand::from_u8(r.u8()?)?;
                let flow_match = FlowMatch::decode(&mut r)?;
                let priority = r.u16()?;
                let idle_timeout = r.u16()?;
                let hard_timeout = r.u16()?;
                let cookie = r.u64()?;
                let actions = decode_actions(&mut r)?;
                OfMessage::flow_mod(FlowModMsg {
                    command,
                    flow_match,
                    priority,
                    idle_timeout,
                    hard_timeout,
                    cookie,
                    actions,
                })
            }
            MsgType::StatsReply => OfMessage::StatsReply {
                packets: r.u64()?,
                flows: r.u32()?,
                packet_ins: r.u64()?,
            },
            MsgType::Lazy | MsgType::Cluster => {
                return Err(ProtoError::InvalidField {
                    field: "of.msg_type",
                    value: msg_type as u64,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(ProtoError::LengthMismatch {
                declared: body.len(),
                actual: body.len() - r.remaining(),
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{MacAddr, TenantId};

    fn round_trip(m: OfMessage) {
        let mut body = Vec::new();
        m.encode_body(&mut body);
        let back = OfMessage::decode_body(m.msg_type(), &body).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bodyless_messages() {
        round_trip(OfMessage::Hello);
        round_trip(OfMessage::FeaturesRequest);
        round_trip(OfMessage::StatsRequest);
    }

    #[test]
    fn echo_and_error() {
        round_trip(OfMessage::EchoRequest(vec![]));
        round_trip(OfMessage::EchoReply(vec![9; 100]));
        round_trip(OfMessage::Error {
            code: ErrorCode::StaleEpoch,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn features_and_stats() {
        round_trip(OfMessage::FeaturesReply {
            datapath_id: 0xabcd,
            n_ports: 48,
        });
        round_trip(OfMessage::StatsReply {
            packets: 1 << 40,
            flows: 1000,
            packet_ins: 77,
        });
    }

    #[test]
    fn flow_mod_full() {
        round_trip(OfMessage::flow_mod(FlowModMsg {
            command: FlowModCommand::Add,
            flow_match: FlowMatch::for_pair(MacAddr::for_host(1), MacAddr::for_host(2)),
            priority: 100,
            idle_timeout: 30,
            hard_timeout: 0,
            cookie: 0xfeed,
            actions: vec![
                Action::SetVlan(TenantId::new(7)),
                Action::Output(PortNo::new(2)),
            ],
        }));
    }

    #[test]
    fn packet_out_with_buffer_ref() {
        round_trip(OfMessage::PacketOut(PacketOutMsg {
            buffer_id: 55,
            in_port: PortNo::NONE,
            actions: vec![Action::Output(PortNo::FLOOD)],
            data: vec![].into(),
        }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        OfMessage::FeaturesReply {
            datapath_id: 1,
            n_ports: 1,
        }
        .encode_body(&mut body);
        body.push(0);
        assert!(matches!(
            OfMessage::decode_body(MsgType::FeaturesReply, &body).unwrap_err(),
            ProtoError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn bad_reason_rejected() {
        let m = OfMessage::PacketIn(PacketInMsg {
            buffer_id: 1,
            in_port: PortNo::new(1),
            reason: PacketInReason::NoMatch,
            data: vec![].into(),
        });
        let mut body = Vec::new();
        m.encode_body(&mut body);
        body[6] = 9; // reason byte
        assert!(OfMessage::decode_body(MsgType::PacketIn, &body).is_err());
    }
}
