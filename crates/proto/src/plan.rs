//! The fault-injection plan: an ordered, serializable schedule of events
//! an experiment injects into the simulated data center.
//!
//! The paper's evaluation (§V) is a family of *scenarios* — cold caches,
//! controller failures, regrouping under churn. Instead of growing one
//! config hook per scenario, experiments carry an [`EventPlan`]: a list of
//! [`ScheduledEvent`]s ([`InjectedEvent`] + virtual time) that the driver
//! feeds through its ordinary event queue. The vocabulary covers the
//! control plane (controller crash/recovery), the data plane (switch
//! crash/recovery, per-class link degradation and loss) and the workload
//! (host migration batches, traffic bursts), and composes freely: any
//! subset of events can ride in one plan.
//!
//! Plans have an exact binary encoding ([`EventPlan::encode`] /
//! [`EventPlan::decode`]) in the same style as the control messages, so a
//! scenario's schedule can be persisted or shipped to a remote driver and
//! replayed bit-identically.

use std::fmt;

use bytes::BufMut;
use lazyctrl_net::SwitchId;
use lazyctrl_sim::{ChannelClass, SimTime};
use serde::{Deserialize, Serialize};

use crate::wire::Reader;
use crate::{ProtoError, Result};

const PLAN_VERSION: u8 = 1;

const TAG_CRASH_CONTROLLER: u8 = 1;
const TAG_RECOVER_CONTROLLER: u8 = 2;
const TAG_CRASH_SWITCH: u8 = 3;
const TAG_RECOVER_SWITCH: u8 = 4;
const TAG_LINK_DEGRADE: u8 = 5;
const TAG_LINK_LOSS: u8 = 6;
const TAG_MIGRATE_HOSTS: u8 = 7;
const TAG_TRAFFIC_BURST: u8 = 8;
const TAG_PARTITION_NETWORK: u8 = 9;
const TAG_HEAL_PARTITION: u8 = 10;

/// Upper bound on partition islands per event (wire sanity limit; the
/// count rides in one byte).
pub const MAX_PARTITION_GROUPS: usize = 16;

/// Smallest wire footprint of one scheduled event: 8-byte timestamp plus
/// a 1-byte tag (used to bound decode-side allocation).
const MIN_EVENT_WIRE_LEN: usize = 9;

/// One fault or workload perturbation the driver can inject mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InjectedEvent {
    /// Kill cluster member `id` (cluster runs only): it stops processing
    /// and emitting, its heartbeats cease, and the Table-I detector on the
    /// controller ring eventually declares it dead.
    CrashController(u32),
    /// Restart a previously crashed cluster member (cluster runs only).
    RecoverController(u32),
    /// Power off an edge switch: every link to and from it goes dark. Ring
    /// neighbours notice the silent keep-alives and report it (§III-E).
    CrashSwitch(SwitchId),
    /// Power the switch back on (its links come back; state machines keep
    /// whatever tables they held, as a warm reboot would).
    RecoverSwitch(SwitchId),
    /// Multiply the one-way latency of every link of one channel class by
    /// `factor` (congestion, a degraded management network). Factors
    /// compose; degrading by `f` then `1/f` restores the original.
    LinkDegrade {
        /// The affected channel class.
        class: ChannelClass,
        /// Latency multiplier (> 0; < 1 speeds the class up).
        factor: f64,
    },
    /// Drop each message on links of one channel class independently with
    /// probability `loss` (0 clears a previous override).
    LinkLoss {
        /// The affected channel class.
        class: ChannelClass,
        /// Per-message drop probability in `[0, 1]`.
        loss: f64,
    },
    /// Live-migrate a batch of hosts to different edge switches (VM
    /// migration churn): each moved host re-announces itself from its new
    /// location, and its future flows ingress there.
    MigrateHosts {
        /// How many hosts move.
        batch: u32,
    },
    /// Inject a burst of fresh-pair flows on top of the trace, sized
    /// relative to the host population (`scale` × hosts flow arrivals
    /// spread over a short window).
    TrafficBurst {
        /// Burst size as a multiple of the host count (> 0).
        scale: f64,
    },
    /// Partition the network: nodes listed in *different* groups can no
    /// longer exchange messages (in either direction, on any channel
    /// class); nodes inside the same group, and nodes listed in no group
    /// at all, stay mutually reachable. Group members are simulation node
    /// ids — switch ids, or controller pseudo-switch ids for cluster
    /// members — so one event can sever controller↔controller,
    /// controller↔switch, or both, along different boundaries.
    ///
    /// Injecting a new partition replaces any partition already in force
    /// (the network re-splits; it does not accumulate cuts).
    PartitionNetwork {
        /// The isolated islands, each a list of node ids.
        groups: Vec<Vec<u32>>,
    },
    /// Heal the active network partition: full reachability returns
    /// (modulo crashed nodes and per-class loss, which are orthogonal).
    HealPartition,
}

impl InjectedEvent {
    /// True for events that only make sense on a multi-controller run.
    pub fn requires_cluster(&self) -> bool {
        matches!(
            self,
            InjectedEvent::CrashController(_) | InjectedEvent::RecoverController(_)
        )
    }

    /// Validates event parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or out-of-range parameters.
    pub fn validate(&self) {
        match *self {
            InjectedEvent::PartitionNetwork { ref groups } => {
                assert!(
                    !groups.is_empty() && groups.len() <= MAX_PARTITION_GROUPS,
                    "partition must list 1..={MAX_PARTITION_GROUPS} groups, got {}",
                    groups.len()
                );
                let mut seen = std::collections::BTreeSet::new();
                for g in groups {
                    assert!(!g.is_empty(), "partition group must not be empty");
                    for &node in g {
                        assert!(
                            seen.insert(node),
                            "node {node} appears in more than one partition group"
                        );
                    }
                }
            }
            InjectedEvent::LinkDegrade { factor, .. } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "link degrade factor {factor} must be finite and positive"
                );
            }
            InjectedEvent::LinkLoss { loss, .. } => {
                assert!(
                    loss.is_finite() && (0.0..=1.0).contains(&loss),
                    "link loss {loss} out of [0,1]"
                );
            }
            InjectedEvent::MigrateHosts { batch } => {
                assert!(batch > 0, "migration batch must be positive");
            }
            InjectedEvent::TrafficBurst { scale } => {
                assert!(
                    scale.is_finite() && scale > 0.0,
                    "burst scale {scale} must be finite and positive"
                );
            }
            InjectedEvent::CrashController(_)
            | InjectedEvent::RecoverController(_)
            | InjectedEvent::CrashSwitch(_)
            | InjectedEvent::RecoverSwitch(_)
            | InjectedEvent::HealPartition => {}
        }
    }

    fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match *self {
            InjectedEvent::CrashController(id) => {
                buf.put_u8(TAG_CRASH_CONTROLLER);
                buf.put_u32(id);
            }
            InjectedEvent::RecoverController(id) => {
                buf.put_u8(TAG_RECOVER_CONTROLLER);
                buf.put_u32(id);
            }
            InjectedEvent::CrashSwitch(s) => {
                buf.put_u8(TAG_CRASH_SWITCH);
                buf.put_u32(s.0);
            }
            InjectedEvent::RecoverSwitch(s) => {
                buf.put_u8(TAG_RECOVER_SWITCH);
                buf.put_u32(s.0);
            }
            InjectedEvent::LinkDegrade { class, factor } => {
                buf.put_u8(TAG_LINK_DEGRADE);
                buf.put_u8(encode_class(class));
                buf.put_u64(factor.to_bits());
            }
            InjectedEvent::LinkLoss { class, loss } => {
                buf.put_u8(TAG_LINK_LOSS);
                buf.put_u8(encode_class(class));
                buf.put_u64(loss.to_bits());
            }
            InjectedEvent::MigrateHosts { batch } => {
                buf.put_u8(TAG_MIGRATE_HOSTS);
                buf.put_u32(batch);
            }
            InjectedEvent::TrafficBurst { scale } => {
                buf.put_u8(TAG_TRAFFIC_BURST);
                buf.put_u64(scale.to_bits());
            }
            InjectedEvent::PartitionNetwork { ref groups } => {
                buf.put_u8(TAG_PARTITION_NETWORK);
                buf.put_u8(groups.len() as u8);
                for g in groups {
                    buf.put_u32(g.len() as u32);
                    for &node in g {
                        buf.put_u32(node);
                    }
                }
            }
            InjectedEvent::HealPartition => {
                buf.put_u8(TAG_HEAL_PARTITION);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            TAG_CRASH_CONTROLLER => InjectedEvent::CrashController(r.u32()?),
            TAG_RECOVER_CONTROLLER => InjectedEvent::RecoverController(r.u32()?),
            TAG_CRASH_SWITCH => InjectedEvent::CrashSwitch(SwitchId::new(r.u32()?)),
            TAG_RECOVER_SWITCH => InjectedEvent::RecoverSwitch(SwitchId::new(r.u32()?)),
            TAG_LINK_DEGRADE => InjectedEvent::LinkDegrade {
                class: decode_class(r.u8()?)?,
                factor: r.f64()?,
            },
            TAG_LINK_LOSS => InjectedEvent::LinkLoss {
                class: decode_class(r.u8()?)?,
                loss: r.f64()?,
            },
            TAG_MIGRATE_HOSTS => InjectedEvent::MigrateHosts { batch: r.u32()? },
            TAG_TRAFFIC_BURST => InjectedEvent::TrafficBurst { scale: r.f64()? },
            TAG_PARTITION_NETWORK => {
                let count = r.u8()? as usize;
                if count == 0 || count > MAX_PARTITION_GROUPS {
                    return Err(ProtoError::InvalidField {
                        field: "partition group count",
                        value: count as u64,
                    });
                }
                let mut groups = Vec::with_capacity(count);
                for _ in 0..count {
                    // Each member costs 4 wire bytes; bound the claimed
                    // length by what the buffer can still hold.
                    let len = r.count_prefix(4)?;
                    if len == 0 {
                        return Err(ProtoError::InvalidField {
                            field: "partition group size",
                            value: 0,
                        });
                    }
                    let mut group = Vec::with_capacity(len);
                    for _ in 0..len {
                        group.push(r.u32()?);
                    }
                    groups.push(group);
                }
                InjectedEvent::PartitionNetwork { groups }
            }
            TAG_HEAL_PARTITION => InjectedEvent::HealPartition,
            tag => {
                return Err(ProtoError::InvalidField {
                    field: "plan event tag",
                    value: tag as u64,
                })
            }
        })
    }
}

impl fmt::Display for InjectedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InjectedEvent::CrashController(id) => write!(f, "crash controller {id}"),
            InjectedEvent::RecoverController(id) => write!(f, "recover controller {id}"),
            InjectedEvent::CrashSwitch(s) => write!(f, "crash switch {s}"),
            InjectedEvent::RecoverSwitch(s) => write!(f, "recover switch {s}"),
            InjectedEvent::LinkDegrade { class, factor } => {
                write!(f, "degrade {class:?} links ×{factor}")
            }
            InjectedEvent::LinkLoss { class, loss } => {
                write!(f, "set {class:?} link loss to {loss}")
            }
            InjectedEvent::MigrateHosts { batch } => write!(f, "migrate {batch} hosts"),
            InjectedEvent::TrafficBurst { scale } => write!(f, "traffic burst ×{scale} hosts"),
            InjectedEvent::PartitionNetwork { ref groups } => {
                write!(f, "partition network into {} island(s):", groups.len())?;
                for g in groups {
                    write!(f, " [{} node(s)]", g.len())?;
                }
                Ok(())
            }
            InjectedEvent::HealPartition => write!(f, "heal network partition"),
        }
    }
}

fn encode_class(class: ChannelClass) -> u8 {
    match class {
        ChannelClass::Data => 0,
        ChannelClass::Control => 1,
        ChannelClass::State => 2,
        ChannelClass::Peer => 3,
        ChannelClass::CtrlPeer => 4,
    }
}

fn decode_class(raw: u8) -> Result<ChannelClass> {
    Ok(match raw {
        0 => ChannelClass::Data,
        1 => ChannelClass::Control,
        2 => ChannelClass::State,
        3 => ChannelClass::Peer,
        4 => ChannelClass::CtrlPeer,
        _ => {
            return Err(ProtoError::InvalidField {
                field: "channel class",
                value: raw as u64,
            })
        }
    })
}

/// One event with its injection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// Virtual time of injection.
    pub at: SimTime,
    /// What happens.
    pub event: InjectedEvent,
}

impl fmt::Display for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}h  {}", self.at.as_hours_f64(), self.event)
    }
}

/// An ordered schedule of [`ScheduledEvent`]s.
///
/// Events are kept sorted by injection time; events at equal times keep
/// their insertion order (the same tie-break rule as the simulation's
/// event queue, so a plan replays deterministically).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventPlan {
    events: Vec<ScheduledEvent>,
}

impl EventPlan {
    /// An empty plan (the default: nothing is injected).
    pub fn new() -> Self {
        EventPlan::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule, sorted by time.
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Schedules `event` at `at`, keeping the plan sorted (stable: equal
    /// times preserve insertion order).
    pub fn schedule(&mut self, at: SimTime, event: InjectedEvent) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ScheduledEvent { at, event });
    }

    /// Builder form of [`EventPlan::schedule`] taking hours of virtual
    /// time (the unit scenarios are written in).
    pub fn at_hours(mut self, hours: f64, event: InjectedEvent) -> Self {
        self.schedule(SimTime::from_hours(hours), event);
        self
    }

    /// Schedules a controller crash at `hours`.
    pub fn crash_controller(self, hours: f64, id: u32) -> Self {
        self.at_hours(hours, InjectedEvent::CrashController(id))
    }

    /// Schedules a controller restart at `hours`.
    pub fn recover_controller(self, hours: f64, id: u32) -> Self {
        self.at_hours(hours, InjectedEvent::RecoverController(id))
    }

    /// Schedules a switch crash at `hours`.
    pub fn crash_switch(self, hours: f64, switch: SwitchId) -> Self {
        self.at_hours(hours, InjectedEvent::CrashSwitch(switch))
    }

    /// Schedules a switch restart at `hours`.
    pub fn recover_switch(self, hours: f64, switch: SwitchId) -> Self {
        self.at_hours(hours, InjectedEvent::RecoverSwitch(switch))
    }

    /// Schedules a latency degradation of one channel class at `hours`.
    pub fn degrade_links(self, hours: f64, class: ChannelClass, factor: f64) -> Self {
        self.at_hours(hours, InjectedEvent::LinkDegrade { class, factor })
    }

    /// Schedules a loss-probability override for one channel class at
    /// `hours`.
    pub fn link_loss(self, hours: f64, class: ChannelClass, loss: f64) -> Self {
        self.at_hours(hours, InjectedEvent::LinkLoss { class, loss })
    }

    /// Schedules a host-migration batch at `hours`.
    pub fn migrate_hosts(self, hours: f64, batch: u32) -> Self {
        self.at_hours(hours, InjectedEvent::MigrateHosts { batch })
    }

    /// Schedules a traffic burst at `hours`.
    pub fn traffic_burst(self, hours: f64, scale: f64) -> Self {
        self.at_hours(hours, InjectedEvent::TrafficBurst { scale })
    }

    /// Schedules a network partition into the given islands at `hours`
    /// (see [`InjectedEvent::PartitionNetwork`] for the semantics).
    pub fn partition_network(self, hours: f64, groups: Vec<Vec<u32>>) -> Self {
        self.at_hours(hours, InjectedEvent::PartitionNetwork { groups })
    }

    /// Schedules the heal of the active partition at `hours`.
    pub fn heal_partition(self, hours: f64) -> Self {
        self.at_hours(hours, InjectedEvent::HealPartition)
    }

    /// True if any scheduled event requires a controller cluster.
    pub fn requires_cluster(&self) -> bool {
        self.events.iter().any(|e| e.event.requires_cluster())
    }

    /// Validates every event's parameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range event parameters.
    pub fn validate(&self) {
        for e in &self.events {
            e.event.validate();
        }
        debug_assert!(
            self.events.windows(2).all(|w| w[0].at <= w[1].at),
            "plan must stay sorted by construction"
        );
    }

    /// Encodes the plan to its binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(2 + self.events.len() * 18);
        buf.put_u8(PLAN_VERSION);
        buf.put_u32(self.events.len() as u32);
        for e in &self.events {
            buf.put_u64(e.at.as_nanos());
            e.event.encode_into(&mut buf);
        }
        buf
    }

    /// Decodes a plan produced by [`EventPlan::encode`]. Never panics on
    /// malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes, "event plan");
        let version = r.u8()?;
        if version != PLAN_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let count = r.count_prefix(MIN_EVENT_WIRE_LEN)?;
        let mut plan = EventPlan::new();
        for _ in 0..count {
            let at = SimTime::from_nanos(r.u64()?);
            let event = InjectedEvent::decode(&mut r)?;
            plan.schedule(at, event);
        }
        if r.remaining() != 0 {
            return Err(ProtoError::LengthMismatch {
                declared: bytes.len(),
                actual: bytes.len() - r.remaining(),
            });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stays_sorted_with_stable_ties() {
        let plan = EventPlan::new()
            .crash_controller(1.4, 1)
            .migrate_hosts(0.5, 8)
            .recover_controller(1.4, 1)
            .traffic_burst(2.0, 3.0);
        let times: Vec<f64> = plan.events().iter().map(|e| e.at.as_hours_f64()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // The two t=1.4h events keep insertion order: crash before recover.
        assert_eq!(
            plan.events()[1].event,
            InjectedEvent::CrashController(1),
            "{:?}",
            plan.events()
        );
        assert_eq!(plan.events()[2].event, InjectedEvent::RecoverController(1));
    }

    #[test]
    fn requires_cluster_only_for_controller_events() {
        assert!(EventPlan::new().crash_controller(1.0, 0).requires_cluster());
        assert!(!EventPlan::new()
            .crash_switch(1.0, SwitchId::new(3))
            .migrate_hosts(2.0, 4)
            .requires_cluster());
        assert!(!EventPlan::new().requires_cluster());
    }

    #[test]
    fn encode_decode_round_trips() {
        let plan = EventPlan::new()
            .crash_controller(1.4, 1)
            .recover_controller(1.9, 1)
            .crash_switch(0.3, SwitchId::new(7))
            .recover_switch(0.8, SwitchId::new(7))
            .degrade_links(0.5, ChannelClass::Control, 10.0)
            .link_loss(0.6, ChannelClass::Peer, 0.25)
            .migrate_hosts(1.1, 16)
            .traffic_burst(1.2, 2.5)
            .partition_network(1.3, vec![vec![0, 1, 2], vec![0xC000_0003]])
            .heal_partition(1.7);
        let bytes = plan.encode();
        let back = EventPlan::decode(&bytes).expect("well-formed plan");
        assert_eq!(plan, back);
    }

    #[test]
    fn partition_round_trips_and_validates() {
        let plan = EventPlan::new()
            .partition_network(0.5, vec![vec![7], vec![8, 9]])
            .heal_partition(0.9);
        plan.validate();
        assert_eq!(EventPlan::decode(&plan.encode()).unwrap(), plan);
        assert!(!plan.requires_cluster());
        let shown = plan.events()[0].to_string();
        assert!(
            shown.contains("partition network into 2 island(s)"),
            "{shown}"
        );
    }

    #[test]
    #[should_panic(expected = "more than one partition group")]
    fn validate_rejects_overlapping_partition_groups() {
        EventPlan::new()
            .partition_network(0.5, vec![vec![1, 2], vec![2, 3]])
            .validate();
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn validate_rejects_empty_partition_group() {
        EventPlan::new()
            .partition_network(0.5, vec![vec![1], vec![]])
            .validate();
    }

    #[test]
    fn partition_decode_rejects_malformed() {
        // Zero groups.
        let mut bytes = vec![PLAN_VERSION];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(TAG_PARTITION_NETWORK);
        bytes.push(0);
        assert!(EventPlan::decode(&bytes).is_err());
        // Group length bomb: claims 2^31 members with 4 bytes left.
        let mut bytes = vec![PLAN_VERSION];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(TAG_PARTITION_NETWORK);
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(EventPlan::decode(&bytes).is_err());
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = EventPlan::new();
        assert!(plan.is_empty());
        assert_eq!(EventPlan::decode(&plan.encode()).unwrap(), plan);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EventPlan::decode(&[]).is_err());
        assert!(EventPlan::decode(&[99]).is_err(), "bad version");
        // Claimed count larger than the buffer can hold.
        let mut bytes = vec![PLAN_VERSION];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(EventPlan::decode(&bytes).is_err());
        // Valid header, bogus event tag.
        let mut bytes = vec![PLAN_VERSION];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(0xEE);
        assert!(EventPlan::decode(&bytes).is_err());
        // Trailing bytes after a well-formed plan.
        let mut bytes = EventPlan::new().migrate_hosts(1.0, 2).encode();
        bytes.push(0);
        assert!(matches!(
            EventPlan::decode(&bytes),
            Err(ProtoError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn validate_rejects_bad_loss() {
        EventPlan::new()
            .link_loss(0.1, ChannelClass::Data, 1.5)
            .validate();
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn validate_rejects_bad_factor() {
        EventPlan::new()
            .degrade_links(0.1, ChannelClass::Data, 0.0)
            .validate();
    }

    #[test]
    fn display_is_informative() {
        let plan = EventPlan::new().crash_controller(1.4, 1);
        let s = plan.events()[0].to_string();
        assert!(
            s.contains("1.400") && s.contains("crash controller 1"),
            "{s}"
        );
    }
}
