//! Reusable output scratch buffers for allocation-free event dispatch.
//!
//! Every state machine in the hot path (edge switch, controller, cluster
//! plane) emits *effects* — messages to send, timers to arm. Returning a
//! fresh `Vec` of effects per handled event put one heap allocation (and
//! usually a few reallocations) on the per-packet path. An [`OutputSink`]
//! inverts the ownership: the **driver** owns one scratch buffer per
//! output type, hands `&mut OutputSink<T>` to each handler, and drains it
//! in place after the call — so in steady state the buffer's capacity is
//! allocated once and reused for the run's lifetime.
//!
//! Ownership rules (see `DESIGN.md` §7, "Output sinks and message
//! layout"):
//!
//! * the sink is **empty when a handler is entered** — the driver drains
//!   it fully after every dispatch, so handlers may assume anything they
//!   observe in the sink is their own output;
//! * handlers only **append** (push); they never read, reorder, or remove
//!   entries — output order is exactly push order, which is what keeps
//!   the simulation's `(time, insertion seq)` determinism contract intact
//!   across the sink refactor;
//! * drivers drain with [`OutputSink::take_buf`]/[`OutputSink::put_back`]
//!   (a `mem::take` swap), which lets the drain loop borrow the rest of
//!   the driver mutably while iterating, and returns the allocation to
//!   the sink afterwards.

/// A reusable, append-only scratch buffer for handler outputs.
///
/// # Example
///
/// ```
/// use lazyctrl_proto::OutputSink;
///
/// let mut sink: OutputSink<u32> = OutputSink::new();
/// sink.push(7);
/// sink.push(9);
/// let mut buf = sink.take_buf();
/// assert_eq!(buf, vec![7, 9]);
/// for v in buf.drain(..) {
///     let _ = v; // dispatch the effect
/// }
/// sink.put_back(buf); // capacity survives for the next event
/// assert!(sink.is_empty());
/// ```
#[derive(Debug)]
pub struct OutputSink<T> {
    buf: Vec<T>,
}

impl<T> Default for OutputSink<T> {
    fn default() -> Self {
        OutputSink { buf: Vec::new() }
    }
}

impl<T> OutputSink<T> {
    /// Creates an empty sink (no allocation until the first push).
    pub fn new() -> Self {
        OutputSink::default()
    }

    /// Creates a sink with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        OutputSink {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one output.
    #[inline]
    pub fn push(&mut self, item: T) {
        self.buf.push(item);
    }

    /// Number of buffered outputs.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The buffered outputs, in push order.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Drops all buffered outputs, keeping the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Takes the backing buffer out of the sink (leaving it empty and
    /// unallocated), so a driver can iterate the outputs while mutably
    /// borrowing itself. Pair with [`OutputSink::put_back`].
    #[inline]
    pub fn take_buf(&mut self) -> Vec<T> {
        std::mem::take(&mut self.buf)
    }

    /// Returns a buffer taken via [`OutputSink::take_buf`], clearing any
    /// leftovers; the larger capacity wins, so the scratch only grows.
    ///
    /// Nothing may push into the sink between `take_buf` and `put_back`
    /// (the drain loop owns the outputs); the debug assertion makes a
    /// future violation loud instead of silently dropping outputs.
    #[inline]
    pub fn put_back(&mut self, mut buf: Vec<T>) {
        debug_assert!(
            self.buf.is_empty(),
            "sink was pushed into between take_buf and put_back"
        );
        buf.clear();
        if buf.capacity() > self.buf.capacity() {
            self.buf = buf;
        }
    }

    /// Drains the buffered outputs in push order (capacity kept).
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.buf.drain(..)
    }
}

impl<T> Extend<T> for OutputSink<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_is_drain_order() {
        let mut sink = OutputSink::new();
        for i in 0..10 {
            sink.push(i);
        }
        let drained: Vec<i32> = sink.drain().collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(sink.is_empty());
    }

    #[test]
    fn take_put_back_keeps_capacity() {
        let mut sink = OutputSink::with_capacity(64);
        sink.push(1u8);
        let buf = sink.take_buf();
        assert_eq!(buf.len(), 1);
        assert!(sink.is_empty());
        sink.put_back(buf);
        assert!(sink.is_empty());
        assert!(sink.buf.capacity() >= 64);
    }

    #[test]
    fn put_back_prefers_larger_capacity() {
        let mut sink: OutputSink<u64> = OutputSink::new();
        sink.put_back(Vec::with_capacity(128));
        assert!(sink.buf.capacity() >= 128);
        // A smaller returned buffer must not shrink the scratch.
        sink.put_back(Vec::with_capacity(2));
        assert!(sink.buf.capacity() >= 128);
    }
}
