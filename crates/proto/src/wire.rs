//! Checked little helpers for reading binary fields.
//!
//! `bytes::Buf` panics on under-read; these wrappers convert that into
//! `ProtoError::Truncated` so arbitrary input can never panic a decoder.

use bytes::Buf;

use crate::{ProtoError, Result};

/// A cursor over a received byte slice with checked reads.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    /// Label used in error messages.
    what: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, what }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn ensure(&self, n: usize) -> Result<()> {
        if self.buf.len() < n {
            Err(ProtoError::Truncated {
                what: self.what,
                needed: n,
                available: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        self.ensure(1)?;
        Ok(self.buf.get_u8())
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        self.ensure(2)?;
        Ok(self.buf.get_u16())
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        self.ensure(4)?;
        Ok(self.buf.get_u32())
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        self.ensure(8)?;
        Ok(self.buf.get_u64())
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        self.ensure(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head.to_vec())
    }

    pub(crate) fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.ensure(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[..N]);
        self.buf = &self.buf[N..];
        Ok(out)
    }

    /// Reads a `u32` length prefix, bounds-checks it against the remaining
    /// buffer, and returns it. Prevents length-field-driven allocation bombs.
    pub(crate) fn len_prefix(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        self.ensure(n.min(self.buf.len() + 1))?; // cheap sanity probe
        if n > self.buf.len() {
            return Err(ProtoError::Truncated {
                what: self.what,
                needed: n,
                available: self.buf.len(),
            });
        }
        Ok(n)
    }

    /// Reads a `u32` element count, rejecting counts that could not possibly
    /// fit in the remaining bytes given a minimum per-element size.
    pub(crate) fn count_prefix(&mut self, min_elem_size: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let min_total = n.saturating_mul(min_elem_size.max(1));
        if min_total > self.buf.len() {
            return Err(ProtoError::Truncated {
                what: self.what,
                needed: min_total,
                available: self.buf.len(),
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_order() {
        let data = [1u8, 0, 2, 0, 0, 0, 3, 9, 9];
        let mut r = Reader::new(&data, "test");
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.bytes(2).unwrap(), vec![9, 9]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let mut r = Reader::new(&[1, 2], "unit");
        assert!(matches!(
            r.u32(),
            Err(ProtoError::Truncated {
                what: "unit",
                needed: 4,
                available: 2
            })
        ));
    }

    #[test]
    fn count_prefix_rejects_bombs() {
        // count = u32::MAX but only 3 bytes follow
        let mut data = u32::MAX.to_be_bytes().to_vec();
        data.extend_from_slice(&[0, 0, 0]);
        let mut r = Reader::new(&data, "bomb");
        assert!(r.count_prefix(8).is_err());
    }

    #[test]
    fn f64_round_trips() {
        let v: f64 = 1234.5678;
        let data = v.to_bits().to_be_bytes();
        let mut r = Reader::new(&data, "f");
        assert_eq!(r.f64().unwrap(), v);
    }

    #[test]
    fn array_reads_exact() {
        let data = [7u8; 6];
        let mut r = Reader::new(&data, "arr");
        let a: [u8; 6] = r.array().unwrap();
        assert_eq!(a, [7u8; 6]);
        assert!(r.array::<1>().is_err());
    }
}
