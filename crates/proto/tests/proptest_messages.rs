//! Property tests: all protocol messages round-trip, the codec refragments
//! arbitrarily, and decoders never panic on fuzz input.

use lazyctrl_net::{GroupId, MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::codec::MessageCodec;
use lazyctrl_proto::{
    Action, BargainMsg, ClusterMsg, CtrlHeartbeatMsg, FlowMatch, FlowModCommand, FlowModMsg,
    GroupAssignMsg, HostEntry, KeepAliveMsg, LazyMsg, LfibEntry, LfibSyncMsg, LookupReplyMsg,
    LookupRequestMsg, Message, OfMessage, OwnershipTransferMsg, PacketInMsg, PacketInReason,
    PacketOutMsg, PeerSyncMsg, StateReportMsg, SwitchStats, SyncDigestMsg, SyncRelayMsg,
    TransferReason,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_tenant() -> impl Strategy<Value = TenantId> {
    (0u16..=0x0fff).prop_map(TenantId::new)
}

fn arb_port() -> impl Strategy<Value = PortNo> {
    any::<u16>().prop_map(PortNo::new)
}

fn arb_switch() -> impl Strategy<Value = SwitchId> {
    any::<u32>().prop_map(SwitchId::new)
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        arb_port().prop_map(Action::Output),
        arb_tenant().prop_map(Action::SetVlan),
        Just(Action::StripVlan),
        Just(Action::Drop),
        (any::<[u8; 4]>(), any::<u32>()).prop_map(|(ip, key)| Action::Encap {
            remote: Ipv4Addr::from(ip),
            key,
        }),
    ]
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(arb_port()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_tenant()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(in_port, dl_src, dl_dst, dl_vlan, ty)| FlowMatch {
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_type: ty.map(lazyctrl_net::EtherType),
        })
}

fn arb_of() -> impl Strategy<Value = OfMessage> {
    prop_oneof![
        Just(OfMessage::Hello),
        Just(OfMessage::FeaturesRequest),
        Just(OfMessage::StatsRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoReply),
        (any::<u64>(), any::<u16>()).prop_map(|(d, p)| OfMessage::FeaturesReply {
            datapath_id: d,
            n_ports: p
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(a, b, c)| OfMessage::StatsReply {
            packets: a,
            flows: b,
            packet_ins: c
        }),
        (
            any::<u32>(),
            arb_port(),
            prop_oneof![
                Just(PacketInReason::NoMatch),
                Just(PacketInReason::Action),
                Just(PacketInReason::FalsePositive)
            ],
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(buffer_id, in_port, reason, data)| OfMessage::PacketIn(
                PacketInMsg {
                    buffer_id,
                    in_port,
                    reason,
                    data: data.into()
                }
            )),
        (
            any::<u32>(),
            arb_port(),
            proptest::collection::vec(arb_action(), 0..8),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(buffer_id, in_port, actions, data)| OfMessage::PacketOut(
                PacketOutMsg {
                    buffer_id,
                    in_port,
                    actions,
                    data: data.into()
                }
            )),
        (
            prop_oneof![
                Just(FlowModCommand::Add),
                Just(FlowModCommand::Modify),
                Just(FlowModCommand::Delete)
            ],
            arb_match(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u64>(),
            proptest::collection::vec(arb_action(), 0..8)
        )
            .prop_map(
                |(command, flow_match, priority, idle, hard, cookie, actions)| {
                    OfMessage::flow_mod(FlowModMsg {
                        command,
                        flow_match,
                        priority,
                        idle_timeout: idle,
                        hard_timeout: hard,
                        cookie,
                        actions,
                    })
                }
            ),
    ]
}

fn arb_lazy() -> impl Strategy<Value = LazyMsg> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(arb_switch(), 1..20),
            arb_switch(),
            proptest::collection::vec(arb_switch(), 0..3),
            arb_switch(),
            arb_switch(),
            any::<u32>(),
            any::<u32>(),
            1u32..1000
        )
            .prop_map(
                |(g, e, members, designated, backups, prev, next, si, ki, lim)| {
                    LazyMsg::group_assign(GroupAssignMsg {
                        group: GroupId::new(g),
                        epoch: e,
                        members,
                        designated,
                        backups,
                        ring_prev: prev,
                        ring_next: next,
                        sync_interval_ms: si,
                        keepalive_interval_ms: ki,
                        group_size_limit: lim,
                    })
                }
            ),
        (
            arb_switch(),
            any::<u32>(),
            proptest::collection::vec(
                (arb_mac(), arb_tenant(), arb_port()).prop_map(|(mac, tenant, port)| LfibEntry {
                    mac,
                    tenant,
                    port
                }),
                0..50
            ),
            proptest::collection::vec(arb_mac(), 0..20)
        )
            .prop_map(|(origin, epoch, entries, removed)| LazyMsg::lfib_sync(
                LfibSyncMsg {
                    origin,
                    epoch,
                    entries,
                    removed
                }
            )),
        (arb_switch(), any::<u64>())
            .prop_map(|(from, seq)| LazyMsg::KeepAlive(KeepAliveMsg { from, seq })),
        (any::<u32>(), any::<bool>(), any::<u32>(), any::<bool>()).prop_map(
            |(round, from_controller, proposed_limit, accept)| LazyMsg::Bargain(BargainMsg {
                round,
                from_controller,
                proposed_limit,
                accept
            })
        ),
        (arb_tenant(), any::<bool>())
            .prop_map(|(tenant, block)| LazyMsg::BlockArp { tenant, block }),
        (
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec((arb_switch(), arb_switch(), any::<f64>()), 0..20),
            proptest::collection::vec(
                (
                    arb_switch(),
                    any::<f64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>()
                )
                    .prop_map(|(s, f, l, g, c)| (
                        s,
                        SwitchStats {
                            new_flows_per_sec: f,
                            local_hits: l,
                            group_hits: g,
                            controller_punts: c
                        }
                    )),
                0..10
            )
        )
            .prop_map(
                |(g, e, intensity, stats)| LazyMsg::state_report(StateReportMsg {
                    group: GroupId::new(g),
                    epoch: e,
                    intensity,
                    stats
                })
            ),
    ]
}

fn arb_host_entry() -> impl Strategy<Value = HostEntry> {
    (arb_mac(), arb_switch(), arb_port(), arb_tenant()).prop_map(|(mac, switch, port, tenant)| {
        HostEntry {
            mac,
            switch,
            port,
            tenant,
        }
    })
}

fn arb_peer_sync() -> impl Strategy<Value = PeerSyncMsg> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(arb_host_entry(), 0..50),
        proptest::collection::vec((arb_mac(), arb_switch()), 0..20),
    )
        .prop_map(
            |(origin, seq, chunk, summary, entries, removed)| PeerSyncMsg {
                origin,
                seq,
                chunk,
                summary,
                entries,
                removed,
            },
        )
}

fn arb_cluster() -> impl Strategy<Value = ClusterMsg> {
    prop_oneof![
        // Peer sync: C-LIB shard replication.
        arb_peer_sync().prop_map(ClusterMsg::peer_sync),
        // Relay bundle on a ring/tree dissemination edge.
        (
            any::<u32>(),
            proptest::collection::vec(arb_peer_sync(), 0..4)
        )
            .prop_map(|(from, syncs)| ClusterMsg::sync_relay(SyncRelayMsg { from, syncs })),
        // Anti-entropy digest.
        (
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), any::<u64>()), 0..16)
        )
            .prop_map(|(from, heads)| ClusterMsg::sync_digest(SyncDigestMsg { from, heads })),
        // Ownership transfer: rebalance or failover.
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            prop_oneof![
                Just(TransferReason::Rebalance),
                Just(TransferReason::Failover)
            ]
        )
            .prop_map(
                |(epoch, g, from, to, term, reason)| ClusterMsg::OwnershipTransfer(
                    OwnershipTransferMsg {
                        epoch,
                        group: GroupId::new(g),
                        from,
                        to,
                        term,
                        reason
                    }
                )
            ),
        // Heartbeat with load piggyback and leader/term advertisement.
        (
            any::<u32>(),
            any::<u64>(),
            any::<f64>(),
            any::<u32>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(from, seq, load_rps, owned_groups, term, leader)| {
                ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
                    from,
                    seq,
                    load_rps,
                    owned_groups,
                    term,
                    leader,
                })
            }),
        // Host lookups (replica-miss fallback).
        (any::<u32>(), arb_mac())
            .prop_map(|(from, mac)| ClusterMsg::LookupRequest(LookupRequestMsg { from, mac })),
        (
            any::<u32>(),
            arb_mac(),
            proptest::option::of(arb_host_entry())
        )
            .prop_map(
                |(from, mac, location)| ClusterMsg::LookupReply(LookupReplyMsg {
                    from,
                    mac,
                    location
                })
            ),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u32>(),
        prop_oneof![
            arb_of().prop_map(lazyctrl_proto::MessageBody::Of),
            arb_lazy().prop_map(lazyctrl_proto::MessageBody::Lazy),
            arb_cluster().prop_map(lazyctrl_proto::MessageBody::Cluster)
        ],
    )
        .prop_map(|(xid, body)| Message { xid, body })
}

/// NaN payloads break `PartialEq`-based comparison; normalize them away so
/// the round-trip equality check is meaningful (the wire format itself is
/// bit-exact for NaN too).
fn has_nan(m: &Message) -> bool {
    match (m.as_lazy(), m.as_cluster()) {
        (Some(LazyMsg::StateReport(r)), _) => {
            r.intensity.iter().any(|(_, _, w)| w.is_nan())
                || r.stats.iter().any(|(_, s)| s.new_flows_per_sec.is_nan())
        }
        (_, Some(ClusterMsg::Heartbeat(hb))) => hb.load_rps.is_nan(),
        _ => false,
    }
}

proptest! {
    #[test]
    fn messages_round_trip(m in arb_message()) {
        prop_assume!(!has_nan(&m));
        let wire = m.encode();
        prop_assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn codec_survives_arbitrary_fragmentation(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        cut in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!msgs.iter().any(has_nan));
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(m.encode());
        }
        let cut = cut.index(stream.len().max(1));
        let mut codec = MessageCodec::new();
        codec.feed(&stream[..cut]);
        let mut out = codec.drain().unwrap();
        codec.feed(&stream[cut..]);
        out.extend(codec.drain().unwrap());
        prop_assert_eq!(out, msgs);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
        let mut codec = MessageCodec::new();
        codec.feed(&bytes);
        // Errors are fine; panics are not. Drain until quiescent.
        for _ in 0..bytes.len() + 1 {
            match codec.next_message() {
                Ok(Some(_)) | Err(_) => continue,
                Ok(None) => break,
            }
        }
    }
}
