//! Property tests for the fault-injection plan: arbitrary plans
//! round-trip through the binary encoding, stay sorted, and the decoder
//! never panics on fuzz input.

use lazyctrl_net::SwitchId;
use lazyctrl_proto::{EventPlan, InjectedEvent};
use lazyctrl_sim::{ChannelClass, SimTime};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ChannelClass> {
    prop_oneof![
        Just(ChannelClass::Data),
        Just(ChannelClass::Control),
        Just(ChannelClass::State),
        Just(ChannelClass::Peer),
        Just(ChannelClass::CtrlPeer),
    ]
}

fn arb_event() -> impl Strategy<Value = InjectedEvent> {
    prop_oneof![
        any::<u32>().prop_map(InjectedEvent::CrashController),
        any::<u32>().prop_map(InjectedEvent::RecoverController),
        any::<u32>().prop_map(|s| InjectedEvent::CrashSwitch(SwitchId::new(s))),
        any::<u32>().prop_map(|s| InjectedEvent::RecoverSwitch(SwitchId::new(s))),
        (arb_class(), 1u32..10_000).prop_map(|(class, f)| InjectedEvent::LinkDegrade {
            class,
            factor: f as f64 / 100.0,
        }),
        (arb_class(), 0u32..=1000).prop_map(|(class, p)| InjectedEvent::LinkLoss {
            class,
            loss: p as f64 / 1000.0,
        }),
        (1u32..100_000).prop_map(|batch| InjectedEvent::MigrateHosts { batch }),
        (1u32..10_000).prop_map(|s| InjectedEvent::TrafficBurst {
            scale: s as f64 / 100.0,
        }),
        arb_partition_groups().prop_map(|groups| InjectedEvent::PartitionNetwork { groups }),
        Just(InjectedEvent::HealPartition),
    ]
}

/// Disjoint, non-empty partition islands over arbitrary node ids
/// (including controller-pseudo-range ids) — the shape `validate`
/// accepts.
fn arb_partition_groups() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (
        proptest::collection::btree_set(any::<u32>(), 1..12),
        1usize..5,
    )
        .prop_map(|(nodes, want)| {
            let nodes: Vec<u32> = nodes.into_iter().collect();
            let count = want.min(nodes.len());
            let mut groups = vec![Vec::new(); count];
            for (i, node) in nodes.into_iter().enumerate() {
                groups[i % count].push(node);
            }
            groups
        })
}

fn arb_plan() -> impl Strategy<Value = EventPlan> {
    proptest::collection::vec((any::<u32>(), arb_event()), 0..16).prop_map(|events| {
        let mut plan = EventPlan::new();
        for (at_ms, event) in events {
            plan.schedule(SimTime::from_millis(at_ms as u64), event);
        }
        plan
    })
}

proptest! {
    #[test]
    fn plans_round_trip(plan in arb_plan()) {
        plan.validate();
        let wire = plan.encode();
        prop_assert_eq!(EventPlan::decode(&wire).unwrap(), plan);
    }

    #[test]
    fn plans_stay_sorted(plan in arb_plan()) {
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "{:?}", times);
    }

    #[test]
    fn decoder_never_panics_on_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EventPlan::decode(&bytes);
    }

    #[test]
    fn truncated_encodings_error_not_panic(plan in arb_plan(), cut in any::<prop::sample::Index>()) {
        let wire = plan.encode();
        if wire.len() > 1 {
            let n = 1 + cut.index(wire.len() - 1);
            if n < wire.len() {
                prop_assert!(EventPlan::decode(&wire[..n]).is_err());
            }
        }
    }
}
