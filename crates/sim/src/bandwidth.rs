//! Deterministic fair-share bandwidth model: serialization + queueing
//! delay per directed link, computed closed-form from message size and
//! the link's in-flight backlog.
//!
//! The latency model ([`crate::LatencyModel`]) prices *distance*; this
//! module prices *load*. Each [`ChannelClass`] may carry a capacity in
//! bytes per second of virtual time; a message of `n` bytes sent on a
//! link of that class pays
//!
//! * **serialization delay** — `⌈n · 1e9 / capacity⌉` ns, and
//! * **queueing delay** — the time until the link's transmit queue
//!   drains, tracked as a per-link `busy_until` watermark in virtual
//!   time.
//!
//! The watermark advances by exactly the serialization time of each
//! message and decays implicitly (an idle link's watermark falls behind
//! `now`, so the next message pays serialization only). Everything is
//! integer arithmetic on virtual time — **no RNG draws** — so the
//! replicated-RNG lockstep of the sharded engine and bit-identical
//! reports across scheduler backends and worker counts hold by
//! construction. Classes without a configured capacity cost a single
//! array read and return zero, keeping the off-path overhead negligible.
//!
//! Sharded runs clone the model into every partition at `split`. That is
//! sound because a directed link's delays are computed where its *sender*
//! dispatches: a switch's uplinks live on the switch's shard, and every
//! controller-originated link dispatches on the hub — so each per-link
//! watermark is only ever touched by one partition.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use serde::{Deserialize, Serialize};

use crate::{ChannelClass, LinkId, SimDuration, SimTime};

/// Build-hasher for the watermark table. [`LinkId`] keys are 9 bytes of
/// plain integers, so the standard library's DoS-resistant SipHash is
/// pure overhead on the dispatch hot path; this splitmix64-finalizer
/// hasher is a fraction of the cost. Hash order never reaches any
/// observable output, so determinism is unaffected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkTableHash;

impl BuildHasher for LinkTableHash {
    type Hasher = LinkHasher;

    fn build_hasher(&self) -> LinkHasher {
        LinkHasher(0x9E37_79B9_7F4A_7C15)
    }
}

/// Accumulates writes with cheap mixing; [`Hasher::finish`] applies the
/// splitmix64 finalizer for avalanche.
pub struct LinkHasher(u64);

impl LinkHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(29) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl Hasher for LinkHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Per-class link capacities plus per-link transmit-queue watermarks.
///
/// `Default` models nothing: every class is uncapacitated and every
/// delay is zero, which reproduces the pre-bandwidth behaviour exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Capacity in bytes per second of virtual time, per
    /// [`ChannelClass::index`]. `None` = unmodeled (zero cost).
    capacity: [Option<u64>; ChannelClass::COUNT],
    /// Cached `(1e9 / cap, 1e9 % cap)` per class — the serialization
    /// constants, precomputed at capacity-set time so the per-message
    /// path pays one division instead of two. Zeros for unmodeled
    /// classes (never read: the capacity gate short-circuits first).
    ser_consts: [(u64, u64); ChannelClass::COUNT],
    /// Virtual-time instant each directed link's transmit queue drains.
    /// Only links that carried traffic on a capacitated class appear.
    busy_until_ns: HashMap<LinkId, u64, LinkTableHash>,
}

impl BandwidthModel {
    /// A model with no capacitated classes (every delay is zero).
    pub fn unmodeled() -> Self {
        BandwidthModel::default()
    }

    /// Sets (or clears, with `None`) the capacity of one channel class.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity — an unmodeled class is `None`, not 0.
    pub fn set_capacity(&mut self, class: ChannelClass, bytes_per_sec: Option<u64>) {
        if let Some(cap) = bytes_per_sec {
            assert!(cap > 0, "bandwidth capacity must be positive, got 0");
        }
        self.capacity[class.index()] = bytes_per_sec;
        self.ser_consts[class.index()] = bytes_per_sec
            .map(|cap| (1_000_000_000 / cap, 1_000_000_000 % cap))
            .unwrap_or((0, 0));
    }

    /// Builder form of [`set_capacity`](BandwidthModel::set_capacity).
    pub fn with_capacity(mut self, class: ChannelClass, bytes_per_sec: u64) -> Self {
        self.set_capacity(class, Some(bytes_per_sec));
        self
    }

    /// The configured capacity of `class`, if any.
    pub fn capacity(&self, class: ChannelClass) -> Option<u64> {
        self.capacity[class.index()]
    }

    /// True if `class` carries a capacity — the one-array-read gate the
    /// hot path checks before paying for a message-size computation.
    #[inline]
    pub fn class_enabled(&self, class: ChannelClass) -> bool {
        self.capacity[class.index()].is_some()
    }

    /// True if no class is capacitated (the model is pure pass-through).
    pub fn is_unmodeled(&self) -> bool {
        self.capacity.iter().all(|c| c.is_none())
    }

    /// The serialization + queueing delay for one message of `bytes` on
    /// `link` at virtual time `now`, and advances the link's watermark.
    /// Zero (with no state touched) when the class is uncapacitated.
    #[inline]
    pub fn delay(&mut self, link: LinkId, bytes: u64, now: SimTime) -> SimDuration {
        let Some(cap) = self.capacity[link.class.index()] else {
            return SimDuration::ZERO;
        };
        let now_ns = now.as_nanos();
        let ser_ns = self.serialization_ns(link.class, bytes, cap);
        let entry = self.busy_until_ns.entry(link).or_insert(0);
        let start = (*entry).max(now_ns);
        *entry = start.saturating_add(ser_ns);
        SimDuration::from_nanos((start - now_ns).saturating_add(ser_ns))
    }

    /// Closed-form serialization time: `⌈bytes · 1e9 / cap⌉` ns.
    #[inline]
    fn serialization_ns(&self, class: ChannelClass, bytes: u64, cap: u64) -> u64 {
        // Messages are wire-format-bounded (64 kB frames), so the common
        // case fits comfortably in u64: with `q = 1e9 / cap` and
        // `r = 1e9 % cap` (cached per class), `⌈b·1e9/cap⌉ = b·q +
        // ⌈b·r/cap⌉` exactly, and both products stay under 2^62 for
        // `b < 2^32` (q, r ≤ 1e9). This keeps the hot path at a single
        // 64-bit division and avoids the 128-bit libcall entirely.
        if bytes < (1 << 32) {
            let (q, r) = self.ser_consts[class.index()];
            bytes * q + (bytes * r).div_ceil(cap)
        } else {
            let num = (bytes as u128) * 1_000_000_000u128;
            let cap = cap as u128;
            (num.div_ceil(cap)).min(u64::MAX as u128) as u64
        }
    }

    /// The backlog (ns of queued transmission) on `link` at `now` — how
    /// far its watermark runs ahead of the clock. Diagnostic only.
    pub fn backlog_ns(&self, link: LinkId, now: SimTime) -> u64 {
        self.busy_until_ns
            .get(&link)
            .map(|&b| b.saturating_sub(now.as_nanos()))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(from: u32, to: u32) -> LinkId {
        LinkId::new(from, to, ChannelClass::Control)
    }

    #[test]
    fn unmodeled_class_costs_zero_and_stores_nothing() {
        let mut m = BandwidthModel::unmodeled();
        assert!(m.is_unmodeled());
        assert!(!m.class_enabled(ChannelClass::Control));
        let d = m.delay(link(1, 2), 1_000_000, SimTime::ZERO);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(m.busy_until_ns.len(), 0, "no watermark for free classes");
    }

    #[test]
    fn serialization_delay_is_bytes_over_capacity() {
        // 1 MB/s: one byte serializes in 1 µs.
        let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000);
        assert!(m.class_enabled(ChannelClass::Control));
        assert!(!m.is_unmodeled());
        let d = m.delay(link(1, 2), 500, SimTime::ZERO);
        assert_eq!(d, SimDuration::from_micros(500));
    }

    #[test]
    fn back_to_back_messages_queue_behind_each_other() {
        let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000);
        let t = SimTime::from_secs(1);
        let first = m.delay(link(1, 2), 1000, t);
        let second = m.delay(link(1, 2), 1000, t);
        assert_eq!(first, SimDuration::from_millis(1));
        assert_eq!(
            second,
            SimDuration::from_millis(2),
            "second message waits out the first, then serializes"
        );
        assert_eq!(m.backlog_ns(link(1, 2), t), 2_000_000);
    }

    #[test]
    fn idle_gap_drains_the_queue() {
        let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000);
        m.delay(link(1, 2), 1000, SimTime::ZERO);
        // Well past the 1 ms serialization: queue empty again.
        let later = SimTime::from_secs(5);
        assert_eq!(m.backlog_ns(link(1, 2), later), 0);
        let d = m.delay(link(1, 2), 1000, later);
        assert_eq!(d, SimDuration::from_millis(1), "no residual queueing");
    }

    #[test]
    fn links_are_independent() {
        let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000);
        m.delay(link(1, 2), 10_000, SimTime::ZERO);
        let other = m.delay(link(3, 2), 1000, SimTime::ZERO);
        assert_eq!(
            other,
            SimDuration::from_millis(1),
            "a busy neighbour link adds no delay"
        );
        // Direction matters too.
        let reverse = m.delay(link(2, 1), 1000, SimTime::ZERO);
        assert_eq!(reverse, SimDuration::from_millis(1));
    }

    #[test]
    fn classes_are_independent() {
        let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000);
        let peer = LinkId::new(1, 2, ChannelClass::Peer);
        assert_eq!(m.delay(peer, 1_000_000, SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn delays_are_deterministic() {
        let run = || {
            let mut m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_234_567);
            (0..100)
                .map(|i| {
                    m.delay(
                        link(i % 7, 99),
                        64 + i as u64 * 13,
                        SimTime::from_micros(i as u64 * 37),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn serialization_rounds_up() {
        // 3 bytes at 1 GB/s = 3 ns exactly; 1 byte at 3 GB/s = ceil(1/3 ns) = 1 ns.
        let even = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 1_000_000_000);
        assert_eq!(
            even.serialization_ns(ChannelClass::Control, 3, 1_000_000_000),
            3
        );
        assert_eq!(
            even.serialization_ns(ChannelClass::Control, 0, 1_000_000_000),
            0
        );
        let fast = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 3_000_000_000);
        assert_eq!(
            fast.serialization_ns(ChannelClass::Control, 1, 3_000_000_000),
            1
        );
    }

    /// The u64 fast path and the u128 slow path must agree wherever both
    /// apply — the cached `(q, r)` decomposition is exact, not an
    /// approximation.
    #[test]
    fn fast_and_slow_serialization_paths_agree() {
        for cap in [1u64, 7, 999, 1_000_000, 999_999_937, 20_000_000_000] {
            let m = BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, cap);
            for bytes in [0u64, 1, 17, 64, 1500, 65_535, u32::MAX as u64] {
                let fast = m.serialization_ns(ChannelClass::Control, bytes, cap);
                let slow = ((bytes as u128) * 1_000_000_000u128).div_ceil(cap as u128) as u64;
                assert_eq!(fast, slow, "bytes={bytes} cap={cap}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BandwidthModel::unmodeled().set_capacity(ChannelClass::Control, Some(0));
    }
}
