//! The event queue and driver loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

/// A pending event: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic priority queue of future events.
///
/// Events at equal times fire in insertion order, making every simulation
/// replayable bit-for-bit.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// Handle through which a [`World`] schedules follow-up events while one is
/// being handled.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Wraps a queue so setup code outside the [`run`] loop (e.g. a
    /// controller bootstrap) can schedule through the same interface.
    pub fn over(queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { queue }
    }

    /// Schedules an event at an absolute time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Schedules an event `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.queue.schedule(now + delay, event);
    }
}

impl<'a, E> std::fmt::Debug for Scheduler<'a, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").finish_non_exhaustive()
    }
}

/// The simulated system: receives each event in time order.
pub trait World {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`, optionally scheduling more.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Runs until the queue drains or virtual time would exceed `until`.
///
/// Returns the time of the last handled event (or [`SimTime::ZERO`] if
/// nothing fired). Events scheduled beyond `until` stay in the queue.
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, until: SimTime) -> SimTime {
    let mut last = SimTime::ZERO;
    while let Some(at) = queue.peek_time() {
        if at > until {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event exists");
        let mut sched = Scheduler { queue };
        world.handle(now, event, &mut sched);
        last = now;
    }
    last
}

/// Runs until the queue is completely empty (use with care: worlds that
/// reschedule forever will not terminate).
pub fn run_until_idle<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>) -> SimTime {
    run(world, queue, SimTime::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now, ev));
            if ev == 1 {
                // Chain reaction: schedule two more.
                sched.schedule_in(now, SimDuration::from_millis(5), 10);
                sched.schedule_at(SimTime::from_millis(100), 11);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let mut w = Recorder { seen: vec![] };
        run_until_idle(&mut w, &mut q);
        // Event 1 at t=10 chains event 10 at t=15 (before 2 at t=20) and
        // event 11 at t=100.
        let evs: Vec<u32> = w.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 10, 2, 3, 11]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        // Values ≥ 100 so no chaining kicks in.
        for i in 100..150 {
            q.schedule(SimTime::from_millis(7), i);
        }
        let mut w = Recorder { seen: vec![] };
        run_until_idle(&mut w, &mut q);
        let evs: Vec<u32> = w.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, (100..150).collect::<Vec<_>>());
    }

    #[test]
    fn run_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 2);
        q.schedule(SimTime::from_secs(10), 3);
        let mut w = Recorder { seen: vec![] };
        let last = run(&mut w, &mut q, SimTime::from_secs(5));
        assert_eq!(w.seen.len(), 1);
        assert_eq!(last, SimTime::from_secs(1));
        assert_eq!(q.len(), 1, "late event remains queued");
    }

    #[test]
    fn empty_queue_returns_zero() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut w = Recorder { seen: vec![] };
        assert_eq!(run_until_idle(&mut w, &mut q), SimTime::ZERO);
        assert!(q.is_empty());
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut q = EventQueue::new();
            q.schedule(SimTime::from_millis(1), 1);
            q.schedule(SimTime::from_millis(1), 2);
            q.schedule(SimTime::from_millis(2), 3);
            q
        };
        let mut w1 = Recorder { seen: vec![] };
        let mut w2 = Recorder { seen: vec![] };
        run_until_idle(&mut w1, &mut build());
        run_until_idle(&mut w2, &mut build());
        assert_eq!(w1.seen, w2.seen);
    }
}
