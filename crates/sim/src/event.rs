//! The event queue and driver loop.
//!
//! Two scheduler backends implement the same deterministic contract —
//! events fire in `(time, insertion seq)` order, bit-identically:
//!
//! * [`WheelQueue`] — a hierarchical timing wheel (the default): 9 levels
//!   of 64 slots over ~8 µs ticks cover the full `u64` nanosecond range,
//!   so `schedule`/`pop` are near-O(1) amortized instead of the
//!   `O(log n)` cache-missing heap operations that dominated the hot
//!   path at paper scale. See `DESIGN.md` §"Scheduler".
//! * [`HeapQueue`] — the original `BinaryHeap` scheduler, retained as the
//!   differential-testing reference (`tests/proptest_scheduler.rs`
//!   asserts both pop identical sequences under arbitrary schedules).
//!
//! [`EventQueue`] fronts both behind one type; the backend is chosen per
//! queue via [`SchedulerKind`] (experiments expose this as a config knob
//! so scenario regressions can replay the same run under both). The
//! compile-time default is the wheel; building `lazyctrl-sim` with the
//! `heap-sched` feature flips the default back to the heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

/// A pending event: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which scheduler backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel (near-O(1); the default).
    Wheel,
    /// Binary-heap reference scheduler (O(log n)).
    Heap,
}

impl Default for SchedulerKind {
    fn default() -> Self {
        if cfg!(feature = "heap-sched") {
            SchedulerKind::Heap
        } else {
            SchedulerKind::Wheel
        }
    }
}

impl SchedulerKind {
    /// Short label used in reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        }
    }
}

// ---------------------------------------------------------------------------
// Heap backend (reference implementation)
// ---------------------------------------------------------------------------

/// The original `BinaryHeap` scheduler: `O(log n)` schedule/pop, kept as
/// the differential-testing reference for [`WheelQueue`].
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue::default()
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.popped += 1;
            (e.at, e.event)
        })
    }

    /// Fire time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest event if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.at <= until) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------------
// Timing-wheel backend
// ---------------------------------------------------------------------------

/// Tick granularity: 2¹³ ns ≈ 8 µs. Events inside one tick are ordered
/// exactly by `(time, seq)` through the ready stage, so the granularity
/// affects batching only, never fire order.
const TICK_SHIFT: u32 = 13;
/// log2(slots per level).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels. 9 × 6 bits cover all 51 tick bits of a `u64` nanosecond
/// timestamp (with room to spare), so *every* future time has a slot —
/// there is no separate overflow list; the top level is the overflow.
const LEVELS: usize = 9;

/// The key a wheel slot actually stores and moves: fire time, tie-break
/// sequence, and the payload's slab index. 24 bytes and `Copy`, so the
/// cascade/sort churn of the wheel shuffles keys, not full events — the
/// payload sits still in the slab until its pop (see [`WheelQueue`]).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Key {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `idx` is storage, not identity: (time, seq) is already total.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Converts a slab length to a `u32` cell index, refusing to wrap: keys
/// store cell indices in 32 bits, so a slab past `u32::MAX` live cells
/// would silently alias earlier cells and corrupt the queue. More than
/// 4 billion *pending* events means something upstream is broken anyway,
/// so this is a loud invariant, not a capacity to engineer around.
#[inline]
fn slab_index(len: usize) -> u32 {
    u32::try_from(len)
        .unwrap_or_else(|_| panic!("wheel payload slab exceeded u32 capacity ({len} live cells)"))
}

/// A deterministic hierarchical timing wheel.
///
/// Invariants (see `DESIGN.md` for the full argument):
///
/// * `cursor` is the tick of the earliest event ever primed; it only
///   moves forward, directly to the next occupied tick (bitmap scans skip
///   empty slots — no tick-by-tick advancement).
/// * A level-`k` slot holds events whose tick agrees with the cursor on
///   all 6-bit groups above `k` and first differs (upward) at group `k`;
///   events never sit below the level that property assigns them, so each
///   event cascades at most `LEVELS` times over its lifetime.
/// * Events whose tick ≤ cursor live in the *ready stage*: the current
///   tick's batch, sorted descending by `(time, seq)` so popping the
///   minimum is `Vec::pop`, plus a tiny overflow heap for events
///   scheduled into the already-open tick while it drains. This is what
///   makes fire order exact (ns-resolution) even though wheel slots are
///   tick-granular — and it costs no per-event heap sift on the common
///   path.
/// * Payloads live in a **pooled slab**: `schedule` places the event in a
///   free slab cell (LIFO reuse, so steady-state traffic recycles the
///   same cache-hot cells), the wheel moves only 24-byte `Key`s, and
///   `pop` takes the payload back out of its cell. Park, cascade and the
///   ready-stage sort therefore never copy event payloads.
pub struct WheelQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<Key>>,
    /// Per-level occupancy bitmaps (bit `s` ⇔ slot `s` non-empty).
    occ: [u64; LEVELS],
    /// Current tick (low 51 bits meaningful).
    cursor: u64,
    /// The current tick's batch, sorted descending by `(time, seq)`;
    /// popped from the back.
    ready: Vec<Key>,
    /// Events landing at or before the cursor tick *after* its batch was
    /// opened (e.g. zero-delay follow-ups) — usually empty.
    ready_extra: BinaryHeap<Reverse<Key>>,
    /// Events parked in wheel slots (excludes the ready stage).
    in_wheel: usize,
    /// Emptied slot buffers kept for reuse, so cascading a slot does not
    /// free its allocation just to re-grow it on the next park.
    spare: Vec<Vec<Key>>,
    /// Payload slab, indexed by [`Key::idx`]. `None` = free cell.
    payloads: Vec<Option<E>>,
    /// Free slab cells, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        WheelQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            cursor: 0,
            ready: Vec::new(),
            ready_extra: BinaryHeap::new(),
            in_wheel: 0,
            spare: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            popped: 0,
        }
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WheelQueue::default()
    }

    /// Size in bytes of the record a wheel slot stores per pending event
    /// (the quantity the park/cascade/sort churn moves; the payload
    /// itself stays in the slab).
    pub const fn slot_entry_size() -> usize {
        std::mem::size_of::<Key>()
    }

    #[inline]
    fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() >> TICK_SHIFT
    }

    /// Level a tick belongs to relative to the cursor: the 6-bit group of
    /// the highest bit where the two ticks differ.
    #[inline]
    fn level_of(&self, tick: u64) -> usize {
        let xor = tick ^ self.cursor;
        debug_assert!(xor != 0, "same-tick events go to ready, not the wheel");
        ((63 - xor.leading_zeros()) / LEVEL_BITS) as usize
    }

    #[inline]
    fn slot_index(level: usize, tick: u64) -> usize {
        let group = (tick >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1);
        level * SLOTS + group as usize
    }

    /// Stores a payload in the slab, reusing a freed cell when one is
    /// available (LIFO: the most recently vacated cell is the hottest).
    #[inline]
    fn store(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.payloads[idx as usize] = Some(event);
                idx
            }
            None => {
                let idx = slab_index(self.payloads.len());
                self.payloads.push(Some(event));
                idx
            }
        }
    }

    /// Takes a popped key's payload back out of the slab and recycles
    /// its cell.
    #[inline]
    fn redeem(&mut self, key: Key) -> (SimTime, E) {
        let event = self.payloads[key.idx as usize]
            .take()
            .expect("every parked key owns a live slab cell");
        self.free.push(key.idx);
        self.popped += 1;
        (key.at, event)
    }

    #[inline]
    fn park(&mut self, key: Key) {
        let tick = Self::tick_of(key.at);
        if tick <= self.cursor {
            // Current (already-open) tick — or a past time, which the
            // heap reference would also surface next; both join the
            // ready stage through the overflow heap.
            self.ready_extra.push(Reverse(key));
            return;
        }
        let level = self.level_of(tick);
        let idx = Self::slot_index(level, tick);
        self.slots[idx].push(key);
        self.occ[level] |= 1 << (idx - level * SLOTS);
        self.in_wheel += 1;
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.store(event);
        self.park(Key { at, seq, idx });
    }

    #[inline]
    fn ready_stage_empty(&self) -> bool {
        self.ready.is_empty() && self.ready_extra.is_empty()
    }

    /// Ensures the earliest pending event (if any) sits in the ready
    /// stage: advances the cursor to the next occupied tick, cascading
    /// higher-level slots down as it enters them.
    fn prime(&mut self) {
        while self.ready_stage_empty() && self.in_wheel > 0 {
            for level in 0..LEVELS {
                let shift = level as u32 * LEVEL_BITS;
                let cur_group = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
                // Slots below the cursor's group hold past ticks, which
                // cannot exist (the cursor only moves to the minimum
                // pending tick); mask them off and take the lowest
                // occupied slot at or above it.
                let mask = self.occ[level] & (!0u64 << cur_group);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as usize;
                let idx = level * SLOTS + slot;
                let replacement = self.spare.pop().unwrap_or_default();
                let mut batch = std::mem::replace(&mut self.slots[idx], replacement);
                self.occ[level] &= !(1u64 << slot);
                self.in_wheel -= batch.len();
                if level == 0 {
                    // All entries in a level-0 slot share one tick: move
                    // the cursor there and open the batch as the ready
                    // stage, sorted descending so the minimum pops from
                    // the back with no further moves.
                    self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                    if batch.len() > 1 {
                        batch.sort_unstable_by(|a, b| b.cmp(a));
                    }
                    let consumed = std::mem::replace(&mut self.ready, batch);
                    self.spare.push(consumed);
                } else {
                    // Jump the cursor to the base of the slot's tick
                    // range (groups below `level` zeroed), then cascade
                    // its entries — each lands at a strictly lower level
                    // or in the ready stage, so this terminates.
                    if slot != cur_group {
                        let span = 1u64 << (shift + LEVEL_BITS);
                        self.cursor = (self.cursor & !(span - 1)) | ((slot as u64) << shift);
                    }
                    for key in batch.drain(..) {
                        self.park(key);
                    }
                    // `park` counts re-inserted wheel entries again.
                    self.spare.push(batch);
                }
                break;
            }
        }
    }

    /// True when the next ready-stage pop must come from the overflow
    /// heap rather than the sorted batch.
    #[inline]
    fn extra_first(&self) -> bool {
        match (self.ready.last(), self.ready_extra.peek()) {
            (Some(r), Some(Reverse(x))) => x < r,
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.prime();
        let key = if self.extra_first() {
            self.ready_extra.pop().map(|Reverse(k)| k)
        } else {
            self.ready.pop()
        };
        key.map(|k| self.redeem(k))
    }

    /// Pops the earliest event if it fires at or before `until` — one
    /// prime + one comparison, where a `peek_time` + `pop` pair would
    /// pay the queue front-end twice. Events beyond `until` stay queued.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        self.prime();
        let key = if self.extra_first() {
            if self
                .ready_extra
                .peek()
                .is_some_and(|Reverse(k)| k.at <= until)
            {
                self.ready_extra.pop().map(|Reverse(k)| k)
            } else {
                None
            }
        } else if self.ready.last().is_some_and(|k| k.at <= until) {
            self.ready.pop()
        } else {
            None
        };
        key.map(|k| self.redeem(k))
    }

    /// Fire time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.prime();
        if self.extra_first() {
            self.ready_extra.peek().map(|Reverse(k)| k.at)
        } else {
            self.ready.last().map(|k| k.at)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_wheel + self.ready.len() + self.ready_extra.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

// One `EventQueue` exists per experiment and lives on the stack for the
// whole run; the wheel's inline slot/bitmap state dwarfs the heap variant
// but is never copied, so the size skew is irrelevant here.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Wheel(WheelQueue<E>),
    Heap(HeapQueue<E>),
}

/// A deterministic priority queue of future events.
///
/// Events at equal times fire in insertion order, making every simulation
/// replayable bit-for-bit — on either backend (see [`SchedulerKind`]).
pub struct EventQueue<E> {
    backend: Backend<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::with_kind(SchedulerKind::default())
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default backend (the timing wheel,
    /// unless the `heap-sched` feature is enabled).
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        EventQueue {
            backend: match kind {
                SchedulerKind::Wheel => Backend::Wheel(WheelQueue::new()),
                SchedulerKind::Heap => Backend::Heap(HeapQueue::new()),
            },
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> SchedulerKind {
        match &self.backend {
            Backend::Wheel(_) => SchedulerKind::Wheel,
            Backend::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        match &mut self.backend {
            Backend::Wheel(q) => q.schedule(at, event),
            Backend::Heap(q) => q.schedule(at, event),
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(q) => q.pop(),
            Backend::Heap(q) => q.pop(),
        }
    }

    /// Fire time of the earliest pending event.
    ///
    /// Takes `&mut self`: the wheel backend may advance its cursor (and
    /// cascade slots) to locate the minimum — pending events and their
    /// order are unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Wheel(q) => q.peek_time(),
            Backend::Heap(q) => q.peek_time(),
        }
    }

    /// Pops the earliest event if it fires at or before `until` (the
    /// driver loop's one-call fast path).
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(q) => q.pop_until(until),
            Backend::Heap(q) => q.pop_until(until),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(q) => q.len(),
            Backend::Heap(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        match &self.backend {
            Backend::Wheel(q) => q.scheduled_total(),
            Backend::Heap(q) => q.scheduled_total(),
        }
    }

    /// Total events popped over the queue's lifetime (what an experiment
    /// reports as events processed).
    pub fn popped_total(&self) -> u64 {
        match &self.backend {
            Backend::Wheel(q) => q.popped_total(),
            Backend::Heap(q) => q.popped_total(),
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind().label())
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total())
            .finish()
    }
}

/// Handle through which a [`World`] schedules follow-up events while one is
/// being handled.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Wraps a queue so setup code outside the [`run`] loop (e.g. a
    /// controller bootstrap) can schedule through the same interface.
    pub fn over(queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { queue }
    }

    /// Schedules an event at an absolute time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Schedules an event `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.queue.schedule(now + delay, event);
    }
}

impl<'a, E> std::fmt::Debug for Scheduler<'a, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").finish_non_exhaustive()
    }
}

/// The simulated system: receives each event in time order.
pub trait World {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`, optionally scheduling more.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Runs until the queue drains or virtual time would exceed `until`.
///
/// Returns the time of the last handled event (or [`SimTime::ZERO`] if
/// nothing fired). Events scheduled beyond `until` stay in the queue.
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, until: SimTime) -> SimTime {
    let mut last = SimTime::ZERO;
    while let Some((now, event)) = queue.pop_until(until) {
        let mut sched = Scheduler { queue };
        world.handle(now, event, &mut sched);
        last = now;
    }
    last
}

/// Runs until the queue is completely empty (use with care: worlds that
/// reschedule forever will not terminate).
pub fn run_until_idle<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>) -> SimTime {
    run(world, queue, SimTime::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now, ev));
            if ev == 1 {
                // Chain reaction: schedule two more.
                sched.schedule_in(now, SimDuration::from_millis(5), 10);
                sched.schedule_at(SimTime::from_millis(100), 11);
            }
        }
    }

    fn both_kinds() -> [SchedulerKind; 2] {
        [SchedulerKind::Wheel, SchedulerKind::Heap]
    }

    #[test]
    fn events_fire_in_time_order() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_millis(30), 3);
            q.schedule(SimTime::from_millis(10), 1);
            q.schedule(SimTime::from_millis(20), 2);
            let mut w = Recorder { seen: vec![] };
            run_until_idle(&mut w, &mut q);
            // Event 1 at t=10 chains event 10 at t=15 (before 2 at t=20) and
            // event 11 at t=100.
            let evs: Vec<u32> = w.seen.iter().map(|&(_, e)| e).collect();
            assert_eq!(evs, vec![1, 10, 2, 3, 11], "{}", kind.label());
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            // Values ≥ 100 so no chaining kicks in.
            for i in 100..150 {
                q.schedule(SimTime::from_millis(7), i);
            }
            let mut w = Recorder { seen: vec![] };
            run_until_idle(&mut w, &mut q);
            let evs: Vec<u32> = w.seen.iter().map(|&(_, e)| e).collect();
            assert_eq!(evs, (100..150).collect::<Vec<_>>(), "{}", kind.label());
        }
    }

    #[test]
    fn run_respects_horizon() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(1), 2);
            q.schedule(SimTime::from_secs(10), 3);
            let mut w = Recorder { seen: vec![] };
            let last = run(&mut w, &mut q, SimTime::from_secs(5));
            assert_eq!(w.seen.len(), 1);
            assert_eq!(last, SimTime::from_secs(1));
            assert_eq!(q.len(), 1, "late event remains queued");
            assert_eq!(q.popped_total(), 1);
            assert_eq!(q.scheduled_total(), 2);
        }
    }

    #[test]
    fn empty_queue_returns_zero() {
        for kind in both_kinds() {
            let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
            let mut w = Recorder { seen: vec![] };
            assert_eq!(run_until_idle(&mut w, &mut q), SimTime::ZERO);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn determinism_across_runs_and_backends() {
        let build = |kind| {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_millis(1), 1);
            q.schedule(SimTime::from_millis(1), 2);
            q.schedule(SimTime::from_millis(2), 3);
            q
        };
        let mut runs = Vec::new();
        for kind in [
            SchedulerKind::Wheel,
            SchedulerKind::Wheel,
            SchedulerKind::Heap,
        ] {
            let mut w = Recorder { seen: vec![] };
            run_until_idle(&mut w, &mut build(kind));
            runs.push(w.seen);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2], "wheel and heap must agree");
    }

    #[test]
    fn far_future_and_equal_time_bursts() {
        // Crosses several wheel levels, including the top one.
        let times: Vec<u64> = vec![
            0,
            1,
            1023,
            1024,
            1025,
            1 << 16,
            (1 << 16) + 1,
            3_600_000_000_000,  // 1 h
            86_400_000_000_000, // 24 h
            86_400_000_000_000, // equal-time burst far out
            u64::MAX >> 1,      // deep into the top level
            u64::MAX - 1,
        ];
        let mut wheel = EventQueue::with_kind(SchedulerKind::Wheel);
        let mut heap = EventQueue::with_kind(SchedulerKind::Heap);
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(t), i as u32);
            heap.schedule(SimTime::from_nanos(t), i as u32);
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn scheduling_into_the_past_fires_immediately() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(10), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(1));
            // Cursor (wheel) is now at t=10 s; a smaller time must still
            // surface, first.
            q.schedule(SimTime::from_secs(20), 2);
            q.schedule(SimTime::from_secs(5), 3);
            assert_eq!(q.pop().map(|(_, e)| e), Some(3), "{}", kind.label());
            assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        }
    }

    /// Layout contract of the pooled wheel: a slot stores (and the
    /// cascade/sort churn moves) only a 24-byte key — payloads stay in
    /// the slab regardless of how big the event type is. This is what
    /// keeps the scheduler's per-event cost independent of `E`.
    #[test]
    fn wheel_slot_entries_stay_small() {
        assert_eq!(WheelQueue::<u64>::slot_entry_size(), 24);
        // The key size must not scale with the payload.
        assert_eq!(
            WheelQueue::<[u8; 512]>::slot_entry_size(),
            WheelQueue::<u8>::slot_entry_size()
        );
    }

    /// The slab recycles cells LIFO: steady-state schedule/pop traffic
    /// reuses the same hot cells instead of growing the slab.
    #[test]
    fn slab_cells_are_recycled() {
        let mut q: WheelQueue<u64> = WheelQueue::new();
        for round in 0..100u64 {
            q.schedule(SimTime::from_millis(round + 1), round);
            let _ = q.pop();
        }
        assert!(
            q.payloads.len() <= 2,
            "steady-state churn grew the slab to {} cells",
            q.payloads.len()
        );
    }

    /// Regression for the slab-index truncation bug: growing the slab past
    /// `u32::MAX` cells must panic instead of wrapping the index (which
    /// would alias cell 0 and corrupt the queue silently). The boundary is
    /// checked on the conversion helper directly — allocating 4 billion
    /// real cells in a test is not an option.
    #[test]
    fn slab_index_is_exact_up_to_u32_max() {
        assert_eq!(slab_index(0), 0);
        assert_eq!(slab_index(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeded u32 capacity")]
    #[cfg(target_pointer_width = "64")]
    fn slab_index_past_u32_panics_instead_of_wrapping() {
        let _ = slab_index(u32::MAX as usize + 1);
    }

    #[test]
    fn wheel_interleaves_sub_tick_times_exactly() {
        // Two events inside one tick (2^TICK_SHIFT ns), scheduled while
        // the first is being handled: order must be by exact nanosecond.
        let mut q = EventQueue::with_kind(SchedulerKind::Wheel);
        q.schedule(SimTime::from_nanos(2000), 1);
        q.schedule(SimTime::from_nanos(2500), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (2000, 1));
        q.schedule(SimTime::from_nanos(2100), 3);
        assert_eq!(q.pop().map(|(t, e)| (t.as_nanos(), e)), Some((2100, 3)));
        assert_eq!(q.pop().map(|(t, e)| (t.as_nanos(), e)), Some((2500, 2)));
    }
}
