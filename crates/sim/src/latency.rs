//! Delivery-latency model for the four logical channel classes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// The logical channel a message travels on (§III-B.3 plus the data path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelClass {
    /// Edge-to-edge tunnelled data traffic over the IP underlay (one
    /// logical hop thanks to core–edge separation).
    Data,
    /// Controller ⟷ switch control link (OpenFlow channel).
    Control,
    /// Controller ⟷ designated switch state link.
    State,
    /// Intra-group peer link.
    Peer,
    /// Controller ⟷ controller peer link (the `lazyctrl-cluster` layer:
    /// C-LIB replication, ownership transfers, controller heartbeats).
    /// Cluster members live in the same management pod, so this is faster
    /// than a control link but slower than the switch-local peer mesh.
    CtrlPeer,
}

impl ChannelClass {
    /// Number of channel classes (for dense per-class tables).
    pub const COUNT: usize = 5;

    /// Every channel class, in dense-index order.
    pub const ALL: [ChannelClass; Self::COUNT] = [
        ChannelClass::Data,
        ChannelClass::Control,
        ChannelClass::State,
        ChannelClass::Peer,
        ChannelClass::CtrlPeer,
    ];

    /// Dense index of this class in `0..COUNT`.
    pub const fn index(self) -> usize {
        match self {
            ChannelClass::Data => 0,
            ChannelClass::Control => 1,
            ChannelClass::State => 2,
            ChannelClass::Peer => 3,
            ChannelClass::CtrlPeer => 4,
        }
    }
}

/// Base one-way latencies per channel class, with optional multiplicative
/// jitter.
///
/// Defaults are calibrated to the paper's testbed numbers: data-plane
/// operations "very fast ... processed at line speed" with intra-group
/// cold-cache forwarding at 0.83 ms total, and a controller round trip
/// costing several milliseconds more (15.06 ms OpenFlow cold-cache
/// including ARP flooding and rule installation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way datapath latency between two edge switches.
    pub data: SimDuration,
    /// One-way control link latency.
    pub control: SimDuration,
    /// One-way state link latency.
    pub state: SimDuration,
    /// One-way peer link latency.
    pub peer: SimDuration,
    /// One-way controller-to-controller peer link latency.
    pub ctrl_peer: SimDuration,
    /// Uniform jitter amplitude as a fraction of the base latency
    /// (0.1 = ±10%). Zero for fully deterministic latencies.
    pub jitter_frac: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            // GigE edge / 10GigE mesh numbers from the prototype setup.
            data: SimDuration::from_micros(120),
            control: SimDuration::from_micros(900),
            state: SimDuration::from_micros(900),
            peer: SimDuration::from_micros(150),
            ctrl_peer: SimDuration::from_micros(400),
            jitter_frac: 0.05,
        }
    }
}

impl LatencyModel {
    /// A jitter-free copy (for byte-exact latency assertions in tests).
    pub fn deterministic(mut self) -> Self {
        self.jitter_frac = 0.0;
        self
    }

    /// Base latency for a class.
    pub fn base(&self, class: ChannelClass) -> SimDuration {
        match class {
            ChannelClass::Data => self.data,
            ChannelClass::Control => self.control,
            ChannelClass::State => self.state,
            ChannelClass::Peer => self.peer,
            ChannelClass::CtrlPeer => self.ctrl_peer,
        }
    }

    /// Multiplies the base latency of one channel class by `factor`
    /// (fault injection: a congested control network, a degraded
    /// underlay). Factors compose multiplicatively, so degrading by `f`
    /// and later by `1/f` restores the original latency up to rounding.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite, zero or negative factors.
    pub fn degrade(&mut self, class: ChannelClass, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "degrade factor {factor} must be finite and positive"
        );
        let slot = match class {
            ChannelClass::Data => &mut self.data,
            ChannelClass::Control => &mut self.control,
            ChannelClass::State => &mut self.state,
            ChannelClass::Peer => &mut self.peer,
            ChannelClass::CtrlPeer => &mut self.ctrl_peer,
        };
        *slot = slot.mul_f64(factor);
    }

    /// Validates the jitter configuration.
    ///
    /// # Panics
    ///
    /// Panics if `jitter_frac` is negative, non-finite, or ≥ 1. Called
    /// once at world construction so [`sample`](LatencyModel::sample)
    /// stays assert-free on the per-message hot path.
    pub fn validate(&self) {
        assert!(
            self.jitter_frac.is_finite() && (0.0..1.0).contains(&self.jitter_frac),
            "jitter_frac {} out of [0,1)",
            self.jitter_frac
        );
    }

    /// The guaranteed minimum delivery latency across `classes` — the
    /// conservative lookahead a partitioned simulation may assume for
    /// cross-partition messages: `min(base × (1 − jitter))` over the
    /// classes whose traffic can cross a partition boundary. A sharded
    /// run whose synchronization window does not exceed this floor never
    /// defers a cross-partition arrival (exact event timing); note the
    /// floor shrinks if a fault plan later degrades a class *downward*
    /// (factor < 1), so callers pinning a window at split time should
    /// treat such plans as relaxing exactness.
    pub fn lookahead_floor(&self, classes: &[ChannelClass]) -> SimDuration {
        classes
            .iter()
            .map(|&c| self.base(c).mul_f64(1.0 - self.jitter_frac))
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Samples the delivery latency for one message.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `jitter_frac` is invalid — callers
    /// [`validate`](LatencyModel::validate) once up front.
    pub fn sample<R: Rng>(&self, class: ChannelClass, rng: &mut R) -> SimDuration {
        debug_assert!(self.jitter_frac.is_finite() && (0.0..1.0).contains(&self.jitter_frac));
        let base = self.base(class);
        if self.jitter_frac == 0.0 {
            return base;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        base.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_model_returns_base() {
        let m = LatencyModel::default().deterministic();
        let mut rng = StdRng::seed_from_u64(1);
        for class in [
            ChannelClass::Data,
            ChannelClass::Control,
            ChannelClass::State,
            ChannelClass::Peer,
            ChannelClass::CtrlPeer,
        ] {
            assert_eq!(m.sample(class, &mut rng), m.base(class));
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = LatencyModel {
            jitter_frac: 0.1,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let base = m.base(ChannelClass::Control).as_nanos() as f64;
        for _ in 0..1000 {
            let s = m.sample(ChannelClass::Control, &mut rng).as_nanos() as f64;
            assert!(
                s >= base * 0.9 - 1.0 && s <= base * 1.1 + 1.0,
                "sample {s} out of band"
            );
        }
    }

    #[test]
    fn control_is_slower_than_data_by_default() {
        let m = LatencyModel::default();
        assert!(m.base(ChannelClass::Control) > m.base(ChannelClass::Data));
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let m = LatencyModel::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                m.sample(ChannelClass::Peer, &mut a),
                m.sample(ChannelClass::Peer, &mut b)
            );
        }
    }

    #[test]
    fn degrade_scales_one_class_and_composes() {
        let mut m = LatencyModel::default();
        let base = m.base(ChannelClass::Control);
        m.degrade(ChannelClass::Control, 10.0);
        assert_eq!(m.base(ChannelClass::Control), base.mul_f64(10.0));
        assert_eq!(
            m.base(ChannelClass::Data),
            LatencyModel::default().base(ChannelClass::Data),
            "other classes untouched"
        );
        m.degrade(ChannelClass::Control, 0.1);
        assert_eq!(m.base(ChannelClass::Control), base);
    }

    #[test]
    fn lookahead_floor_is_min_base_minus_jitter() {
        let m = LatencyModel {
            jitter_frac: 0.05,
            ..LatencyModel::default()
        };
        let classes = [
            ChannelClass::Data,
            ChannelClass::Control,
            ChannelClass::State,
            ChannelClass::Peer,
        ];
        let floor = m.lookahead_floor(&classes);
        // Data (120 µs) is the fastest cross class; −5% jitter → 114 µs.
        assert_eq!(floor, SimDuration::from_micros(120).mul_f64(0.95));
        // No sample can undercut the floor.
        let mut rng = StdRng::seed_from_u64(3);
        for class in classes {
            for _ in 0..200 {
                assert!(m.sample(class, &mut rng) >= floor);
            }
        }
        assert_eq!(m.lookahead_floor(&[]), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn degrade_rejects_nan() {
        LatencyModel::default().degrade(ChannelClass::Control, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn degrade_rejects_negative() {
        LatencyModel::default().degrade(ChannelClass::Control, -1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn degrade_rejects_infinite() {
        LatencyModel::default().degrade(ChannelClass::Control, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn bad_jitter_panics() {
        LatencyModel {
            jitter_frac: 1.5,
            ..LatencyModel::default()
        }
        .validate();
    }
}
