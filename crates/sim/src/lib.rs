//! Deterministic discrete-event simulation kernel for LazyCtrl experiments.
//!
//! The paper evaluated on a physical testbed (6 Pronto switches, 24 servers,
//! 272 virtual Open vSwitch instances). This crate is the substitution for
//! that testbed (see `DESIGN.md`): a virtual-time event simulator with
//!
//! * [`SimTime`]/[`SimDuration`] — nanosecond virtual clock;
//! * [`EventQueue`]/[`Scheduler`]/[`run`] — the kernel: a total order over
//!   events with deterministic tie-breaking, and a driver loop over a
//!   user-provided [`World`]. Two interchangeable backends implement the
//!   order ([`SchedulerKind`]): a hierarchical timing wheel (near-O(1),
//!   the default) and the original binary heap, kept as the
//!   differential-testing reference;
//! * [`LatencyModel`] — per-channel-class delivery latencies (data path,
//!   control link, state link, peer link) with optional deterministic
//!   jitter;
//! * [`BandwidthModel`] — per-class link capacities pricing *load*:
//!   closed-form serialization + queueing delay from message size and
//!   per-link backlog, with no RNG draws;
//! * [`LinkState`] — administrative up/down and loss injection per logical
//!   link, the substrate for the failover experiments (§III-E);
//! * [`MetricsSink`] — counters, time-bucketed series (the paper's per-2h
//!   workload plots) and latency histograms.
//!
//! Determinism: given the same seed and inputs, every run produces
//! bit-identical results. Ties in event time are broken by insertion order.
//!
//! # Example
//!
//! ```
//! use lazyctrl_sim::{run, EventQueue, Scheduler, SimDuration, SimTime, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<'_, Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.schedule_in(now, SimDuration::from_millis(100), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: 0 };
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO, Ev::Tick);
//! let end = run(&mut world, &mut queue, SimTime::from_secs(60));
//! assert_eq!(world.fired, 10);
//! assert_eq!(end, SimTime::from_millis(900));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod event;
mod latency;
mod link;
mod metrics;
mod shard;
mod time;

pub use bandwidth::BandwidthModel;
pub use event::{
    run, run_until_idle, EventQueue, HeapQueue, Scheduler, SchedulerKind, WheelQueue, World,
};
pub use latency::{ChannelClass, LatencyModel};
pub use link::{LinkId, LinkState};
pub use metrics::{Histogram, Log2Histogram, MetricsSink, TimeSeries, LOG2_BUCKETS};
pub use shard::{run_sharded, Outbox, ShardOpts, ShardStats, ShardWorld};
pub use time::{SimDuration, SimTime};
