//! Administrative link state and loss injection.
//!
//! The failover design (§III-E) infers failures from *where keep-alives
//! stop arriving* (Table I). This module gives experiments a switchboard to
//! take individual logical links up/down and to inject probabilistic loss,
//! so those inference rules can be exercised.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ChannelClass;

/// Side marker for nodes listed in no partition island: they remain
/// reachable from every side.
const UNLISTED_SIDE: u16 = u16::MAX;

/// The active network partition: a side assignment per listed node.
///
/// Nodes listed in different islands cannot exchange messages in either
/// direction; a node listed in no island reaches (and is reached by)
/// everyone. The per-delivery check is an array read for dense node ids
/// and a `BTreeMap` probe only for the reserved high-id range (the
/// cluster's controller pseudo-switches), and it consumes no randomness —
/// partitioned drops are deterministic, unlike probabilistic loss.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PartitionMap {
    /// Side per dense node id (`UNLISTED_SIDE` = not in any island).
    dense: Vec<u16>,
    /// Sides for node ids ≥ [`DENSE_NODE_LIMIT`].
    high: BTreeMap<u32, u16>,
}

impl PartitionMap {
    fn from_groups(groups: &[Vec<u32>]) -> Self {
        let mut map = PartitionMap::default();
        for (side, group) in groups.iter().enumerate() {
            for &node in group {
                if node < DENSE_NODE_LIMIT {
                    let i = node as usize;
                    if i >= map.dense.len() {
                        map.dense.resize(i + 1, UNLISTED_SIDE);
                    }
                    map.dense[i] = side as u16;
                } else {
                    map.high.insert(node, side as u16);
                }
            }
        }
        map
    }

    #[inline]
    fn side_of(&self, node: u32) -> u16 {
        let i = node as usize;
        if i < self.dense.len() {
            self.dense[i]
        } else if node >= DENSE_NODE_LIMIT {
            self.high.get(&node).copied().unwrap_or(UNLISTED_SIDE)
        } else {
            UNLISTED_SIDE
        }
    }

    #[inline]
    fn reachable(&self, a: u32, b: u32) -> bool {
        let sa = self.side_of(a);
        if sa == UNLISTED_SIDE {
            return true;
        }
        let sb = self.side_of(b);
        sb == UNLISTED_SIDE || sa == sb
    }
}

/// Node ids below this are tracked in a dense `Vec<bool>`; ids at or
/// above it (the controller sentinel `u32::MAX` and the cluster's
/// pseudo-switch ids near it) fall back to a set that stays empty in
/// practice. Topology node ids are small and dense, so the per-delivery
/// up/down check is an array read, not a hash.
const DENSE_NODE_LIMIT: u32 = 1 << 20;

/// Identifies one directed logical link between two nodes on a channel
/// class. Node ids are the caller's (the core crate uses switch ids, with a
/// reserved id for the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Channel class.
    pub class: ChannelClass,
}

impl LinkId {
    /// Creates a link id.
    pub fn new(from: u32, to: u32, class: ChannelClass) -> Self {
        LinkId { from, to, class }
    }

    /// The same link in the opposite direction.
    pub fn reversed(self) -> Self {
        LinkId {
            from: self.to,
            to: self.from,
            class: self.class,
        }
    }
}

/// Per-link administrative state: up/down plus a loss probability.
///
/// Links default to *up* with zero loss; only overrides are stored, and
/// the per-delivery fast path is hash-free: node up/down is a dense
/// bitset indexed by id, class-wide loss is a fixed array, and the
/// per-link override maps are consulted only when non-empty (they are
/// empty in every run that does not inject link faults).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkState {
    down: HashMap<LinkId, bool>,
    loss: HashMap<LinkId, f64>,
    /// Loss probability applied to *every* link of a channel class (fault
    /// injection: a degraded control network, a lossy underlay). Composes
    /// with per-link loss: a message survives only if it dodges both.
    /// Indexed by [`ChannelClass::index`]; `0.0` = no loss.
    class_loss: [f64; ChannelClass::COUNT],
    /// Nodes that are down drop everything to/from them (dense, indexed
    /// by node id; grows on demand). Nodes beyond the vector are up.
    node_down: Vec<bool>,
    /// Down nodes with ids ≥ [`DENSE_NODE_LIMIT`] (reserved sentinel ids);
    /// empty in practice.
    node_down_high: BTreeSet<u32>,
    /// The network partition in force, if any. `None` (the norm) keeps
    /// the delivery fast path to a single branch.
    partition: Option<PartitionMap>,
}

impl LinkState {
    /// Creates an all-up switchboard.
    pub fn new() -> Self {
        LinkState::default()
    }

    /// Takes a directed link down or up.
    pub fn set_link_down(&mut self, link: LinkId, down: bool) {
        if down {
            self.down.insert(link, true);
        } else {
            self.down.remove(&link);
        }
    }

    /// Takes both directions of a link down or up.
    pub fn set_link_down_bidir(&mut self, link: LinkId, down: bool) {
        self.set_link_down(link, down);
        self.set_link_down(link.reversed(), down);
    }

    /// Takes a node down or up (a down node loses all its links).
    pub fn set_node_down(&mut self, node: u32, down: bool) {
        if node < DENSE_NODE_LIMIT {
            let i = node as usize;
            if i >= self.node_down.len() {
                if !down {
                    return; // already up
                }
                self.node_down.resize(i + 1, false);
            }
            self.node_down[i] = down;
        } else if down {
            self.node_down_high.insert(node);
        } else {
            self.node_down_high.remove(&node);
        }
    }

    /// Sets a loss probability for a directed link.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is finite and in `[0, 1]` (NaN is rejected
    /// explicitly — a NaN probability would silently disable loss in
    /// comparisons downstream).
    pub fn set_loss(&mut self, link: LinkId, p: f64) {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "loss probability {p} out of [0,1]"
        );
        if p == 0.0 {
            self.loss.remove(&link);
        } else {
            self.loss.insert(link, p);
        }
    }

    /// Sets the loss probability applied to every link of `class`
    /// (0 clears the override).
    ///
    /// # Panics
    ///
    /// Panics unless `p` is finite and in `[0, 1]` (NaN rejected).
    pub fn set_class_loss(&mut self, class: ChannelClass, p: f64) {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "loss probability {p} out of [0,1]"
        );
        self.class_loss[class.index()] = p;
    }

    /// The class-wide loss probability currently in force for `class`.
    pub fn class_loss(&self, class: ChannelClass) -> f64 {
        self.class_loss[class.index()]
    }

    /// Splits the network into the given islands, replacing any partition
    /// already in force (see [`LinkState::reachable`] for the semantics).
    pub fn set_partition(&mut self, groups: &[Vec<u32>]) {
        self.partition = Some(PartitionMap::from_groups(groups));
    }

    /// Heals the active partition; full reachability returns.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// True if a partition is currently in force.
    pub fn partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// True if nodes `a` and `b` can currently exchange messages as far
    /// as the partition state is concerned: no partition active, the two
    /// nodes sit in the same island, or at least one of them is listed in
    /// no island. Orthogonal to node up/down and loss.
    #[inline]
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        match &self.partition {
            None => true,
            Some(p) => p.reachable(a, b),
        }
    }

    /// True if the link is administratively up, both endpoints are up,
    /// and no partition separates them.
    pub fn is_up(&self, link: LinkId) -> bool {
        (self.down.is_empty() || !self.down.get(&link).copied().unwrap_or(false))
            && self.is_node_up(link.from)
            && self.is_node_up(link.to)
            && self.reachable(link.from, link.to)
    }

    /// True if the node is up.
    #[inline]
    pub fn is_node_up(&self, node: u32) -> bool {
        let i = node as usize;
        if i < self.node_down.len() {
            return !self.node_down[i];
        }
        if node >= DENSE_NODE_LIMIT && !self.node_down_high.is_empty() {
            return !self.node_down_high.contains(&node);
        }
        true
    }

    /// Decides whether one message on `link` is delivered: checks admin
    /// state, then samples loss.
    ///
    /// RNG discipline: a loss probability is sampled if and only if it is
    /// non-zero, so configurations without loss consume no randomness —
    /// runs stay bit-identical when loss injection is merely absent
    /// rather than disabled.
    #[inline]
    pub fn delivers<R: Rng>(&self, link: LinkId, rng: &mut R) -> bool {
        if !self.is_up(link) {
            return false;
        }
        if !self.loss.is_empty() {
            if let Some(&p) = self.loss.get(&link) {
                if rng.gen_bool(p) {
                    return false;
                }
            }
        }
        let p = self.class_loss[link.class.index()];
        p == 0.0 || !rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(a: u32, b: u32) -> LinkId {
        LinkId::new(a, b, ChannelClass::Peer)
    }

    #[test]
    fn links_default_up() {
        let s = LinkState::new();
        assert!(s.is_up(l(1, 2)));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.delivers(l(1, 2), &mut rng));
    }

    #[test]
    fn down_links_drop() {
        let mut s = LinkState::new();
        s.set_link_down(l(1, 2), true);
        assert!(!s.is_up(l(1, 2)));
        assert!(s.is_up(l(2, 1)), "reverse direction unaffected");
        s.set_link_down(l(1, 2), false);
        assert!(s.is_up(l(1, 2)));
    }

    #[test]
    fn bidir_helper_hits_both_directions() {
        let mut s = LinkState::new();
        s.set_link_down_bidir(l(3, 4), true);
        assert!(!s.is_up(l(3, 4)));
        assert!(!s.is_up(l(4, 3)));
    }

    #[test]
    fn node_down_kills_all_its_links() {
        let mut s = LinkState::new();
        s.set_node_down(7, true);
        assert!(!s.is_up(l(7, 1)));
        assert!(!s.is_up(l(1, 7)));
        assert!(s.is_up(l(1, 2)));
        assert!(!s.is_node_up(7));
        s.set_node_down(7, false);
        assert!(s.is_up(l(7, 1)));
    }

    #[test]
    fn loss_probability_applies() {
        let mut s = LinkState::new();
        s.set_loss(l(1, 2), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!s.delivers(l(1, 2), &mut rng));
        s.set_loss(l(1, 2), 0.0);
        assert!(s.delivers(l(1, 2), &mut rng));
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let mut s = LinkState::new();
        s.set_loss(l(1, 2), 0.3);
        let mut rng = StdRng::seed_from_u64(4);
        let delivered = (0..10_000)
            .filter(|_| s.delivers(l(1, 2), &mut rng))
            .count();
        assert!(
            (6300..7700).contains(&delivered),
            "delivered {delivered}/10000"
        );
    }

    #[test]
    fn class_loss_hits_every_link_of_the_class() {
        let mut s = LinkState::new();
        s.set_class_loss(ChannelClass::Peer, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!s.delivers(l(1, 2), &mut rng));
        assert!(!s.delivers(l(5, 6), &mut rng));
        assert!(s.delivers(LinkId::new(1, 2, ChannelClass::Control), &mut rng));
        assert_eq!(s.class_loss(ChannelClass::Peer), 1.0);
        s.set_class_loss(ChannelClass::Peer, 0.0);
        assert!(s.delivers(l(1, 2), &mut rng));
        assert_eq!(s.class_loss(ChannelClass::Peer), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_loss_panics() {
        let mut s = LinkState::new();
        s.set_loss(l(1, 2), 1.5);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn nan_loss_panics() {
        let mut s = LinkState::new();
        s.set_loss(l(1, 2), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn negative_loss_panics() {
        let mut s = LinkState::new();
        s.set_loss(l(1, 2), -0.1);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn nan_class_loss_panics() {
        let mut s = LinkState::new();
        s.set_class_loss(ChannelClass::Control, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_class_loss_panics() {
        let mut s = LinkState::new();
        s.set_class_loss(ChannelClass::Control, 2.0);
    }

    #[test]
    fn partition_severs_cross_island_pairs_only() {
        let mut s = LinkState::new();
        let ctrl = 0xC000_0001u32; // high-range pseudo id
        s.set_partition(&[vec![1, 2], vec![3, ctrl]]);
        assert!(s.partitioned());
        // Same island: fine, both directions.
        assert!(s.is_up(l(1, 2)));
        assert!(s.is_up(LinkId::new(3, ctrl, ChannelClass::Control)));
        // Cross island: severed, both directions, every class.
        assert!(!s.is_up(l(1, 3)));
        assert!(!s.is_up(l(3, 1)));
        assert!(!s.is_up(LinkId::new(1, ctrl, ChannelClass::Control)));
        // Unlisted nodes reach everyone.
        assert!(s.is_up(l(1, 9)));
        assert!(s.is_up(l(9, 3)));
        assert!(s.is_up(LinkId::new(9, ctrl, ChannelClass::Control)));
        // Partition drops consume no randomness.
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!s.delivers(l(1, 3), &mut rng));
        let mut fresh = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
        s.heal_partition();
        assert!(!s.partitioned());
        assert!(s.is_up(l(1, 3)));
    }

    #[test]
    fn new_partition_replaces_old() {
        let mut s = LinkState::new();
        s.set_partition(&[vec![1], vec![2]]);
        assert!(!s.is_up(l(1, 2)));
        s.set_partition(&[vec![1, 2], vec![3]]);
        assert!(s.is_up(l(1, 2)));
        assert!(!s.is_up(l(2, 3)));
    }

    #[test]
    fn partition_composes_with_node_down_and_loss() {
        let mut s = LinkState::new();
        s.set_partition(&[vec![1, 2], vec![3]]);
        s.set_node_down(2, true);
        assert!(!s.is_up(l(1, 2)), "down node loses intra-island links too");
        s.set_class_loss(ChannelClass::Peer, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!s.delivers(l(1, 9), &mut rng), "loss still applies");
    }

    #[test]
    fn class_distinguishes_links() {
        let mut s = LinkState::new();
        s.set_link_down(LinkId::new(1, 2, ChannelClass::Control), true);
        assert!(s.is_up(LinkId::new(1, 2, ChannelClass::Peer)));
        assert!(!s.is_up(LinkId::new(1, 2, ChannelClass::Control)));
    }
}
