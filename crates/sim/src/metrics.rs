//! Measurement plumbing: counters, time-bucketed series and latency
//! histograms.
//!
//! The paper's evaluation reports controller workload in requests/sec per
//! 2-hour bucket (Fig. 7), grouping updates per hour (Fig. 8), and average
//! forwarding latency per 2-hour bucket (Fig. 9). [`TimeSeries`] produces
//! exactly those shapes; [`Histogram`] backs the cold-cache latency numbers.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// A time series of accumulated values in fixed-width buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket_width: SimDuration,
    buckets: BTreeMap<u64, f64>,
    counts: BTreeMap<u64, u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics on a zero bucket width.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(bucket_width.as_nanos() > 0, "bucket width must be positive");
        TimeSeries {
            bucket_width,
            buckets: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.bucket_width.as_nanos()
    }

    /// Adds `value` to the bucket containing `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let b = self.bucket_of(at);
        *self.buckets.entry(b).or_insert(0.0) += value;
        *self.counts.entry(b).or_insert(0) += 1;
    }

    /// Convenience: records a single occurrence (value 1).
    pub fn increment(&mut self, at: SimTime) {
        self.record(at, 1.0);
    }

    /// Sum accumulated in the bucket containing `at`.
    pub fn bucket_sum(&self, at: SimTime) -> f64 {
        self.buckets
            .get(&self.bucket_of(at))
            .copied()
            .unwrap_or(0.0)
    }

    /// All buckets as `(bucket_start_time, sum)` in time order, including
    /// empty gaps between the first and last non-empty bucket.
    pub fn sums(&self) -> Vec<(SimTime, f64)> {
        let (Some(&first), Some(&last)) =
            (self.buckets.keys().next(), self.buckets.keys().next_back())
        else {
            return Vec::new();
        };
        (first..=last)
            .map(|b| {
                (
                    SimTime::from_nanos(b * self.bucket_width.as_nanos()),
                    self.buckets.get(&b).copied().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// All buckets as `(bucket_start_time, sum / bucket_seconds)` — i.e.
    /// rates, the unit of Fig. 7 (requests per second).
    pub fn rates(&self) -> Vec<(SimTime, f64)> {
        let secs = self.bucket_width.as_secs_f64();
        self.sums()
            .into_iter()
            .map(|(t, s)| (t, s / secs))
            .collect()
    }

    /// Mean recorded value per bucket as `(bucket_start_time, mean)` —
    /// the unit of Fig. 9 (average latency per bucket).
    pub fn means(&self) -> Vec<(SimTime, f64)> {
        self.sums()
            .into_iter()
            .map(|(t, s)| {
                let b = self.bucket_of(t);
                let n = self.counts.get(&b).copied().unwrap_or(0);
                (t, if n == 0 { 0.0 } else { s / n as f64 })
            })
            .collect()
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }
}

/// A simple exact histogram of f64 samples (stores all samples; fine at
/// simulation scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().cloned().reduce(f64::max)
    }
}

/// A bundle of named metrics for one experiment run.
///
/// Metric names are interned `&'static str` literals: recording a counter
/// is a lookup in a small sorted table keyed by string identity (pointer
/// fast path) — no per-event `String` allocation, no owned-key `BTreeMap`.
/// This matters because the hot simulation loop touches several counters
/// per event.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSink {
    /// Sorted by name; small (tens of entries), so binary search beats
    /// hashing and the static keys make comparisons pointer-equality in
    /// the common case.
    counters: Vec<(&'static str, u64)>,
    series: BTreeMap<&'static str, TimeSeries>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Adds `n` to a named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        match self.counters.binary_search_by(|(k, _)| (*k).cmp(name)) {
            Ok(i) => self.counters[i].1 += n,
            Err(i) => self.counters.insert(i, (name, n)),
        }
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| (*k).cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Gets (or creates) a named time series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different bucket width.
    pub fn series_mut(&mut self, name: &'static str, bucket_width: SimDuration) -> &mut TimeSeries {
        let s = self
            .series
            .entry(name)
            .or_insert_with(|| TimeSeries::new(bucket_width));
        assert_eq!(
            s.bucket_width, bucket_width,
            "series {name} re-opened with different bucket width"
        );
        s
    }

    /// Reads a named series.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Gets (or creates) a named histogram.
    pub fn histogram_mut(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Reads a named histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counter names and values, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|&(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_buckets_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.increment(SimTime::from_secs(1));
        ts.increment(SimTime::from_secs(9));
        ts.increment(SimTime::from_secs(25));
        let sums = ts.sums();
        assert_eq!(sums.len(), 3); // buckets 0, 1 (gap), 2
        assert_eq!(sums[0], (SimTime::ZERO, 2.0));
        assert_eq!(sums[1], (SimTime::from_secs(10), 0.0));
        assert_eq!(sums[2], (SimTime::from_secs(20), 1.0));
        let rates = ts.rates();
        assert_eq!(rates[0].1, 0.2);
        assert_eq!(ts.total(), 3.0);
        assert_eq!(ts.bucket_sum(SimTime::from_secs(5)), 2.0);
    }

    #[test]
    fn series_means() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_millis(100), 10.0);
        ts.record(SimTime::from_millis(200), 20.0);
        let means = ts.means();
        assert_eq!(means, vec![(SimTime::ZERO, 15.0)]);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(SimDuration::from_secs(1));
        assert!(ts.sums().is_empty());
        assert_eq!(ts.total(), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn nan_rejected() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn sink_round_trip() {
        let mut sink = MetricsSink::new();
        sink.count("packet_in", 3);
        sink.count("packet_in", 2);
        assert_eq!(sink.counter("packet_in"), 5);
        assert_eq!(sink.counter("missing"), 0);

        sink.series_mut("workload", SimDuration::from_secs(2))
            .increment(SimTime::from_secs(1));
        assert_eq!(sink.series("workload").unwrap().total(), 1.0);

        sink.histogram_mut("latency").record(0.8);
        assert_eq!(sink.histogram("latency").unwrap().len(), 1);

        let names: Vec<&str> = sink.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["packet_in"]);
    }

    #[test]
    #[should_panic(expected = "different bucket width")]
    fn series_width_conflict_panics() {
        let mut sink = MetricsSink::new();
        sink.series_mut("x", SimDuration::from_secs(1));
        sink.series_mut("x", SimDuration::from_secs(2));
    }
}
