//! Measurement plumbing: counters, time-bucketed series and latency
//! histograms.
//!
//! The paper's evaluation reports controller workload in requests/sec per
//! 2-hour bucket (Fig. 7), grouping updates per hour (Fig. 8), and average
//! forwarding latency per 2-hour bucket (Fig. 9). [`TimeSeries`] produces
//! exactly those shapes; [`Histogram`] backs the cold-cache latency numbers.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// A time series of accumulated values in fixed-width buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket_width: SimDuration,
    buckets: BTreeMap<u64, f64>,
    counts: BTreeMap<u64, u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics on a zero bucket width.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(bucket_width.as_nanos() > 0, "bucket width must be positive");
        TimeSeries {
            bucket_width,
            buckets: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.bucket_width.as_nanos()
    }

    /// Adds `value` to the bucket containing `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let b = self.bucket_of(at);
        *self.buckets.entry(b).or_insert(0.0) += value;
        *self.counts.entry(b).or_insert(0) += 1;
    }

    /// Convenience: records a single occurrence (value 1).
    pub fn increment(&mut self, at: SimTime) {
        self.record(at, 1.0);
    }

    /// Sum accumulated in the bucket containing `at`.
    pub fn bucket_sum(&self, at: SimTime) -> f64 {
        self.buckets
            .get(&self.bucket_of(at))
            .copied()
            .unwrap_or(0.0)
    }

    /// All buckets as `(bucket_start_time, sum)` in time order, including
    /// empty gaps between the first and last non-empty bucket.
    pub fn sums(&self) -> Vec<(SimTime, f64)> {
        let (Some(&first), Some(&last)) =
            (self.buckets.keys().next(), self.buckets.keys().next_back())
        else {
            return Vec::new();
        };
        (first..=last)
            .map(|b| {
                (
                    SimTime::from_nanos(b * self.bucket_width.as_nanos()),
                    self.buckets.get(&b).copied().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// All buckets as `(bucket_start_time, sum / bucket_seconds)` — i.e.
    /// rates, the unit of Fig. 7 (requests per second).
    pub fn rates(&self) -> Vec<(SimTime, f64)> {
        let secs = self.bucket_width.as_secs_f64();
        self.sums()
            .into_iter()
            .map(|(t, s)| (t, s / secs))
            .collect()
    }

    /// Mean recorded value per bucket as `(bucket_start_time, mean)` —
    /// the unit of Fig. 9 (average latency per bucket).
    pub fn means(&self) -> Vec<(SimTime, f64)> {
        self.sums()
            .into_iter()
            .map(|(t, s)| {
                let b = self.bucket_of(t);
                let n = self.counts.get(&b).copied().unwrap_or(0);
                (t, if n == 0 { 0.0 } else { s / n as f64 })
            })
            .collect()
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }

    /// Folds another series into this one bucket-by-bucket (used when
    /// merging per-partition metrics after a sharded run).
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge series with different bucket widths"
        );
        for (&b, &v) in &other.buckets {
            *self.buckets.entry(b).or_insert(0.0) += v;
        }
        for (&b, &n) in &other.counts {
            *self.counts.entry(b).or_insert(0) += n;
        }
    }
}

/// A simple exact histogram of f64 samples (stores all samples; fine at
/// simulation scale — unbounded-sample hot sites should prefer
/// [`Log2Histogram`]).
#[derive(Debug, Serialize, Deserialize, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    /// Lazily built sorted copy backing [`Histogram::quantile`]; valid iff
    /// its length equals `samples.len()` (a fresh `record` invalidates by
    /// making the lengths differ). Interior mutability keeps `quantile`
    /// callable through `&self` while repeat calls cost a binary-search
    /// index instead of a clone + `O(n log n)` sort each. A `Mutex`
    /// (never contended: uncontended lock is a single atomic) rather than
    /// a `RefCell` so sinks stay `Send + Sync` and worker threads can
    /// read quantiles without data races.
    sorted: Mutex<Vec<f64>>,
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        // The cache is derived state; a clone starts with a cold cache.
        Histogram {
            samples: self.samples.clone(),
            sorted: Mutex::new(Vec::new()),
        }
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state: identity is the recorded samples.
        self.samples == other.samples
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.samples.push(value);
        // Cheap invalidation: only clear a cache that exists (repeated
        // record bursts between quantile calls pay one branch each).
        let cache = self.sorted.get_mut().unwrap_or_else(|p| p.into_inner());
        if !cache.is_empty() {
            cache.clear();
        }
    }

    /// Appends all of `other`'s samples (sharded-run merge). Sample order
    /// is concatenation order, so merging in a fixed partition order keeps
    /// the merged histogram deterministic.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        let cache = self.sorted.get_mut().unwrap_or_else(|p| p.into_inner());
        if !cache.is_empty() {
            cache.clear();
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or `None` when empty.
    ///
    /// The samples are sorted once on the first call and the sorted copy
    /// is cached until the next [`Histogram::record`] — a quantile sweep
    /// (p50/p95/p99/max in one report) sorts once, not four times.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut cache = self.sorted.lock().unwrap_or_else(|p| p.into_inner());
        if cache.len() != self.samples.len() {
            cache.clear();
            cache.extend_from_slice(&self.samples);
            cache.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        }
        let idx = ((cache.len() - 1) as f64 * q).round() as usize;
        Some(cache[idx])
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().cloned().reduce(f64::max)
    }
}

/// Number of buckets in a [`Log2Histogram`] (power-of-two widths covering
/// `2^-32 .. 2^32`, i.e. sub-nanosecond to decades at millisecond units).
pub const LOG2_BUCKETS: usize = 64;

/// A fixed-footprint histogram with power-of-two bucket boundaries.
///
/// Where [`Histogram`] stores every sample (exact quantiles, `O(n)`
/// memory), this variant folds each sample into one of [`LOG2_BUCKETS`]
/// buckets keyed by `floor(log2(value))` — constant memory regardless of
/// how many samples arrive, which is what unbounded per-event sites (the
/// 67 M-event paper runs, the engine self-profiler's dispatch timings)
/// need. The count, sum, min and max are tracked exactly, so
/// [`Log2Histogram::mean`] is exact; quantiles are bucket-resolution
/// estimates (within a factor of 2, reported as the bucket's upper edge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Bucket index for a value: `floor(log2(v))` clamped into the bucket
    /// range, computed from the float's exponent bits (no `log2` call).
    fn bucket_of(value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        // Biased exponent of a positive f64; subnormals collapse to the
        // lowest bucket, which is where they belong anyway.
        let exp = ((value.to_bits() >> 52) & 0x7ff) as i64 - 1023;
        (exp + 32).clamp(0, LOG2_BUCKETS as i64 - 1) as usize
    }

    /// Upper edge of bucket `i` (`2^(i-31)`): every sample in the bucket
    /// is ≤ this value (modulo the clamped extremes).
    fn bucket_upper(i: usize) -> f64 {
        (2.0f64).powi(i as i32 - 31)
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated `q`-quantile (0 ≤ q ≤ 1) by nearest rank over the bucket
    /// counts, or `None` when empty. The estimate is the matched bucket's
    /// upper edge clamped into `[min, max]`, so it is exact at the
    /// extremes and within a factor of 2 in between.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one (sharded-run merge): bucket
    /// counts, count and sum add; min/max fold. Exact statistics stay
    /// exact because they are all associative.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_upper_edge, count)`, in value order —
    /// the export shape telemetry consumers read.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }
}

/// A bundle of named metrics for one experiment run.
///
/// Metric names are interned `&'static str` literals: recording a counter
/// is a lookup in a small sorted table keyed by string identity (pointer
/// fast path) — no per-event `String` allocation, no owned-key `BTreeMap`.
/// This matters because the hot simulation loop touches several counters
/// per event.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSink {
    /// Sorted by name; small (tens of entries), so binary search beats
    /// hashing and the static keys make comparisons pointer-equality in
    /// the common case.
    counters: Vec<(&'static str, u64)>,
    series: BTreeMap<&'static str, TimeSeries>,
    histograms: BTreeMap<&'static str, Histogram>,
    log2s: BTreeMap<&'static str, Log2Histogram>,
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Adds `n` to a named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        match self.counters.binary_search_by(|(k, _)| (*k).cmp(name)) {
            Ok(i) => self.counters[i].1 += n,
            Err(i) => self.counters.insert(i, (name, n)),
        }
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| (*k).cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Gets (or creates) a named time series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different bucket width.
    pub fn series_mut(&mut self, name: &'static str, bucket_width: SimDuration) -> &mut TimeSeries {
        let s = self
            .series
            .entry(name)
            .or_insert_with(|| TimeSeries::new(bucket_width));
        assert_eq!(
            s.bucket_width, bucket_width,
            "series {name} re-opened with different bucket width"
        );
        s
    }

    /// Reads a named series.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Gets (or creates) a named histogram.
    pub fn histogram_mut(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Reads a named histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Gets (or creates) a named fixed-bucket log2 histogram — the
    /// constant-memory variant for sites recording one sample per event
    /// (see [`Log2Histogram`]).
    pub fn log2_histogram_mut(&mut self, name: &'static str) -> &mut Log2Histogram {
        self.log2s.entry(name).or_default()
    }

    /// Reads a named log2 histogram.
    pub fn log2_histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.log2s.get(name)
    }

    /// Folds another sink into this one: counters add, series merge
    /// bucket-wise, exact histograms concatenate samples, log2 histograms
    /// add bucket counts. Deterministic for a fixed merge order.
    ///
    /// # Panics
    ///
    /// Panics if a shared series name has different bucket widths.
    pub fn merge(&mut self, other: &MetricsSink) {
        for &(name, v) in &other.counters {
            self.count(name, v);
        }
        for (&name, s) in &other.series {
            match self.series.get_mut(name) {
                Some(mine) => mine.merge(s),
                None => {
                    self.series.insert(name, s.clone());
                }
            }
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        for (&name, h) in &other.log2s {
            self.log2s.entry(name).or_default().merge(h);
        }
    }

    /// All counter names and values, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|&(k, v)| (k, v))
    }

    /// All named time series, sorted by name.
    pub fn all_series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(&k, v)| (k, v))
    }

    /// All named exact histograms, sorted by name.
    pub fn all_histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// All named log2 histograms, sorted by name.
    pub fn all_log2_histograms(&self) -> impl Iterator<Item = (&str, &Log2Histogram)> {
        self.log2s.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_buckets_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.increment(SimTime::from_secs(1));
        ts.increment(SimTime::from_secs(9));
        ts.increment(SimTime::from_secs(25));
        let sums = ts.sums();
        assert_eq!(sums.len(), 3); // buckets 0, 1 (gap), 2
        assert_eq!(sums[0], (SimTime::ZERO, 2.0));
        assert_eq!(sums[1], (SimTime::from_secs(10), 0.0));
        assert_eq!(sums[2], (SimTime::from_secs(20), 1.0));
        let rates = ts.rates();
        assert_eq!(rates[0].1, 0.2);
        assert_eq!(ts.total(), 3.0);
        assert_eq!(ts.bucket_sum(SimTime::from_secs(5)), 2.0);
    }

    #[test]
    fn series_means() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_millis(100), 10.0);
        ts.record(SimTime::from_millis(200), 20.0);
        let means = ts.means();
        assert_eq!(means, vec![(SimTime::ZERO, 15.0)]);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(SimDuration::from_secs(1));
        assert!(ts.sums().is_empty());
        assert_eq!(ts.total(), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn nan_rejected() {
        Histogram::new().record(f64::NAN);
    }

    /// The sorted cache must invalidate on record: a quantile read
    /// followed by more samples followed by another read sees the new
    /// samples.
    #[test]
    fn quantile_cache_invalidates_on_record() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(3.0);
        assert_eq!(h.quantile(1.0), Some(3.0));
        h.record(10.0);
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        // Equality ignores the cache: a histogram that has sorted and one
        // that has not compare equal when their samples agree.
        let mut fresh = Histogram::new();
        for v in [1.0, 3.0, 10.0] {
            fresh.record(v);
        }
        assert_eq!(h, fresh);
    }

    #[test]
    fn log2_histogram_stats() {
        let mut h = Log2Histogram::new();
        for v in [0.5, 1.0, 2.0, 4.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), Some(1007.5 / 5.0));
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(1000.0));
        assert_eq!(h.sum(), 1007.5);
        // Extremes are exact; the middle is bucket-resolution.
        assert_eq!(h.quantile(0.0), Some(0.5));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        let p50 = h.quantile(0.5).unwrap();
        assert!((2.0..=4.0).contains(&p50), "p50 estimate {p50}");
        assert_eq!(h.nonzero_buckets().map(|(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn log2_histogram_handles_edge_values() {
        let mut h = Log2Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::MAX);
        h.record(1e-300); // subnormal-adjacent tiny value
        assert_eq!(h.len(), 4);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(f64::MAX));
        assert!(h.quantile(0.5).is_some());
        let empty = Log2Histogram::new();
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn sink_round_trip() {
        let mut sink = MetricsSink::new();
        sink.count("packet_in", 3);
        sink.count("packet_in", 2);
        assert_eq!(sink.counter("packet_in"), 5);
        assert_eq!(sink.counter("missing"), 0);

        sink.series_mut("workload", SimDuration::from_secs(2))
            .increment(SimTime::from_secs(1));
        assert_eq!(sink.series("workload").unwrap().total(), 1.0);

        sink.histogram_mut("latency").record(0.8);
        assert_eq!(sink.histogram("latency").unwrap().len(), 1);

        let names: Vec<&str> = sink.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["packet_in"]);
    }

    #[test]
    #[should_panic(expected = "different bucket width")]
    fn series_width_conflict_panics() {
        let mut sink = MetricsSink::new();
        sink.series_mut("x", SimDuration::from_secs(1));
        sink.series_mut("x", SimDuration::from_secs(2));
    }

    /// Worker threads hold (and merge-threads read) metrics across thread
    /// boundaries, so every metrics type must be `Send + Sync` — the
    /// quantile cache in particular must not be `RefCell`-backed.
    #[test]
    fn metrics_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimeSeries>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<Log2Histogram>();
        assert_send_sync::<MetricsSink>();
    }

    /// A clone made while the quantile cache is warm still answers
    /// quantiles correctly (the cache is derived state, not identity).
    #[test]
    fn histogram_clone_drops_cache_but_keeps_samples() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(4.0)); // warm the cache
        let c = h.clone();
        assert_eq!(c, h);
        assert_eq!(c.quantile(0.5), Some(4.0));
        assert_eq!(c.quantile(1.0), Some(9.0));
    }

    #[test]
    fn series_merge_adds_buckets_and_counts() {
        let mut a = TimeSeries::new(SimDuration::from_secs(10));
        a.record(SimTime::from_secs(1), 2.0);
        let mut b = TimeSeries::new(SimDuration::from_secs(10));
        b.record(SimTime::from_secs(1), 3.0);
        b.record(SimTime::from_secs(25), 5.0);
        a.merge(&b);
        assert_eq!(a.bucket_sum(SimTime::from_secs(5)), 5.0);
        assert_eq!(a.bucket_sum(SimTime::from_secs(25)), 5.0);
        assert_eq!(a.total(), 10.0);
        // Means use merged counts: bucket 0 holds 2 records summing 5.
        assert_eq!(a.means()[0].1, 2.5);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn series_merge_width_conflict_panics() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        a.merge(&TimeSeries::new(SimDuration::from_secs(2)));
    }

    #[test]
    fn histogram_merge_concatenates_and_invalidates() {
        let mut a = Histogram::new();
        a.record(1.0);
        assert_eq!(a.quantile(1.0), Some(1.0)); // warm the cache
        let mut b = Histogram::new();
        b.record(7.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.quantile(1.0), Some(7.0));
        assert_eq!(a.quantile(0.0), Some(1.0));
    }

    #[test]
    fn log2_merge_matches_recording_everything_in_one() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut all = Log2Histogram::new();
        for (i, v) in [0.5, 2.0, 1000.0, 3.0, 0.25].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v)
            } else {
                b.record(*v)
            }
            all.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        let empty = Log2Histogram::new();
        let mut c = all.clone();
        c.merge(&empty);
        assert_eq!(c, all, "merging an empty histogram is a no-op");
    }

    #[test]
    fn sink_merge_folds_every_metric_kind() {
        let mut a = MetricsSink::new();
        a.count("flows", 2);
        a.series_mut("workload", SimDuration::from_secs(2))
            .increment(SimTime::from_secs(1));
        a.histogram_mut("lat").record(1.0);
        a.log2_histogram_mut("ns").record(8.0);

        let mut b = MetricsSink::new();
        b.count("flows", 3);
        b.count("drops", 1);
        b.series_mut("workload", SimDuration::from_secs(2))
            .increment(SimTime::from_secs(1));
        b.series_mut("extra", SimDuration::from_secs(1))
            .increment(SimTime::ZERO);
        b.histogram_mut("lat").record(5.0);
        b.log2_histogram_mut("ns").record(16.0);

        a.merge(&b);
        assert_eq!(a.counter("flows"), 5);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.series("workload").unwrap().total(), 2.0);
        assert_eq!(a.series("extra").unwrap().total(), 1.0);
        assert_eq!(a.histogram("lat").unwrap().len(), 2);
        assert_eq!(a.log2_histogram("ns").unwrap().len(), 2);
    }
}
