//! Conservative parallel shard executor (multi-core PDES).
//!
//! [`run_sharded`] drives a set of partitions — each a world plus its own
//! [`EventQueue`] — through synchronized epochs on a pool of worker
//! threads. The protocol is classic conservative synchronization with a
//! twist that keeps reports **bit-identical at any worker count**:
//!
//! 1. **Epoch plan.** The coordinator peeks every partition's next event
//!    time, takes the global minimum `t_min`, and sets an *exclusive*
//!    horizon `H = t_min + window` (clamped to the run horizon and the
//!    next pending global event).
//! 2. **Parallel drain.** Every partition with work before `H` is drained
//!    independently — local follow-ups go straight into the partition's
//!    own queue, cross-partition sends into a per-partition [`Outbox`].
//!    Workers claim partitions off an atomic cursor (work stealing), so
//!    stragglers don't idle the pool; rounds with a single active
//!    partition are drained inline by the coordinator with no barrier
//!    traffic at all.
//! 3. **Deterministic merge.** After a barrier, the coordinator replays
//!    outboxes in fixed (source partition, emission order) order into the
//!    destination queues. Each queue assigns its `(time, seq)` tie-break
//!    order from insertion order, so the merged schedule — and therefore
//!    every downstream report — is a pure function of the partition
//!    layout and window, never of thread timing or worker count.
//!
//! An arrival that would land before `H` is bumped to `H`
//! (`eff = max(at, H)`): the destination has already simulated past its
//! nominal time. When `window` does not exceed the minimum
//! cross-partition latency (the [`LatencyModel::lookahead_floor`]), no
//! *latency-delayed* send can ever land inside the window that emitted
//! it, so no bump happens and event timing is exact — with one intended
//! exception: a world may forward an event it no longer owns with zero
//! delay (ownership re-resolution after a migration, see
//! `DataCenterWorld::dispatch_event`). Such a forward always lands below
//! the floor and is deferred to the horizon, deterministically, so the
//! forwarded event fires up to one window late even at the floor.
//! Larger windows additionally trade cross-partition timing precision
//! for fewer synchronization rounds; [`ShardStats::bumped_events`]
//! reports exactly how many arrivals were deferred (forwards included).
//!
//! Global events (fault injections and other whole-world mutations) are
//! applied at a barrier of their own: the coordinator applies each one to
//! *every* partition, in partition order, before any partition may
//! simulate past its timestamp.
//!
//! [`LatencyModel::lookahead_floor`]: crate::LatencyModel::lookahead_floor

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{EventQueue, Scheduler, SimDuration, SimTime};

/// A partitioned simulation world: one shard of the full system state.
///
/// Mirrors [`World`](crate::World) with two extensions: handlers receive
/// an [`Outbox`] for cross-partition sends, and shards must accept
/// *global* events — whole-world mutations the coordinator applies to
/// every partition at a barrier.
pub trait ShardWorld: Send {
    /// The event payload type.
    type Event: Send;
    /// Whole-world mutation applied to every partition at a barrier.
    type Global;

    /// Handles one local event at virtual time `now`. Follow-ups for this
    /// partition go through `sched`; messages for other partitions go
    /// through `outbox`.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut Scheduler<'_, Self::Event>,
        outbox: &mut Outbox<Self::Event>,
    );

    /// Applies one global event. Called once per partition, in partition
    /// order, with every partition paused at `now`.
    fn apply_global(
        &mut self,
        now: SimTime,
        global: &Self::Global,
        sched: &mut Scheduler<'_, Self::Event>,
        outbox: &mut Outbox<Self::Event>,
    );
}

/// One partition's world paired with its event queue — the unit
/// [`run_sharded`] takes in and hands back.
pub type Shard<W> = (W, EventQueue<<W as ShardWorld>::Event>);

/// Cross-partition sends staged during one epoch, merged deterministically
/// by the coordinator after the round's barrier.
#[derive(Debug)]
pub struct Outbox<E> {
    sends: Vec<(usize, SimTime, E)>,
}

impl<E> Outbox<E> {
    fn new() -> Self {
        Outbox { sends: Vec::new() }
    }

    /// Stages `event` for partition `dst` at nominal time `at`. If `at`
    /// falls before the epoch horizon the coordinator defers it to the
    /// horizon (see the module docs); with a window at or below the
    /// lookahead floor that only happens to zero-delay ownership
    /// forwards, never to latency-delayed sends.
    pub fn send(&mut self, dst: usize, at: SimTime, event: E) {
        self.sends.push((dst, at, event));
    }

    /// Number of staged sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// Tuning knobs for [`run_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOpts {
    /// Worker threads (including the coordinator, which also steals
    /// work). Capped at the partition count; `1` runs the identical
    /// epoch protocol inline with zero thread or barrier overhead.
    pub workers: usize,
    /// Synchronization window: each epoch simulates `[t_min, t_min +
    /// window)`. At or below the cross-partition lookahead floor the run
    /// is timing-exact; above it, cross-partition arrivals may be
    /// deferred to the epoch horizon (counted in
    /// [`ShardStats::bumped_events`]).
    pub window: SimDuration,
}

/// Counters describing one [`run_sharded`] execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Synchronization epochs executed (including global-event rounds).
    pub rounds: u64,
    /// Epochs that fanned out to the worker pool (≥ 2 active partitions).
    pub parallel_rounds: u64,
    /// Cross-partition events exchanged through outboxes.
    pub cross_events: u64,
    /// Cross-partition events deferred to an epoch horizon because their
    /// nominal arrival fell inside the window that emitted them. At or
    /// below the lookahead floor only zero-delay ownership forwards are
    /// counted here (see the module docs), so a nonzero value at the
    /// floor measures migration forwarding, not window tuning.
    pub bumped_events: u64,
    /// Global events applied (each counts once, not once per partition).
    pub globals_applied: u64,
}

struct Slot<W: ShardWorld> {
    world: W,
    queue: EventQueue<W::Event>,
    outbox: Outbox<W::Event>,
}

/// Round plan published by the coordinator before each parallel round.
/// Fixed-capacity and lock-free: workers only ever read it between the
/// start and end barriers of the round it describes.
struct Plan {
    active: Vec<AtomicUsize>,
    len: AtomicUsize,
    cursor: AtomicUsize,
    horizon_ns: AtomicU64,
}

impl Plan {
    fn new(nparts: usize) -> Self {
        Plan {
            active: (0..nparts).map(|_| AtomicUsize::new(0)).collect(),
            len: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            horizon_ns: AtomicU64::new(0),
        }
    }
}

/// A sense-reversing hybrid barrier. Epochs are short (often
/// microseconds), so parking threads in the OS between rounds would
/// dominate on a machine with enough cores; there the wait spins briefly,
/// then yields, then parks. When the host has fewer cores than barrier
/// participants (CI runners, containers pinned to one CPU), spinning only
/// steals the timeslice from the thread everyone is waiting for, so the
/// busy phases are skipped entirely and waiters park at once.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Busy-phase budget: `SPINS_BEFORE_YIELD` when the host's cores cover
    /// every participant, 0 when oversubscribed.
    spin_limit: u32,
    park: Mutex<()>,
    parked: std::sync::Condvar,
}

const SPINS_BEFORE_YIELD: u32 = 10_000;
const YIELDS_BEFORE_PARK: u32 = 64;

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spin_limit: if cores >= total {
                SPINS_BEFORE_YIELD
            } else {
                0
            },
            park: Mutex::new(()),
            parked: std::sync::Condvar::new(),
        }
    }

    /// Blocks until all `total` participants arrive. `abort` breaks the
    /// wait (by panicking) if another participant died mid-round — a
    /// poisoned run must not hang the survivors.
    fn wait(&self, abort: &AtomicBool) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            // Taking the park lock before bumping the generation closes
            // the race where a waiter checks the generation, the release
            // happens, and only then the waiter parks — it would sleep
            // through the wakeup (the 1 ms park timeout bounds the cost
            // even if this invariant is ever broken).
            let _guard = lock(&self.park);
            self.generation.fetch_add(1, Ordering::AcqRel);
            self.parked.notify_all();
        } else {
            let yield_limit = self.spin_limit.saturating_add(if self.spin_limit == 0 {
                1
            } else {
                YIELDS_BEFORE_PARK
            });
            let mut tries = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if abort.load(Ordering::Acquire) {
                    panic!("parallel shard round aborted: a participant panicked");
                }
                tries = tries.saturating_add(1);
                if tries < self.spin_limit {
                    std::hint::spin_loop();
                } else if tries < yield_limit {
                    std::thread::yield_now();
                } else {
                    let guard = lock(&self.park);
                    if self.generation.load(Ordering::Acquire) != gen {
                        break;
                    }
                    let (g, _) = self
                        .parked
                        .wait_timeout(guard, std::time::Duration::from_millis(1))
                        .unwrap_or_else(|p| p.into_inner());
                    drop(g);
                }
            }
        }
    }
}

struct Shared<W: ShardWorld> {
    slots: Vec<Mutex<Slot<W>>>,
    plan: Plan,
    done: AtomicBool,
    abort: AtomicBool,
    start: SpinBarrier,
    end: SpinBarrier,
}

/// Sets the shared abort flag if the owning thread unwinds, so peers
/// spinning at a barrier panic out instead of hanging forever.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Lock poisoning only matters if we keep running after a peer panic;
    // the abort flag already turns that into a prompt panic, so recover
    // the guard rather than double-panic with a worse message.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs `shards` to `until` under conservative epoch synchronization.
///
/// `shards` pairs each partition's world with its pre-split event queue;
/// `globals` lists whole-world events in time order (ties resolved by
/// list order). Events and globals scheduled beyond `until` are left
/// pending, mirroring [`run`](crate::run). Returns the partitions (with
/// their queues, whose pop counters feed events-processed accounting)
/// and the run's [`ShardStats`].
///
/// Determinism: the outcome is a pure function of the inputs, the
/// partition count, and `opts.window` — `opts.workers` affects wall
/// clock only, never results.
///
/// Tie-breaking against globals deliberately differs from the
/// sequential engine: when a global and an ordinary event share a
/// timestamp, **the global wins** (it is applied before any partition
/// may simulate that instant), whereas [`run`](crate::run) orders the
/// two by queue-insertion sequence. The divergence only surfaces on
/// exact timestamp collisions and is deterministic; it is the price of
/// applying globals at a clean all-partition barrier.
///
/// # Panics
///
/// Panics if `opts.workers == 0`, if a shard sends to an out-of-range
/// partition, or if a shard handler itself panics (the panic is
/// propagated once every worker has stopped).
pub fn run_sharded<W: ShardWorld>(
    shards: Vec<Shard<W>>,
    globals: Vec<(SimTime, W::Global)>,
    until: SimTime,
    opts: ShardOpts,
) -> (Vec<Shard<W>>, ShardStats) {
    assert!(opts.workers >= 1, "run_sharded needs at least one worker");
    let mut stats = ShardStats::default();
    let nparts = shards.len();
    if nparts == 0 {
        return (Vec::new(), stats);
    }
    let workers = opts.workers.min(nparts);
    let shared = Shared {
        slots: shards
            .into_iter()
            .map(|(world, queue)| {
                Mutex::new(Slot {
                    world,
                    queue,
                    outbox: Outbox::new(),
                })
            })
            .collect(),
        plan: Plan::new(nparts),
        done: AtomicBool::new(false),
        abort: AtomicBool::new(false),
        start: SpinBarrier::new(workers),
        end: SpinBarrier::new(workers),
    };

    if workers > 1 {
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(|| worker_loop(&shared));
            }
            let guard = AbortOnPanic(&shared.abort);
            coordinate(&shared, globals, until, opts.window, &mut stats, true);
            // Release the pool: parked workers re-check `done` after the
            // start barrier and exit.
            shared.done.store(true, Ordering::Release);
            shared.start.wait(&shared.abort);
            drop(guard);
        });
    } else {
        coordinate(&shared, globals, until, opts.window, &mut stats, false);
    }

    let out = shared
        .slots
        .into_iter()
        .map(|m| {
            let slot = m.into_inner().unwrap_or_else(|p| p.into_inner());
            (slot.world, slot.queue)
        })
        .collect();
    (out, stats)
}

fn worker_loop<W: ShardWorld>(shared: &Shared<W>) {
    let _guard = AbortOnPanic(&shared.abort);
    loop {
        shared.start.wait(&shared.abort);
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        drain_from_plan(shared);
        shared.end.wait(&shared.abort);
    }
}

/// Claims active partitions off the round plan's atomic cursor and drains
/// each to the published horizon.
fn drain_from_plan<W: ShardWorld>(shared: &Shared<W>) {
    let h_incl = SimTime::from_nanos(shared.plan.horizon_ns.load(Ordering::Relaxed));
    let n = shared.plan.len.load(Ordering::Relaxed);
    loop {
        let i = shared.plan.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let p = shared.plan.active[i].load(Ordering::Relaxed);
        drain_one(&shared.slots[p], h_incl);
    }
}

/// Drains one partition through every event at or before `h_incl`.
fn drain_one<W: ShardWorld>(slot: &Mutex<Slot<W>>, h_incl: SimTime) {
    let mut guard = lock(slot);
    let Slot {
        world,
        queue,
        outbox,
    } = &mut *guard;
    while let Some((now, event)) = queue.pop_until(h_incl) {
        let mut sched = Scheduler::over(queue);
        world.handle(now, event, &mut sched, outbox);
    }
}

/// The coordinator's epoch loop. Runs on the caller's thread; with
/// `threads` set it fans multi-partition rounds out through the barriers,
/// otherwise everything is drained inline.
fn coordinate<W: ShardWorld>(
    shared: &Shared<W>,
    globals: Vec<(SimTime, W::Global)>,
    until: SimTime,
    window: SimDuration,
    stats: &mut ShardStats,
    threads: bool,
) {
    let one = SimDuration::from_nanos(1);
    let nparts = shared.slots.len();
    let mut nexts: Vec<Option<SimTime>> = vec![None; nparts];
    let mut next_global = 0usize;

    loop {
        let mut t_min: Option<SimTime> = None;
        for (slot, next) in shared.slots.iter().zip(nexts.iter_mut()) {
            *next = lock(slot).queue.peek_time();
            if let Some(t) = *next {
                t_min = Some(t_min.map_or(t, |m| m.min(t)));
            }
        }
        let g_next = globals.get(next_global).map(|&(at, _)| at);
        let next = match (t_min, g_next) {
            (Some(t), Some(g)) => t.min(g),
            (Some(t), None) => t,
            (None, Some(g)) => g,
            (None, None) => break,
        };
        if next > until {
            break;
        }
        stats.rounds += 1;

        // Global rounds: nothing may simulate past a pending global, so
        // once it is next it is applied to every partition, in partition
        // order, before ordinary rounds resume. Same-time globals apply
        // one per round, preserving their original schedule order.
        if g_next.is_some_and(|g| t_min.is_none_or(|t| g <= t)) {
            let (at, global) = &globals[next_global];
            for slot in &shared.slots {
                let mut guard = lock(slot);
                let Slot {
                    world,
                    queue,
                    outbox,
                } = &mut *guard;
                let mut sched = Scheduler::over(queue);
                world.apply_global(*at, global, &mut sched, outbox);
            }
            // Sends from a global apply at `now ≥ at`, so the floor never
            // actually defers anything here.
            merge_outboxes(shared, *at, stats);
            stats.globals_applied += 1;
            next_global += 1;
            continue;
        }

        let t_min = t_min.expect("event round requires a pending event");
        // Exclusive epoch horizon: the run horizon is inclusive (events
        // at exactly `until` fire, matching `run`) and a pending global
        // caps the window so no partition overtakes it.
        let mut h = t_min + window;
        let until_excl = until + one;
        if until_excl < h {
            h = until_excl;
        }
        if let Some(g) = g_next {
            if g < h {
                h = g;
            }
        }
        if h <= t_min {
            h = t_min + one; // degenerate zero-width window
        }
        let h_incl = SimTime::from_nanos(h.as_nanos().saturating_sub(1));

        let mut active = 0usize;
        for (p, next) in nexts.iter().enumerate() {
            if next.is_some_and(|t| t < h) {
                shared.plan.active[active].store(p, Ordering::Relaxed);
                active += 1;
            }
        }

        if threads && active > 1 {
            shared.plan.len.store(active, Ordering::Relaxed);
            shared.plan.cursor.store(0, Ordering::Relaxed);
            shared
                .plan
                .horizon_ns
                .store(h_incl.as_nanos(), Ordering::Relaxed);
            shared.start.wait(&shared.abort);
            drain_from_plan(shared); // the coordinator steals too
            shared.end.wait(&shared.abort);
            stats.parallel_rounds += 1;
        } else {
            for i in 0..active {
                let p = shared.plan.active[i].load(Ordering::Relaxed);
                drain_one(&shared.slots[p], h_incl);
            }
        }

        merge_outboxes(shared, h, stats);
    }
}

/// Replays every partition's outbox into the destination queues in fixed
/// (source partition, emission) order — the step that pins the merged
/// `(time, seq)` order, and with it bit-identical results, regardless of
/// how worker threads interleaved during the round.
fn merge_outboxes<W: ShardWorld>(shared: &Shared<W>, floor: SimTime, stats: &mut ShardStats) {
    for src in 0..shared.slots.len() {
        let mut sends = {
            let mut guard = lock(&shared.slots[src]);
            if guard.outbox.sends.is_empty() {
                continue;
            }
            std::mem::take(&mut guard.outbox.sends)
        };
        for (dst, at, event) in sends.drain(..) {
            stats.cross_events += 1;
            let eff = if at < floor {
                stats.bumped_events += 1;
                floor
            } else {
                at
            };
            lock(&shared.slots[dst]).queue.schedule(eff, event);
        }
        // Hand the drained buffer (and its capacity) back to the slot.
        lock(&shared.slots[src]).outbox.sends = sends;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token circles `nparts` partitions, one hop per `delay`; every
    /// partition logs what it sees. Cross-partition by construction, so
    /// it exercises outboxes, bumping and the merge order end to end.
    struct Ring {
        id: usize,
        nparts: usize,
        delay: SimDuration,
        log: Vec<(SimTime, u64)>,
    }

    const GLOBAL_TAG: u64 = 1 << 32;

    impl ShardWorld for Ring {
        type Event = u64; // remaining hops
        type Global = u64;

        fn handle(
            &mut self,
            now: SimTime,
            hops: u64,
            sched: &mut Scheduler<'_, u64>,
            outbox: &mut Outbox<u64>,
        ) {
            self.log.push((now, hops));
            if hops > 0 {
                let dst = (self.id + 1) % self.nparts;
                if dst == self.id {
                    sched.schedule_in(now, self.delay, hops - 1);
                } else {
                    outbox.send(dst, now + self.delay, hops - 1);
                }
            }
        }

        fn apply_global(
            &mut self,
            now: SimTime,
            global: &u64,
            _sched: &mut Scheduler<'_, u64>,
            _outbox: &mut Outbox<u64>,
        ) {
            self.log.push((now, GLOBAL_TAG | *global));
        }
    }

    fn ring(
        nparts: usize,
        delay: SimDuration,
        hops: u64,
    ) -> (Vec<Shard<Ring>>, Vec<(SimTime, u64)>) {
        let shards = (0..nparts)
            .map(|id| {
                let mut queue = EventQueue::new();
                if id == 0 {
                    queue.schedule(SimTime::ZERO, hops);
                }
                (
                    Ring {
                        id,
                        nparts,
                        delay,
                        log: Vec::new(),
                    },
                    queue,
                )
            })
            .collect();
        (shards, Vec::new())
    }

    fn logs(parts: &[(Ring, EventQueue<u64>)]) -> Vec<Vec<(SimTime, u64)>> {
        parts.iter().map(|(w, _)| w.log.clone()).collect()
    }

    /// Window == the inter-partition latency: nothing may be deferred and
    /// every hop fires at its exact nominal time.
    #[test]
    fn exact_window_never_bumps() {
        let delay = SimDuration::from_millis(1);
        let (shards, globals) = ring(3, delay, 10);
        let (parts, stats) = run_sharded(
            shards,
            globals,
            SimTime::from_secs(1),
            ShardOpts {
                workers: 3,
                window: delay,
            },
        );
        assert_eq!(stats.bumped_events, 0);
        assert_eq!(stats.cross_events, 10);
        let log = logs(&parts);
        for hop in 0..=10u64 {
            let at = SimTime::from_nanos(hop * delay.as_nanos());
            assert!(
                log[(hop as usize) % 3].contains(&(at, 10 - hop)),
                "hop {hop} missing or mistimed"
            );
        }
        assert_eq!(parts.iter().map(|(_, q)| q.popped_total()).sum::<u64>(), 11);
    }

    /// A window wider than the latency defers arrivals — but identically
    /// at every worker count.
    #[test]
    fn wide_window_bumps_deterministically() {
        let delay = SimDuration::from_millis(1);
        let window = SimDuration::from_millis(10);
        let mut runs = Vec::new();
        for workers in [1usize, 2, 3] {
            let (shards, globals) = ring(3, delay, 20);
            let (parts, stats) = run_sharded(
                shards,
                globals,
                SimTime::from_secs(1),
                ShardOpts { workers, window },
            );
            assert!(stats.bumped_events > 0, "wide window must defer arrivals");
            runs.push((logs(&parts), stats));
        }
        assert_eq!(runs[0], runs[1], "workers 1 vs 2 diverged");
        assert_eq!(runs[0], runs[2], "workers 1 vs 3 diverged");
    }

    /// Globals reach every partition exactly once, at their timestamp,
    /// ordered against local events.
    #[test]
    fn globals_fan_out_to_every_partition() {
        let delay = SimDuration::from_millis(1);
        let (shards, _) = ring(3, delay, 10);
        let at = SimTime::from_micros(4500);
        let globals = vec![(at, 7u64)];
        let (parts, stats) = run_sharded(
            shards,
            globals,
            SimTime::from_secs(1),
            ShardOpts {
                workers: 2,
                window: delay,
            },
        );
        assert_eq!(stats.globals_applied, 1);
        for (p, log) in logs(&parts).iter().enumerate() {
            let hits: Vec<usize> = log
                .iter()
                .enumerate()
                .filter(|(_, &(_, v))| v == GLOBAL_TAG | 7)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                hits.len(),
                1,
                "partition {p} saw the global {} times",
                hits.len()
            );
            let (gt, _) = log[hits[0]];
            assert_eq!(gt, at);
            for (i, &(t, _)) in log.iter().enumerate() {
                if i < hits[0] {
                    assert!(t <= at, "partition {p}: event after the global ran first");
                } else if i > hits[0] {
                    assert!(t >= at, "partition {p}: event before the global ran later");
                }
            }
        }
    }

    /// Events beyond `until` stay queued, matching `run`'s contract, and
    /// pop counters account for exactly the processed prefix.
    #[test]
    fn until_leaves_future_events_pending() {
        let delay = SimDuration::from_millis(1);
        let (shards, globals) = ring(3, delay, 10);
        let (parts, _) = run_sharded(
            shards,
            globals,
            SimTime::from_millis(4),
            ShardOpts {
                workers: 2,
                window: delay,
            },
        );
        assert_eq!(
            parts.iter().map(|(_, q)| q.popped_total()).sum::<u64>(),
            5,
            "t = 0..=4 ms inclusive"
        );
        assert_eq!(
            parts.iter().map(|(_, q)| q.len()).sum::<usize>(),
            1,
            "the 5 ms hop stays pending"
        );
        for log in logs(&parts) {
            assert!(log.iter().all(|&(t, _)| t <= SimTime::from_millis(4)));
        }
    }

    /// Degenerate shapes: a single partition (everything local, workers
    /// capped) and zero partitions.
    #[test]
    fn degenerate_partition_counts() {
        let delay = SimDuration::from_millis(1);
        let (shards, globals) = ring(1, delay, 5);
        let (parts, stats) = run_sharded(
            shards,
            globals,
            SimTime::from_secs(1),
            ShardOpts {
                workers: 8,
                window: delay,
            },
        );
        assert_eq!(stats.cross_events, 0);
        assert_eq!(stats.parallel_rounds, 0);
        assert_eq!(parts[0].0.log.len(), 6);

        let (parts, stats) = run_sharded::<Ring>(
            Vec::new(),
            Vec::new(),
            SimTime::from_secs(1),
            ShardOpts {
                workers: 4,
                window: delay,
            },
        );
        assert!(parts.is_empty());
        assert_eq!(stats.rounds, 0);
    }
}
