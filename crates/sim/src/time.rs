use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (events here never fire).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional hours of virtual time (the unit
    /// traces and experiment horizons are expressed in).
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative input.
    pub fn from_hours(h: f64) -> Self {
        assert!(h.is_finite() && h >= 0.0, "invalid hour offset {h}");
        SimTime((h * 3.6e12) as u64)
    }

    /// Hours since the epoch as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e12
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds (saturating, non-negative).
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative factors.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis(3).as_millis_f64(), 3.0);
    }

    #[test]
    fn hours_round_trip() {
        assert_eq!(SimTime::from_hours(1.0).as_nanos(), 3_600_000_000_000);
        assert_eq!(SimTime::from_hours(0.5), SimTime::from_secs(1800));
        assert_eq!(SimTime::from_hours(0.0), SimTime::ZERO);
        let t = SimTime::from_hours(1.4);
        assert!((t.as_hours_f64() - 1.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid hour offset")]
    fn negative_hours_panic() {
        let _ = SimTime::from_hours(-0.1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 10.5);
        assert_eq!((t - SimTime::from_secs(10)).as_millis_f64(), 500.0);
        // Saturation, not underflow.
        assert_eq!((SimTime::ZERO - SimTime::from_secs(1)).as_nanos(), 0);
        let mut acc = SimTime::ZERO;
        acc += SimDuration::from_secs(2);
        assert_eq!(acc, SimTime::from_secs(2));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(2.5),
            SimDuration::from_millis(25)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::from_secs(2)), "t=2.000000s");
    }
}
