//! Differential property test: the timing-wheel scheduler pops the exact
//! same `(time, seq, event)` sequence as the retained `BinaryHeap`
//! reference under arbitrary schedules — equal-time bursts, sub-tick
//! spacings, day-scale horizons and far-future (top-level) times
//! included, with pops interleaved between schedules so the wheel's
//! cursor advances mid-stream.

use lazyctrl_sim::{EventQueue, SchedulerKind, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Schedule one event at an absolute time.
    Schedule(u64),
    /// Schedule a burst of events at the same time (tie-break stress).
    Burst(u64, u8),
    /// Pop up to `n` events, comparing the two backends pop by pop.
    Pop(u8),
    /// Pop up to `n` events bounded by a horizon (the driver loop's
    /// `pop_until` fast path).
    PopUntil(u64, u8),
}

/// Times spanning every wheel level: sub-tick, short-delay, day-horizon
/// and the far-future top level.
fn arb_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..4_096,
        0u64..10_000_000,
        0u64..86_400_000_000_000,
        (u64::MAX - 1_000_000)..u64::MAX,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_time().prop_map(Op::Schedule),
        (arb_time(), 1u8..16).prop_map(|(t, n)| Op::Burst(t, n)),
        (1u8..16).prop_map(Op::Pop),
        (arb_time(), 1u8..16).prop_map(|(t, n)| Op::PopUntil(t, n)),
    ]
}

fn drive(ops: &[Op]) {
    let mut wheel: EventQueue<u32> = EventQueue::with_kind(SchedulerKind::Wheel);
    let mut heap: EventQueue<u32> = EventQueue::with_kind(SchedulerKind::Heap);
    let mut next_event = 0u32;
    for op in ops {
        match *op {
            Op::Schedule(t) => {
                wheel.schedule(SimTime::from_nanos(t), next_event);
                heap.schedule(SimTime::from_nanos(t), next_event);
                next_event += 1;
            }
            Op::Burst(t, n) => {
                for _ in 0..n {
                    wheel.schedule(SimTime::from_nanos(t), next_event);
                    heap.schedule(SimTime::from_nanos(t), next_event);
                    next_event += 1;
                }
            }
            Op::Pop(n) => {
                for _ in 0..n {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "backends diverged mid-stream");
                    if a.is_none() {
                        break;
                    }
                }
            }
            Op::PopUntil(t, n) => {
                let until = SimTime::from_nanos(t);
                for _ in 0..n {
                    let a = wheel.pop_until(until);
                    let b = heap.pop_until(until);
                    assert_eq!(a, b, "backends diverged under a horizon");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
        assert_eq!(wheel.len(), heap.len());
    }
    // Drain what remains; the full tail must agree too.
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "backends diverged in the drain");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
    assert_eq!(wheel.popped_total(), heap.popped_total());
}

proptest! {
    #[test]
    fn wheel_pops_exactly_like_the_heap(
        ops in proptest::collection::vec(arb_op(), 1..120)
    ) {
        drive(&ops);
    }
}

#[test]
fn horizon_wrap_across_every_level() {
    // One event per wheel level, scheduled in reverse, with a burst at
    // each boundary; then interleaved pops and re-schedules into the
    // past (relative to the advanced cursor).
    let mut ops = Vec::new();
    for level in (0..9).rev() {
        let t = 1u64 << (13 + 6 * level); // at/above each level boundary
        ops.push(Op::Burst(t.saturating_sub(1), 3));
        ops.push(Op::Schedule(t));
        ops.push(Op::Schedule(t.saturating_add(1)));
    }
    ops.push(Op::Pop(10));
    ops.push(Op::Schedule(0)); // into the past of the advanced cursor
    ops.push(Op::Pop(255));
    drive(&ops);
}
