//! The designated switch role (§III-B.2): aggregate group-wide state from
//! members and report it to the controller asynchronously over the state
//! link; relay dissemination messages to the group over peer links.

use std::collections::BTreeMap;

use lazyctrl_net::{GroupId, SwitchId};
use lazyctrl_proto::{GfibUpdateMsg, StateReportMsg, SwitchStats};
use serde::{Deserialize, Serialize};

/// State held while a switch serves as its group's designated switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignatedRole {
    group: GroupId,
    members: Vec<SwitchId>,
    me: SwitchId,
    /// Latest per-member intensity samples, keyed by (src, dst).
    intensity: BTreeMap<(SwitchId, SwitchId), f64>,
    /// Latest per-member counters.
    stats: BTreeMap<SwitchId, SwitchStats>,
}

impl DesignatedRole {
    /// Assumes the role for `group` with the given membership.
    pub fn new(group: GroupId, me: SwitchId, members: Vec<SwitchId>) -> Self {
        DesignatedRole {
            group,
            members,
            me,
            intensity: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// The group being served.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Group members (including the designated switch itself).
    pub fn members(&self) -> &[SwitchId] {
        &self.members
    }

    /// Absorbs a member's windowed report (or the designated switch's own).
    pub fn absorb_report(&mut self, report: &StateReportMsg) {
        for &(a, b, w) in &report.intensity {
            self.intensity.insert((a, b), w);
        }
        for &(s, st) in &report.stats {
            self.stats.insert(s, st);
        }
    }

    /// Fan-out targets for relaying a message from `origin` to the rest of
    /// the group ("multiple unicast messages" in lieu of multicast,
    /// §III-B.3).
    pub fn relay_targets(&self, origin: SwitchId) -> Vec<SwitchId> {
        self.members
            .iter()
            .copied()
            .filter(|&s| s != origin && s != self.me)
            .collect()
    }

    /// Builds the aggregated report for the controller and clears the
    /// accumulation (state link, asynchronous).
    pub fn make_controller_report(&mut self, epoch: u32) -> StateReportMsg {
        let intensity: Vec<(SwitchId, SwitchId, f64)> = self
            .intensity
            .iter()
            .map(|(&(a, b), &w)| (a, b, w))
            .collect();
        let stats: Vec<(SwitchId, SwitchStats)> =
            self.stats.iter().map(|(&s, &st)| (s, st)).collect();
        self.intensity.clear();
        self.stats.clear();
        StateReportMsg {
            group: self.group,
            epoch,
            intensity,
            stats,
        }
    }

    /// True when nothing has been absorbed since the last controller
    /// report.
    pub fn is_quiescent(&self) -> bool {
        self.intensity.is_empty() && self.stats.is_empty()
    }
}

/// Validates that a relayed G-FIB update targets this group's epoch
/// space.
pub fn gfib_is_relevant(msg: &GfibUpdateMsg, current_epoch: u32) -> bool {
    msg.epoch <= current_epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role() -> DesignatedRole {
        DesignatedRole::new(
            GroupId::new(2),
            SwitchId::new(10),
            vec![SwitchId::new(10), SwitchId::new(11), SwitchId::new(12)],
        )
    }

    fn member_report(src: u32, dst: u32, fps: f64) -> StateReportMsg {
        StateReportMsg {
            group: GroupId::new(2),
            epoch: 1,
            intensity: vec![(SwitchId::new(src), SwitchId::new(dst), fps)],
            stats: vec![(
                SwitchId::new(src),
                SwitchStats {
                    new_flows_per_sec: fps,
                    local_hits: 1,
                    group_hits: 2,
                    controller_punts: 0,
                },
            )],
        }
    }

    #[test]
    fn aggregates_member_reports() {
        let mut r = role();
        r.absorb_report(&member_report(11, 12, 4.0));
        r.absorb_report(&member_report(12, 11, 6.0));
        assert!(!r.is_quiescent());
        let agg = r.make_controller_report(3);
        assert_eq!(agg.group, GroupId::new(2));
        assert_eq!(agg.epoch, 3);
        assert_eq!(agg.intensity.len(), 2);
        assert_eq!(agg.stats.len(), 2);
        assert!(r.is_quiescent(), "aggregation must reset");
    }

    #[test]
    fn newer_samples_replace_older() {
        let mut r = role();
        r.absorb_report(&member_report(11, 12, 4.0));
        r.absorb_report(&member_report(11, 12, 9.0));
        let agg = r.make_controller_report(1);
        assert_eq!(
            agg.intensity,
            vec![(SwitchId::new(11), SwitchId::new(12), 9.0)]
        );
    }

    #[test]
    fn relay_excludes_origin_and_self() {
        let r = role();
        assert_eq!(r.relay_targets(SwitchId::new(11)), vec![SwitchId::new(12)]);
        assert_eq!(
            r.relay_targets(SwitchId::new(99)),
            vec![SwitchId::new(11), SwitchId::new(12)]
        );
    }

    #[test]
    fn relevance_checks() {
        let g = GfibUpdateMsg {
            origin: SwitchId::new(1),
            epoch: 5,
            num_hashes: 4,
            m_bits: 64,
            entries: 0,
            bits: vec![0; 8],
        };
        assert!(gfib_is_relevant(&g, 5));
        assert!(!gfib_is_relevant(&g, 4));
    }
}
