//! The OpenFlow-style flow table (exact-priority match, timeouts, stats).

use lazyctrl_net::{EtherType, MacAddr, PortNo, TenantId};
use lazyctrl_proto::{Action, FlowMatch, FlowModCommand, FlowModMsg};
use serde::{Deserialize, Serialize};

/// One installed rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRule {
    /// What the rule matches.
    pub flow_match: FlowMatch,
    /// Priority; higher wins, ties broken by older-first.
    pub priority: u16,
    /// Actions applied on match.
    pub actions: Vec<Action>,
    /// Seconds of idleness before eviction (0 = never).
    pub idle_timeout: u16,
    /// Seconds of lifetime before eviction (0 = never).
    pub hard_timeout: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Install time (ns).
    pub installed_at_ns: u64,
    /// Last match time (ns).
    pub last_used_ns: u64,
    /// Number of packets matched.
    pub packets: u64,
}

/// The fields of a packet a rule can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketFields {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Source MAC.
    pub dl_src: Option<MacAddr>,
    /// Destination MAC.
    pub dl_dst: Option<MacAddr>,
    /// Tenant VLAN.
    pub dl_vlan: Option<TenantId>,
    /// EtherType.
    pub dl_type: Option<EtherType>,
}

/// An OpenFlow-style flow table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies a `FlowMod` from the controller.
    ///
    /// Returns the number of rules affected (inserted, modified or
    /// removed).
    pub fn apply(&mut self, msg: &FlowModMsg, now_ns: u64) -> usize {
        match msg.command {
            FlowModCommand::Add => {
                self.rules.push(FlowRule {
                    flow_match: msg.flow_match,
                    priority: msg.priority,
                    actions: msg.actions.clone(),
                    idle_timeout: msg.idle_timeout,
                    hard_timeout: msg.hard_timeout,
                    cookie: msg.cookie,
                    installed_at_ns: now_ns,
                    last_used_ns: now_ns,
                    packets: 0,
                });
                // Highest priority first; stable sort keeps older rules
                // ahead within a priority level.
                self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
                1
            }
            FlowModCommand::Modify => {
                let mut n = 0;
                for r in &mut self.rules {
                    if r.flow_match == msg.flow_match {
                        r.actions = msg.actions.clone();
                        r.cookie = msg.cookie;
                        n += 1;
                    }
                }
                n
            }
            FlowModCommand::Delete => {
                let before = self.rules.len();
                self.rules.retain(|r| r.flow_match != msg.flow_match);
                before - self.rules.len()
            }
        }
    }

    /// Finds the highest-priority matching rule, bumping its stats.
    pub fn lookup(&mut self, fields: &PacketFields, now_ns: u64) -> Option<&FlowRule> {
        let idx = self.rules.iter().position(|r| {
            r.flow_match.matches(
                fields.in_port,
                fields.dl_src,
                fields.dl_dst,
                fields.dl_vlan,
                fields.dl_type,
            )
        })?;
        let r = &mut self.rules[idx];
        r.last_used_ns = now_ns;
        r.packets += 1;
        Some(&self.rules[idx])
    }

    /// Evicts expired rules, returning them (for `FlowRemoved`-style
    /// accounting).
    pub fn expire(&mut self, now_ns: u64) -> Vec<FlowRule> {
        let mut removed = Vec::new();
        self.rules.retain(|r| {
            let idle_dead = r.idle_timeout > 0
                && now_ns.saturating_sub(r.last_used_ns) > r.idle_timeout as u64 * 1_000_000_000;
            let hard_dead = r.hard_timeout > 0
                && now_ns.saturating_sub(r.installed_at_ns) > r.hard_timeout as u64 * 1_000_000_000;
            if idle_dead || hard_dead {
                removed.push(r.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Iterates over installed rules in match order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter()
    }

    /// Keeps only rules satisfying the predicate; returns how many were
    /// removed (used to purge stale-epoch tunnel rules at regrouping).
    pub fn retain_rules<F: FnMut(&FlowRule) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| keep(r));
        before - self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_mod(cmd: FlowModCommand, dst: u64, priority: u16, port: u16) -> FlowModMsg {
        FlowModMsg {
            command: cmd,
            flow_match: FlowMatch::to_dst(MacAddr::for_host(dst)),
            priority,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 0,
            actions: vec![Action::Output(PortNo::new(port))],
        }
    }

    fn fields_to(dst: u64) -> PacketFields {
        PacketFields {
            dl_dst: Some(MacAddr::for_host(dst)),
            ..PacketFields::default()
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut t = FlowTable::new();
        assert_eq!(t.apply(&flow_mod(FlowModCommand::Add, 1, 10, 3), 0), 1);
        let rule = t.lookup(&fields_to(1), 5).expect("match");
        assert_eq!(rule.actions, vec![Action::Output(PortNo::new(3))]);
        assert_eq!(rule.packets, 1);
        assert_eq!(rule.last_used_ns, 5);
        assert!(t.lookup(&fields_to(2), 5).is_none());
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.apply(&flow_mod(FlowModCommand::Add, 1, 1, 7), 0);
        t.apply(&flow_mod(FlowModCommand::Add, 1, 100, 9), 0);
        let rule = t.lookup(&fields_to(1), 0).unwrap();
        assert_eq!(rule.actions, vec![Action::Output(PortNo::new(9))]);
    }

    #[test]
    fn modify_rewrites_actions() {
        let mut t = FlowTable::new();
        t.apply(&flow_mod(FlowModCommand::Add, 1, 10, 3), 0);
        let n = t.apply(&flow_mod(FlowModCommand::Modify, 1, 10, 42), 1);
        assert_eq!(n, 1);
        let rule = t.lookup(&fields_to(1), 2).unwrap();
        assert_eq!(rule.actions, vec![Action::Output(PortNo::new(42))]);
    }

    #[test]
    fn delete_removes_matching() {
        let mut t = FlowTable::new();
        t.apply(&flow_mod(FlowModCommand::Add, 1, 10, 3), 0);
        t.apply(&flow_mod(FlowModCommand::Add, 2, 10, 4), 0);
        assert_eq!(t.apply(&flow_mod(FlowModCommand::Delete, 1, 0, 0), 1), 1);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(&fields_to(1), 2).is_none());
        assert!(t.lookup(&fields_to(2), 2).is_some());
    }

    #[test]
    fn idle_timeout_expires() {
        let mut t = FlowTable::new();
        let mut m = flow_mod(FlowModCommand::Add, 1, 10, 3);
        m.idle_timeout = 2; // seconds
        t.apply(&m, 0);
        // Touch at t=1s; expire check at 2.5s (idle 1.5s) → survives.
        t.lookup(&fields_to(1), 1_000_000_000);
        assert!(t.expire(2_500_000_000).is_empty());
        // At 3.5s idle is 2.5s > 2s → evicted.
        let removed = t.expire(3_500_000_000);
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn hard_timeout_expires_despite_use() {
        let mut t = FlowTable::new();
        let mut m = flow_mod(FlowModCommand::Add, 1, 10, 3);
        m.hard_timeout = 1;
        t.apply(&m, 0);
        t.lookup(&fields_to(1), 900_000_000);
        let removed = t.expire(1_100_000_000);
        assert_eq!(removed.len(), 1);
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let mut t = FlowTable::new();
        let m = FlowModMsg {
            command: FlowModCommand::Add,
            flow_match: FlowMatch::default(),
            priority: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 9,
            actions: vec![Action::Drop],
        };
        t.apply(&m, 0);
        assert!(t.lookup(&fields_to(123), 0).is_some());
        assert!(t.lookup(&PacketFields::default(), 0).is_some());
    }
}
