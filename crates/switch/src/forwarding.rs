//! The packet forwarding routine of Fig. 5, as a pure decision function.
//!
//! ```text
//! plain packet:        flow table → L-FIB → G-FIB → controller
//! encapsulated packet: epoch check → decap → L-FIB → drop (false positive)
//! ```
//!
//! Keeping this a function from `(packet, tables)` to a
//! [`ForwardingDecision`] makes every branch of the paper's routine
//! directly unit-testable; [`EdgeSwitch`](crate::EdgeSwitch) maps decisions
//! onto I/O effects.

use lazyctrl_net::{Packet, PortNo, SwitchId};
use lazyctrl_proto::Action;

use crate::flow_table::PacketFields;
use crate::{FlowTable, Gfib, Lfib};

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Mis-forwarded to us by a peer's G-FIB false positive (Fig. 5 line
    /// 28).
    FalsePositive,
    /// Encapsulated under a grouping epoch we no longer accept.
    StaleEpoch,
}

/// The outcome of the forwarding routine for one packet.
///
/// The data-carrying outcomes write into caller-owned scratch buffers
/// (see [`forward_packet`]) instead of allocating per decision, so the
/// enum itself is `Copy` and the per-packet path stays heap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingDecision {
    /// A flow-table rule matched; its action list was appended to the
    /// `actions_out` scratch (Fig. 5 lines 4–5).
    FlowRule,
    /// The destination is a local host on this port (lines 20–21, 29).
    DeliverLocal(PortNo),
    /// Encapsulate and send a copy to each candidate peer switch; the
    /// candidates were appended to the `targets_out` scratch (lines
    /// 17–19; multiple targets possible due to BF false positives).
    EncapTo,
    /// No group knowledge: punt to the controller for inter-group handling
    /// (lines 14–16).
    PuntToController,
    /// Drop (lines 27–28).
    Drop(DropReason),
}

/// Runs the Fig. 5 routine over the switch's tables.
///
/// `epoch_accepted` decides whether an encapsulated packet's grouping epoch
/// is still valid (current epoch, or an old one within the preload grace
/// window of Appendix B).
///
/// `actions_out` and `targets_out` are caller-owned scratch buffers: they
/// are cleared on entry, and filled exactly when the returned decision is
/// [`ForwardingDecision::FlowRule`] / [`ForwardingDecision::EncapTo`]
/// respectively — reusing the caller's capacity instead of allocating a
/// fresh `Vec` per forwarded packet.
#[allow(clippy::too_many_arguments)]
pub fn forward_packet(
    pkt: &Packet,
    in_port: PortNo,
    flow_table: &mut FlowTable,
    lfib: &Lfib,
    gfib: &Gfib,
    epoch_accepted: impl Fn(u32) -> bool,
    now_ns: u64,
    actions_out: &mut Vec<Action>,
    targets_out: &mut Vec<SwitchId>,
) -> ForwardingDecision {
    actions_out.clear();
    targets_out.clear();
    match pkt {
        Packet::Plain(frame) => {
            // Lines 4–5: flow table first.
            let fields = PacketFields {
                in_port: Some(in_port),
                dl_src: Some(frame.src),
                dl_dst: Some(frame.dst),
                dl_vlan: frame.vlan.map(|t| t.vid()),
                dl_type: Some(frame.ethertype),
            };
            if let Some(rule) = flow_table.lookup(&fields, now_ns) {
                actions_out.extend_from_slice(&rule.actions);
                return ForwardingDecision::FlowRule;
            }
            // Lines 8–9: L-FIB.
            if let Some(port) = lfib.lookup(frame.dst) {
                return ForwardingDecision::DeliverLocal(port);
            }
            // Lines 12–13: G-FIB.
            gfib.query_into(frame.dst, targets_out);
            if targets_out.is_empty() {
                // Lines 14–16.
                ForwardingDecision::PuntToController
            } else {
                // Lines 17–19.
                ForwardingDecision::EncapTo
            }
        }
        Packet::Encapsulated(encap) => {
            // Epoch gate (regrouping consistency; Appendix B preload).
            if !epoch_accepted(encap.header.key) {
                return ForwardingDecision::Drop(DropReason::StaleEpoch);
            }
            // Lines 24–29.
            match lfib.lookup(encap.inner.dst) {
                Some(port) => ForwardingDecision::DeliverLocal(port),
                None => ForwardingDecision::Drop(DropReason::FalsePositive),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfib::build_update;
    use lazyctrl_net::{
        EncapHeader, EncapsulatedFrame, EtherType, EthernetFrame, MacAddr, TenantId,
    };
    use lazyctrl_proto::{FlowMatch, FlowModCommand, FlowModMsg};

    fn frame(src: u64, dst: u64) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::for_host(src),
            MacAddr::for_host(dst),
            EtherType::IPV4,
            vec![0; 32],
        )
    }

    fn encap(dst: u64, key: u32) -> Packet {
        Packet::Encapsulated(EncapsulatedFrame::new(
            EncapHeader::new(
                SwitchId::new(1).underlay_ip(),
                SwitchId::new(2).underlay_ip(),
                TenantId::new(1),
                key,
            ),
            frame(1, dst),
        ))
    }

    fn setup() -> (FlowTable, Lfib, Gfib) {
        let mut lfib = Lfib::new();
        lfib.learn(MacAddr::for_host(100), TenantId::new(1), PortNo::new(4), 0);
        let mut gfib = Gfib::new();
        gfib.apply_update(&build_update(
            SwitchId::new(7),
            1,
            vec![MacAddr::for_host(200)],
        ));
        (FlowTable::new(), lfib, gfib)
    }

    /// Runs the routine with fresh scratch buffers and returns the
    /// decision plus both scratch payloads.
    fn forward(
        pkt: &Packet,
        in_port: PortNo,
        ft: &mut FlowTable,
        lfib: &Lfib,
        gfib: &Gfib,
        accept: impl Fn(u32) -> bool,
    ) -> (ForwardingDecision, Vec<Action>, Vec<SwitchId>) {
        let mut actions = vec![Action::Drop]; // stale junk: must be cleared
        let mut targets = vec![SwitchId::new(99)];
        let d = forward_packet(
            pkt,
            in_port,
            ft,
            lfib,
            gfib,
            accept,
            0,
            &mut actions,
            &mut targets,
        );
        (d, actions, targets)
    }

    #[test]
    fn flow_rule_takes_precedence() {
        let (mut ft, lfib, gfib) = setup();
        ft.apply(
            &FlowModMsg {
                command: FlowModCommand::Add,
                flow_match: FlowMatch::to_dst(MacAddr::for_host(100)),
                priority: 5,
                idle_timeout: 0,
                hard_timeout: 0,
                cookie: 0,
                actions: vec![Action::Drop],
            },
            0,
        );
        // 100 is also in the L-FIB, but the flow rule wins (Fig. 5 order).
        let (d, actions, targets) = forward(
            &Packet::Plain(frame(1, 100)),
            PortNo::new(1),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::FlowRule);
        assert_eq!(actions, vec![Action::Drop]);
        assert!(targets.is_empty(), "stale scratch must be cleared");
    }

    #[test]
    fn local_host_delivers() {
        let (mut ft, lfib, gfib) = setup();
        let (d, _, _) = forward(
            &Packet::Plain(frame(1, 100)),
            PortNo::new(1),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::DeliverLocal(PortNo::new(4)));
    }

    #[test]
    fn group_host_tunnels() {
        let (mut ft, lfib, gfib) = setup();
        let (d, actions, targets) = forward(
            &Packet::Plain(frame(1, 200)),
            PortNo::new(1),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::EncapTo);
        assert_eq!(targets, vec![SwitchId::new(7)]);
        assert!(actions.is_empty(), "stale scratch must be cleared");
    }

    #[test]
    fn unknown_host_punts() {
        let (mut ft, lfib, gfib) = setup();
        let (d, _, targets) = forward(
            &Packet::Plain(frame(1, 999)),
            PortNo::new(1),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::PuntToController);
        assert!(targets.is_empty());
    }

    #[test]
    fn encapsulated_delivers_locally() {
        let (mut ft, lfib, gfib) = setup();
        let (d, _, _) = forward(
            &encap(100, 1),
            PortNo::new(9),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::DeliverLocal(PortNo::new(4)));
    }

    #[test]
    fn false_positive_drops() {
        let (mut ft, lfib, gfib) = setup();
        let (d, _, _) = forward(
            &encap(555, 1),
            PortNo::new(9),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::Drop(DropReason::FalsePositive));
    }

    #[test]
    fn stale_epoch_drops_before_lfib() {
        let (mut ft, lfib, gfib) = setup();
        let (d, _, _) = forward(
            &encap(100, 42),
            PortNo::new(9),
            &mut ft,
            &lfib,
            &gfib,
            |e| e == 1,
        );
        assert_eq!(d, ForwardingDecision::Drop(DropReason::StaleEpoch));
    }

    #[test]
    fn multiple_bf_candidates_all_targeted() {
        let (mut ft, lfib, mut gfib) = setup();
        gfib.apply_update(&build_update(
            SwitchId::new(9),
            1,
            vec![MacAddr::for_host(200)],
        ));
        let (d, _, targets) = forward(
            &Packet::Plain(frame(1, 200)),
            PortNo::new(1),
            &mut ft,
            &lfib,
            &gfib,
            |_| true,
        );
        assert_eq!(d, ForwardingDecision::EncapTo);
        assert_eq!(targets, vec![SwitchId::new(7), SwitchId::new(9)]);
    }
}
