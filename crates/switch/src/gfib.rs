//! The Group Forwarding Information Base: Bloom-filter replicas of every
//! peer's L-FIB (§III-D.2).
//!
//! "Given an address of a virtual machine, each BF decides whether this
//! address is under the corresponding edge switch. All the BFs together
//! will return a vector of Boolean values indicating the possible location
//! of this address." False positives are possible (handled in Fig. 5 by
//! sending copies to all candidates and dropping at mis-forwarded
//! switches); false negatives are not.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use lazyctrl_bloom::BloomFilter;
use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_proto::GfibUpdateMsg;
use serde::{Deserialize, Serialize};

/// One peer's filter plus the epoch it was built under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PeerFilter {
    bloom: BloomFilter,
    epoch: u32,
}

/// The per-peer Bloom filter bank.
///
/// Queries are memoized per destination MAC: flows repeat destinations
/// constantly (the traces' hot pair sets), while the filter bank itself
/// only changes on peer-sync updates — so each (MAC, bank-generation)
/// pair probes the filters once and every repeat is a hash-map hit. The
/// cache is invalidated wholesale by bumping `generation` on any filter
/// mutation, and is transparent: results are identical with or without
/// it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gfib {
    peers: BTreeMap<SwitchId, PeerFilter>,
    /// Bumped on every mutation of `peers`.
    generation: u64,
    /// `mac → (generation, candidates)`; entries from older generations
    /// are recomputed on access.
    cache: RefCell<HashMap<MacAddr, (u64, Vec<SwitchId>)>>,
}

impl Gfib {
    /// Creates an empty G-FIB.
    pub fn new() -> Self {
        Gfib::default()
    }

    /// Number of peer filters held.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// Installs or replaces the filter for `origin` from a wire update.
    ///
    /// Updates from an older epoch than the one already held are ignored
    /// (regrouping races); same-or-newer epochs replace.
    ///
    /// Returns true if the filter was installed.
    pub fn apply_update(&mut self, msg: &GfibUpdateMsg) -> bool {
        if let Some(existing) = self.peers.get(&msg.origin) {
            if msg.epoch < existing.epoch {
                return false;
            }
        }
        let bloom = BloomFilter::from_bytes(
            &msg.bits,
            msg.m_bits as u64,
            msg.num_hashes.max(1) as u32,
            msg.entries as u64,
        );
        self.peers.insert(
            msg.origin,
            PeerFilter {
                bloom,
                epoch: msg.epoch,
            },
        );
        self.invalidate();
        true
    }

    /// Invalidates memoized query results (any filter-bank mutation).
    fn invalidate(&mut self) {
        self.generation += 1;
        self.cache.get_mut().clear();
    }

    /// Installs a locally-built filter (used by tests and by designated
    /// switches seeding a fresh group).
    pub fn install(&mut self, origin: SwitchId, bloom: BloomFilter, epoch: u32) {
        self.peers.insert(origin, PeerFilter { bloom, epoch });
        self.invalidate();
    }

    /// Removes a peer (left the group). Returns true if present.
    pub fn remove_peer(&mut self, origin: SwitchId) -> bool {
        let removed = self.peers.remove(&origin).is_some();
        if removed {
            self.invalidate();
        }
        removed
    }

    /// Drops every peer not in `keep` (after a regrouping).
    pub fn retain_peers(&mut self, keep: &[SwitchId]) {
        let before = self.peers.len();
        self.peers.retain(|s, _| keep.contains(s));
        if self.peers.len() != before {
            self.invalidate();
        }
    }

    /// The Fig. 5 query: all peers whose filter claims the address.
    ///
    /// An empty vector means "definitely not in this group" — the packet
    /// must go to the controller.
    pub fn query(&self, mac: MacAddr) -> Vec<SwitchId> {
        let mut out = Vec::new();
        self.query_into(mac, &mut out);
        out
    }

    /// Allocation-free form of [`Gfib::query`]: appends the candidates to
    /// `out` (a caller-owned scratch buffer) instead of returning a fresh
    /// `Vec`. A memo-cache hit is a `extend_from_slice`, not a clone —
    /// this is the per-packet path of the forwarding routine.
    pub fn query_into(&self, mac: MacAddr, out: &mut Vec<SwitchId>) {
        {
            let cache = self.cache.borrow();
            if let Some((gen, hit)) = cache.get(&mac) {
                if *gen == self.generation {
                    out.extend_from_slice(hit);
                    return;
                }
            }
        }
        // Hash the key once; probe every peer filter with its own (k, m).
        let base = lazyctrl_bloom::base_hashes(&mac.octets());
        let start = out.len();
        out.extend(
            self.peers
                .iter()
                .filter(|(_, f)| f.bloom.contains_prehashed(base))
                .map(|(&s, _)| s),
        );
        self.cache
            .borrow_mut()
            .insert(mac, (self.generation, out[start..].to_vec()));
    }

    /// Total storage held by the filter bank in bytes (§V-D's quantity).
    pub fn storage_bytes(&self) -> usize {
        self.peers.values().map(|f| f.bloom.storage_bytes()).sum()
    }

    /// The held epoch for a peer, if any.
    pub fn peer_epoch(&self, origin: SwitchId) -> Option<u32> {
        self.peers.get(&origin).map(|f| f.epoch)
    }
}

/// Builds the wire update advertising `macs` as living behind `origin`.
///
/// Geometry follows the paper's §V-D example: the filter is sized for the
/// expected host count at a <0.1% false-positive rate.
pub fn build_update(
    origin: SwitchId,
    epoch: u32,
    macs: impl IntoIterator<Item = MacAddr>,
) -> GfibUpdateMsg {
    let macs: Vec<MacAddr> = macs.into_iter().collect();
    let mut bloom = BloomFilter::with_capacity((macs.len() as u64).max(16), 0.001);
    for m in &macs {
        bloom.insert(m.octets());
    }
    GfibUpdateMsg {
        origin,
        epoch,
        num_hashes: bloom.num_hashes() as u8,
        m_bits: bloom.num_bits() as u32,
        entries: macs.len() as u32,
        bits: bloom.to_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u64) -> MacAddr {
        MacAddr::for_host(n)
    }

    #[test]
    fn update_and_query() {
        let mut g = Gfib::new();
        let upd = build_update(SwitchId::new(2), 1, vec![mac(10), mac(11)]);
        assert!(g.apply_update(&upd));
        assert_eq!(g.query(mac(10)), vec![SwitchId::new(2)]);
        assert_eq!(g.query(mac(11)), vec![SwitchId::new(2)]);
        assert!(g.query(mac(999)).is_empty());
        assert_eq!(g.num_peers(), 1);
    }

    #[test]
    fn multiple_candidates_possible() {
        let mut g = Gfib::new();
        g.apply_update(&build_update(SwitchId::new(1), 1, vec![mac(5)]));
        g.apply_update(&build_update(SwitchId::new(2), 1, vec![mac(5)]));
        // Host appears under both (e.g. mid-migration): both returned.
        assert_eq!(g.query(mac(5)), vec![SwitchId::new(1), SwitchId::new(2)]);
    }

    #[test]
    fn stale_epoch_rejected() {
        let mut g = Gfib::new();
        assert!(g.apply_update(&build_update(SwitchId::new(3), 5, vec![mac(1)])));
        assert!(!g.apply_update(&build_update(SwitchId::new(3), 4, vec![mac(2)])));
        // Epoch 5 content still in force.
        assert_eq!(g.query(mac(1)), vec![SwitchId::new(3)]);
        assert!(g.query(mac(2)).is_empty());
        assert_eq!(g.peer_epoch(SwitchId::new(3)), Some(5));
    }

    #[test]
    fn same_epoch_replaces() {
        let mut g = Gfib::new();
        g.apply_update(&build_update(SwitchId::new(3), 5, vec![mac(1)]));
        g.apply_update(&build_update(SwitchId::new(3), 5, vec![mac(2)]));
        assert!(g.query(mac(1)).is_empty());
        assert_eq!(g.query(mac(2)), vec![SwitchId::new(3)]);
    }

    #[test]
    fn retain_peers_prunes_after_regroup() {
        let mut g = Gfib::new();
        for s in 1..=4u32 {
            g.apply_update(&build_update(SwitchId::new(s), 1, vec![mac(s as u64)]));
        }
        g.retain_peers(&[SwitchId::new(2), SwitchId::new(4)]);
        assert_eq!(g.num_peers(), 2);
        assert!(g.query(mac(1)).is_empty());
        assert_eq!(g.query(mac(2)), vec![SwitchId::new(2)]);
        assert!(g.remove_peer(SwitchId::new(2)));
        assert!(!g.remove_peer(SwitchId::new(2)));
    }

    #[test]
    fn storage_is_linear_in_group_size() {
        // §V-D: "the storage cost of the BF-based G-FIB on each switch is
        // linear with the group size".
        let mut g10 = Gfib::new();
        let mut g20 = Gfib::new();
        for s in 0..10u32 {
            g10.apply_update(&build_update(SwitchId::new(s), 1, (0..24).map(mac)));
        }
        for s in 0..20u32 {
            g20.apply_update(&build_update(SwitchId::new(s), 1, (0..24).map(mac)));
        }
        assert_eq!(g20.storage_bytes(), 2 * g10.storage_bytes());
    }

    #[test]
    fn no_false_negatives_through_wire() {
        let macs: Vec<MacAddr> = (0..500).map(mac).collect();
        let upd = build_update(SwitchId::new(9), 1, macs.clone());
        let mut g = Gfib::new();
        g.apply_update(&upd);
        for m in macs {
            assert_eq!(g.query(m), vec![SwitchId::new(9)], "lost {m}");
        }
    }
}
