//! The Local Forwarding Information Base: which hosts live behind which
//! local ports.
//!
//! "The L-FIB of each edge switch is implemented with a conventional lookup
//! mechanism similar to the MAC/ARP table in ordinary layer two switches"
//! (§III-D.2). Learning happens from ARP traffic and first packets; aging
//! and explicit removal (VM migration/teardown) withdraw entries. Delta
//! tracking feeds the state advertisement module.

use std::collections::BTreeMap;

use lazyctrl_net::{MacAddr, PortNo, TenantId};
use lazyctrl_proto::LfibEntry;
use serde::{Deserialize, Serialize};

/// One learned binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Binding {
    port: PortNo,
    tenant: TenantId,
    learned_at_ns: u64,
    refreshed_at_ns: u64,
}

/// Changes accumulated since the last [`Lfib::take_delta`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LfibDelta {
    /// Entries added or re-learned on a different port.
    pub added: Vec<LfibEntry>,
    /// Addresses withdrawn.
    pub removed: Vec<MacAddr>,
}

impl LfibDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The learning table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lfib {
    entries: BTreeMap<MacAddr, Binding>,
    pending_added: BTreeMap<MacAddr, LfibEntry>,
    pending_removed: BTreeMap<MacAddr, ()>,
}

impl Lfib {
    /// Creates an empty table.
    pub fn new() -> Self {
        Lfib::default()
    }

    /// Number of learned hosts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Learns (or refreshes) a host binding. Returns true if this changed
    /// the table (new host or moved port).
    pub fn learn(&mut self, mac: MacAddr, tenant: TenantId, port: PortNo, now_ns: u64) -> bool {
        match self.entries.get_mut(&mac) {
            Some(b) if b.port == port && b.tenant == tenant => {
                b.refreshed_at_ns = now_ns;
                false
            }
            _ => {
                self.entries.insert(
                    mac,
                    Binding {
                        port,
                        tenant,
                        learned_at_ns: now_ns,
                        refreshed_at_ns: now_ns,
                    },
                );
                self.pending_removed.remove(&mac);
                self.pending_added
                    .insert(mac, LfibEntry { mac, tenant, port });
                true
            }
        }
    }

    /// Looks up the local port for a destination.
    pub fn lookup(&self, mac: MacAddr) -> Option<PortNo> {
        self.entries.get(&mac).map(|b| b.port)
    }

    /// The tenant of a learned host.
    pub fn tenant_of(&self, mac: MacAddr) -> Option<TenantId> {
        self.entries.get(&mac).map(|b| b.tenant)
    }

    /// Withdraws a host (VM migrated away or torn down). Returns true if
    /// it was present.
    pub fn remove(&mut self, mac: MacAddr) -> bool {
        if self.entries.remove(&mac).is_some() {
            self.pending_added.remove(&mac);
            self.pending_removed.insert(mac, ());
            true
        } else {
            false
        }
    }

    /// Ages out entries not refreshed within `max_idle_ns`. Returns the
    /// withdrawn addresses.
    pub fn age(&mut self, now_ns: u64, max_idle_ns: u64) -> Vec<MacAddr> {
        let dead: Vec<MacAddr> = self
            .entries
            .iter()
            .filter(|(_, b)| now_ns.saturating_sub(b.refreshed_at_ns) > max_idle_ns)
            .map(|(&m, _)| m)
            .collect();
        for mac in &dead {
            self.remove(*mac);
        }
        dead
    }

    /// Full snapshot as wire entries (for initial group sync).
    pub fn snapshot(&self) -> Vec<LfibEntry> {
        self.entries
            .iter()
            .map(|(&mac, b)| LfibEntry {
                mac,
                tenant: b.tenant,
                port: b.port,
            })
            .collect()
    }

    /// Drains the changes since the previous call.
    pub fn take_delta(&mut self) -> LfibDelta {
        let added = std::mem::take(&mut self.pending_added)
            .into_values()
            .collect();
        let removed = std::mem::take(&mut self.pending_removed)
            .into_keys()
            .collect();
        LfibDelta { added, removed }
    }

    /// Iterates over all learned MACs.
    pub fn macs(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u64) -> MacAddr {
        MacAddr::for_host(n)
    }
    const T1: TenantId = TenantId::NONE;

    #[test]
    fn learn_and_lookup() {
        let mut l = Lfib::new();
        assert!(l.learn(mac(1), T1, PortNo::new(3), 0));
        assert_eq!(l.lookup(mac(1)), Some(PortNo::new(3)));
        assert_eq!(l.lookup(mac(2)), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn refresh_is_not_a_change() {
        let mut l = Lfib::new();
        assert!(l.learn(mac(1), T1, PortNo::new(3), 0));
        assert!(!l.learn(mac(1), T1, PortNo::new(3), 100));
        // Port move is a change.
        assert!(l.learn(mac(1), T1, PortNo::new(4), 200));
        assert_eq!(l.lookup(mac(1)), Some(PortNo::new(4)));
    }

    #[test]
    fn delta_tracks_adds_and_removes() {
        let mut l = Lfib::new();
        l.learn(mac(1), T1, PortNo::new(1), 0);
        l.learn(mac(2), T1, PortNo::new(2), 0);
        let d = l.take_delta();
        assert_eq!(d.added.len(), 2);
        assert!(d.removed.is_empty());
        // Nothing pending after drain.
        assert!(l.take_delta().is_empty());
        l.remove(mac(1));
        let d = l.take_delta();
        assert_eq!(d.removed, vec![mac(1)]);
        assert!(d.added.is_empty());
    }

    #[test]
    fn add_then_remove_collapses() {
        let mut l = Lfib::new();
        l.learn(mac(5), T1, PortNo::new(1), 0);
        l.remove(mac(5));
        let d = l.take_delta();
        assert!(
            d.added.is_empty(),
            "added then removed should not re-announce"
        );
        assert_eq!(d.removed, vec![mac(5)]);
    }

    #[test]
    fn aging_withdraws_idle_hosts() {
        let mut l = Lfib::new();
        l.learn(mac(1), T1, PortNo::new(1), 0);
        l.learn(mac(2), T1, PortNo::new(2), 0);
        l.learn(mac(2), T1, PortNo::new(2), 5_000_000_000); // refresh
        let dead = l.age(6_000_000_000, 2_000_000_000);
        assert_eq!(dead, vec![mac(1)]);
        assert_eq!(l.len(), 1);
        assert!(l.lookup(mac(2)).is_some());
    }

    #[test]
    fn snapshot_covers_all() {
        let mut l = Lfib::new();
        l.learn(mac(1), TenantId::new(7), PortNo::new(1), 0);
        l.learn(mac(2), TenantId::new(8), PortNo::new(2), 0);
        let snap = l.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap
            .iter()
            .any(|e| e.mac == mac(1) && e.tenant == TenantId::new(7)));
    }

    #[test]
    fn tenant_lookup() {
        let mut l = Lfib::new();
        l.learn(mac(1), TenantId::new(9), PortNo::new(1), 0);
        assert_eq!(l.tenant_of(mac(1)), Some(TenantId::new(9)));
        assert_eq!(l.tenant_of(mac(2)), None);
    }
}
