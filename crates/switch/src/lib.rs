//! The LazyCtrl edge switch.
//!
//! Mirrors the paper's Open vSwitch-based implementation (§IV-A) as a pure,
//! deterministic state machine:
//!
//! * [`FlowTable`] — OpenFlow-style rule table (the "flow table" lane of
//!   Fig. 5, lines 4–5), fed by controller `FlowMod`s;
//! * [`Lfib`] — Local Forwarding Information Base: MAC → local port
//!   learning table with aging and delta tracking;
//! * [`Gfib`] — Group FIB: one Bloom filter per peer switch in the local
//!   control group (§III-D.2);
//! * [`forwarding`] — the packet forwarding routine of Fig. 5, as a pure
//!   function from switch state to a [`ForwardingDecision`];
//! * [`StateAdvertiser`] — collects L-FIB deltas and traffic statistics and
//!   emits peer-link sync messages (§IV-A "state advertisement module");
//! * [`DesignatedRole`] — aggregation/relay duties of the designated switch
//!   (state link reports, group-wide dissemination);
//! * [`wheel`] — the failure-detection wheel participant (§III-E.1);
//! * [`EdgeSwitch`] — the composed switch: consumes packets, control
//!   messages and timers; produces [`SwitchOutput`] effects.
//!
//! The switch knows nothing about the simulator: time is a plain
//! nanosecond counter and all I/O is returned as values, which is what
//! makes the forwarding routine unit-testable at this density.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod designated;
mod flow_table;
pub mod forwarding;
mod gfib;
mod lfib;
mod state_adv;
mod switch;
pub mod wheel;

pub use designated::DesignatedRole;
pub use flow_table::{FlowRule, FlowTable, PacketFields};
pub use forwarding::ForwardingDecision;
pub use gfib::{build_update as build_gfib_update, Gfib};
pub use lfib::{Lfib, LfibDelta};
pub use state_adv::StateAdvertiser;
pub use switch::{EdgeSwitch, GroupConfig, SwitchOutput, SwitchTimer};
