//! The state advertisement module (§IV-A): collects local host information
//! and traffic statistics for dissemination inside the group and reporting
//! up the state link.

use std::collections::BTreeMap;

use lazyctrl_net::{GroupId, SwitchId};
use lazyctrl_proto::{StateReportMsg, SwitchStats};
use serde::{Deserialize, Serialize};

/// Accumulates one switch's traffic observations between sync rounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateAdvertiser {
    origin: SwitchId,
    /// New flows observed towards each destination edge switch in the
    /// current window (the raw material of the intensity matrix).
    new_flows: BTreeMap<SwitchId, u64>,
    local_hits: u64,
    group_hits: u64,
    controller_punts: u64,
    window_start_ns: u64,
}

impl StateAdvertiser {
    /// Creates an empty accumulator for `origin`.
    pub fn new(origin: SwitchId) -> Self {
        StateAdvertiser {
            origin,
            new_flows: BTreeMap::new(),
            local_hits: 0,
            group_hits: 0,
            controller_punts: 0,
            window_start_ns: 0,
        }
    }

    /// Records a fresh flow headed to a (resolved) destination switch.
    pub fn record_flow_to(&mut self, dst: SwitchId) {
        *self.new_flows.entry(dst).or_insert(0) += 1;
    }

    /// Records an L-FIB hit (packet stayed local).
    pub fn record_local_hit(&mut self) {
        self.local_hits += 1;
    }

    /// Records a G-FIB hit (packet tunnelled inside the group).
    pub fn record_group_hit(&mut self) {
        self.group_hits += 1;
    }

    /// Records a punt to the controller.
    pub fn record_punt(&mut self) {
        self.controller_punts += 1;
    }

    /// Current counters (without resetting).
    pub fn stats(&self, window_end_ns: u64) -> SwitchStats {
        let secs = (window_end_ns.saturating_sub(self.window_start_ns)) as f64 / 1e9;
        let flows: u64 = self.new_flows.values().sum();
        SwitchStats {
            new_flows_per_sec: if secs > 0.0 { flows as f64 / secs } else { 0.0 },
            local_hits: self.local_hits,
            group_hits: self.group_hits,
            controller_punts: self.controller_punts,
        }
    }

    /// Produces this switch's per-window report (sent to the designated
    /// switch over the peer link) and resets the window.
    pub fn take_report(&mut self, group: GroupId, epoch: u32, now_ns: u64) -> StateReportMsg {
        let secs = ((now_ns.saturating_sub(self.window_start_ns)) as f64 / 1e9).max(1e-9);
        let intensity: Vec<(SwitchId, SwitchId, f64)> = self
            .new_flows
            .iter()
            .map(|(&dst, &n)| (self.origin, dst, n as f64 / secs))
            .collect();
        let stats = vec![(self.origin, self.stats(now_ns))];
        self.new_flows.clear();
        self.local_hits = 0;
        self.group_hits = 0;
        self.controller_punts = 0;
        self.window_start_ns = now_ns;
        StateReportMsg {
            group,
            epoch,
            intensity,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports() {
        let mut adv = StateAdvertiser::new(SwitchId::new(3));
        for _ in 0..10 {
            adv.record_flow_to(SwitchId::new(7));
        }
        adv.record_flow_to(SwitchId::new(8));
        adv.record_local_hit();
        adv.record_group_hit();
        adv.record_group_hit();
        adv.record_punt();

        let report = adv.take_report(GroupId::new(1), 2, 2_000_000_000); // 2 s window
        assert_eq!(report.group, GroupId::new(1));
        assert_eq!(report.epoch, 2);
        assert_eq!(report.intensity.len(), 2);
        let to7 = report
            .intensity
            .iter()
            .find(|(_, d, _)| *d == SwitchId::new(7))
            .unwrap();
        assert!((to7.2 - 5.0).abs() < 1e-9, "10 flows / 2 s = 5 fps");
        let (_, stats) = report.stats[0];
        assert!((stats.new_flows_per_sec - 5.5).abs() < 1e-9);
        assert_eq!(stats.local_hits, 1);
        assert_eq!(stats.group_hits, 2);
        assert_eq!(stats.controller_punts, 1);
    }

    #[test]
    fn report_resets_window() {
        let mut adv = StateAdvertiser::new(SwitchId::new(1));
        adv.record_flow_to(SwitchId::new(2));
        let _ = adv.take_report(GroupId::new(0), 1, 1_000_000_000);
        let second = adv.take_report(GroupId::new(0), 1, 2_000_000_000);
        assert!(second.intensity.is_empty());
        assert_eq!(second.stats[0].1.local_hits, 0);
    }

    #[test]
    fn zero_window_is_safe() {
        let mut adv = StateAdvertiser::new(SwitchId::new(1));
        adv.record_flow_to(SwitchId::new(2));
        let r = adv.take_report(GroupId::new(0), 1, 0);
        assert!(r.intensity[0].2.is_finite());
    }
}
