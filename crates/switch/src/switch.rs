//! The composed LazyCtrl edge switch.
//!
//! `EdgeSwitch` is a deterministic state machine: packets, control messages
//! and timers go in; [`SwitchOutput`] effects come out. The split mirrors
//! the prototype's ovs-vswitchd modules (§IV-A): Ctrl-IF (control link
//! I/O), state advertisement, FIB maintenance, and state reporting (active
//! only on the designated switch).

use std::collections::BTreeSet;

use lazyctrl_net::{
    ArpOp, EncapHeader, EncapsulatedFrame, EthernetFrame, GroupId, HostId, MacAddr, Packet, PortNo,
    SwitchId, TenantId,
};
use lazyctrl_proto::{
    Action, GroupAssignMsg, LazyMsg, LfibSyncMsg, Message, OfMessage, PacketInMsg, PacketInReason,
    PacketOutMsg,
};

use crate::forwarding::{forward_packet, DropReason, ForwardingDecision};
use crate::gfib::build_update;
use crate::wheel::{WheelAction, WheelPosition};
use crate::{DesignatedRole, FlowTable, Gfib, Lfib, StateAdvertiser};

/// How long a superseded epoch stays accepted after a regroup when preload
/// is enabled (Appendix B, "preload for seamless grouping update"). Long
/// enough for in-flight packets and already-punted flows to settle.
const EPOCH_GRACE_NS: u64 = 10_000_000_000;

/// Default L-FIB aging horizon. Hosts refresh their entry whenever they
/// send; without periodic gratuitous ARP a quiet VM must not be forgotten,
/// so the default is a full day (VM removal is signalled explicitly).
const DEFAULT_LFIB_MAX_IDLE_NS: u64 = 86_400_000_000_000; // 24 h

/// Group membership parameters installed by a `GroupAssign`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// The group this switch belongs to.
    pub group: GroupId,
    /// Current grouping epoch.
    pub epoch: u32,
    /// All members (ring order).
    pub members: Vec<SwitchId>,
    /// The designated switch.
    pub designated: SwitchId,
    /// Backup designated switches.
    pub backups: Vec<SwitchId>,
    /// Peer-sync period (ns).
    pub sync_interval_ns: u64,
    /// Keep-alive period (ns).
    pub keepalive_interval_ns: u64,
}

impl From<&GroupAssignMsg> for GroupConfig {
    fn from(m: &GroupAssignMsg) -> Self {
        GroupConfig {
            group: m.group,
            epoch: m.epoch,
            members: m.members.clone(),
            designated: m.designated,
            backups: m.backups.clone(),
            sync_interval_ns: m.sync_interval_ms as u64 * 1_000_000,
            keepalive_interval_ns: m.keepalive_interval_ms as u64 * 1_000_000,
        }
    }
}

/// Timers the switch asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwitchTimer {
    /// Periodic peer-link state sync (§III-D.3 asynchronous dissemination).
    PeerSync,
    /// Periodic wheel keep-alive.
    KeepAlive,
    /// Periodic L-FIB aging sweep.
    LfibAge,
    /// One-shot: stop accepting the given superseded epoch.
    EpochGrace(u32),
}

/// Effects the switch wants performed.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchOutput {
    /// Send on the control link to the controller.
    ToController(Message),
    /// Send on the peer link to a group member.
    ToPeer(SwitchId, Message),
    /// Send on the state link (designated switch only).
    ToState(Message),
    /// Tunnel an encapsulated frame across the underlay to a peer edge
    /// switch.
    Tunnel(SwitchId, EncapsulatedFrame),
    /// Deliver to a local host port.
    DeliverLocal(PortNo, EthernetFrame),
    /// Flood to all local host ports (except the ingress port).
    FloodLocal(EthernetFrame),
    /// Arm a timer after the given delay (ns). Periodic timers re-arm from
    /// their handler; the driver just schedules each request once.
    SetTimer(SwitchTimer, u64),
}

/// The edge switch state machine.
#[derive(Debug)]
pub struct EdgeSwitch {
    id: SwitchId,
    flow_table: FlowTable,
    lfib: Lfib,
    gfib: Gfib,
    adv: StateAdvertiser,
    group: Option<GroupConfig>,
    designated_role: Option<DesignatedRole>,
    wheel: Option<WheelPosition>,
    accepted_epochs: BTreeSet<u32>,
    blocked_arp: BTreeSet<TenantId>,
    armed_timers: BTreeSet<SwitchTimer>,
    /// Report bloom-filter mis-deliveries to the controller (Fig. 5's
    /// optional corrective path).
    pub report_false_positives: bool,
    /// Preload grace for superseded epochs (Appendix B). When disabled,
    /// in-flight packets from the old epoch drop at regrouping.
    pub preload_enabled: bool,
    /// Enforce the tunnel-key epoch gate on received packets. Off by
    /// default: misdelivery is already caught by the L-FIB false-positive
    /// path, so the gate only adds transient drops around regroupings.
    /// The preload ablation turns it on to measure exactly that cost.
    pub epoch_gating: bool,
    /// When false the datapath behaves like a plain OpenFlow 1.0 switch:
    /// flow-table lookup, then punt — no L-FIB/G-FIB resolution. This is
    /// the paper's "normal mode" baseline (§V-A).
    pub datapath_learning: bool,
    /// L-FIB entries idle longer than this age out.
    pub lfib_max_idle_ns: u64,
    xid: u32,
    packets_processed: u64,
    packet_ins_sent: u64,
    /// Last time the flow table was swept for expired rules (amortized
    /// lazy expiry; OpenFlow idle/hard timeouts).
    last_flow_expiry_ns: u64,
}

impl EdgeSwitch {
    /// Creates a switch that is not yet in any group (it will punt
    /// everything unknown to the controller, like a plain OpenFlow switch).
    pub fn new(id: SwitchId) -> Self {
        EdgeSwitch {
            id,
            flow_table: FlowTable::new(),
            lfib: Lfib::new(),
            gfib: Gfib::new(),
            adv: StateAdvertiser::new(id),
            group: None,
            designated_role: None,
            wheel: None,
            accepted_epochs: BTreeSet::new(),
            blocked_arp: BTreeSet::new(),
            armed_timers: BTreeSet::new(),
            report_false_positives: false,
            preload_enabled: true,
            epoch_gating: false,
            datapath_learning: true,
            lfib_max_idle_ns: DEFAULT_LFIB_MAX_IDLE_NS,
            xid: 0,
            packets_processed: 0,
            packet_ins_sent: 0,
            last_flow_expiry_ns: 0,
        }
    }

    /// This switch's id.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// The current group configuration, if assigned.
    pub fn group(&self) -> Option<&GroupConfig> {
        self.group.as_ref()
    }

    /// True while this switch serves as its group's designated switch.
    pub fn is_designated(&self) -> bool {
        self.designated_role.is_some()
    }

    /// Direct read access to the L-FIB.
    pub fn lfib(&self) -> &Lfib {
        &self.lfib
    }

    /// Direct read access to the G-FIB.
    pub fn gfib(&self) -> &Gfib {
        &self.gfib
    }

    /// Direct read access to the flow table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// Total packets processed.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Total `PacketIn`s sent to the controller.
    pub fn packet_ins_sent(&self) -> u64 {
        self.packet_ins_sent
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    fn current_epoch(&self) -> u32 {
        self.group.as_ref().map(|g| g.epoch).unwrap_or(0)
    }

    fn designated(&self) -> Option<SwitchId> {
        self.group.as_ref().map(|g| g.designated)
    }

    fn packet_in(
        &mut self,
        reason: PacketInReason,
        in_port: PortNo,
        data: impl Into<bytes::Bytes>,
    ) -> Message {
        self.packet_ins_sent += 1;
        let xid = self.next_xid();
        Message::of(
            xid,
            OfMessage::PacketIn(PacketInMsg {
                buffer_id: u32::MAX,
                in_port,
                reason,
                data: data.into(),
            }),
        )
    }

    /// Handles a plain frame arriving from a directly attached host.
    pub fn handle_local_frame(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
    ) -> Vec<SwitchOutput> {
        self.packets_processed += 1;
        // Amortized flow-rule expiry (idle/hard timeouts), at most once a
        // second of virtual time.
        if now_ns.saturating_sub(self.last_flow_expiry_ns) >= 1_000_000_000 {
            self.last_flow_expiry_ns = now_ns;
            let _ = self.flow_table.expire(now_ns);
        }
        let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
        // Source learning (live state dissemination, step i).
        self.lfib.learn(frame.src, tenant, in_port, now_ns);

        if self.datapath_learning {
            if let Some(arp) = frame.as_arp() {
                if arp.op == ArpOp::Request {
                    return self.handle_arp_request(now_ns, in_port, frame, tenant);
                }
                // ARP replies are unicast; fall through to normal forwarding.
            }
        }
        self.forward_plain(now_ns, in_port, frame, tenant)
    }

    /// The three-level ARP cascade of §III-D.3.
    fn handle_arp_request(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
    ) -> Vec<SwitchOutput> {
        let arp = frame.as_arp().expect("caller verified this is ARP");
        let target_mac = HostId::from_ip(arp.target_ip).map(|h| h.mac());

        // Level i: a local host owns the target → flood locally only (the
        // owner will reply).
        if let Some(mac) = target_mac {
            if self.lfib.lookup(mac).is_some() {
                return vec![SwitchOutput::FloodLocal(frame)];
            }
            // Level ii(a): the G-FIB recognizes the target → tunnel the
            // request straight to the candidate switches.
            let candidates = self.gfib.query(mac);
            if !candidates.is_empty() {
                self.note_flow(now_ns, frame.src, mac, candidates.first().copied());
                return self.tunnel_to(candidates, frame, tenant);
            }
        }
        // Level ii(b): not recognized in-group → designated switch runs an
        // intra-group broadcast.
        if let Some(designated) = self.designated() {
            if designated != self.id {
                let xid = self.next_xid();
                return vec![SwitchOutput::ToPeer(
                    designated,
                    Message::of(
                        xid,
                        OfMessage::PacketOut(PacketOutMsg {
                            buffer_id: u32::MAX,
                            in_port,
                            actions: vec![Action::Output(PortNo::FLOOD)],
                            data: frame.encode().into(),
                        }),
                    ),
                )];
            }
            // I am the designated switch: broadcast in-group, and escalate
            // to the controller unless this tenant's ARP is blocked.
            let mut out = self.group_broadcast(frame.clone(), tenant);
            if !self.blocked_arp.contains(&tenant) {
                self.adv.record_punt();
                let msg = self.packet_in(PacketInReason::NoMatch, in_port, frame.encode());
                out.push(SwitchOutput::ToController(msg));
            }
            return out;
        }
        // Level iii (no group at all): straight to the controller.
        if self.blocked_arp.contains(&tenant) {
            return Vec::new();
        }
        self.adv.record_punt();
        let msg = self.packet_in(PacketInReason::NoMatch, in_port, frame.encode());
        vec![SwitchOutput::ToController(msg)]
    }

    /// Fig. 5 for non-ARP plain packets.
    fn forward_plain(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
    ) -> Vec<SwitchOutput> {
        let current = self.current_epoch();
        let gating = self.epoch_gating;
        // Plain-OpenFlow datapath: consult only the flow table. The
        // empty tables are built only on that (cold) path.
        let empties;
        let (lfib, gfib) = if self.datapath_learning {
            (&self.lfib, &self.gfib)
        } else {
            empties = (Lfib::new(), Gfib::new());
            (&empties.0, &empties.1)
        };
        let epochs = &self.accepted_epochs;
        let pkt = Packet::Plain(frame);
        let decision = forward_packet(
            &pkt,
            in_port,
            &mut self.flow_table,
            lfib,
            gfib,
            |e| !gating || epochs.is_empty() || e >= current || epochs.contains(&e),
            now_ns,
        );
        let Packet::Plain(frame) = pkt else {
            unreachable!("constructed as plain above")
        };
        match decision {
            ForwardingDecision::FlowRule(actions) => {
                // Rule-forwarded flows still count towards intensity: the
                // destination switch is in the rule's Encap action.
                let dst_switch = actions.iter().find_map(|a| match a {
                    Action::Encap { remote, .. } => SwitchId::from_underlay_ip(*remote),
                    Action::Output(p) if p.is_physical() => Some(self.id),
                    _ => None,
                });
                self.note_flow(now_ns, frame.src, frame.dst, dst_switch);
                self.apply_actions(now_ns, in_port, frame, tenant, &actions)
            }
            ForwardingDecision::DeliverLocal(port) => {
                self.adv.record_local_hit();
                self.note_flow(now_ns, frame.src, frame.dst, Some(self.id));
                vec![SwitchOutput::DeliverLocal(port, frame)]
            }
            ForwardingDecision::EncapTo(candidates) => {
                self.adv.record_group_hit();
                self.note_flow(now_ns, frame.src, frame.dst, candidates.first().copied());
                self.tunnel_to(candidates, frame, tenant)
            }
            ForwardingDecision::PuntToController => {
                self.adv.record_punt();
                self.note_flow(now_ns, frame.src, frame.dst, None);
                let msg = self.packet_in(PacketInReason::NoMatch, in_port, frame.encode());
                vec![SwitchOutput::ToController(msg)]
            }
            ForwardingDecision::Drop(_) => Vec::new(),
        }
    }

    /// Handles an encapsulated packet arriving from the underlay.
    pub fn handle_tunnel_packet(
        &mut self,
        now_ns: u64,
        encap: EncapsulatedFrame,
    ) -> Vec<SwitchOutput> {
        self.packets_processed += 1;
        // Flooded intra-group broadcasts (ARP) fan out locally.
        if encap.inner.is_flood() {
            return vec![SwitchOutput::FloodLocal(encap.into_inner())];
        }
        // Epoch gate (only when enabled): packets from this switch's
        // current epoch, from a *newer* epoch (the controller's view is
        // ahead mid-update), or from a superseded epoch still within the
        // preload grace window are valid; anything older is dropped.
        let current = self.current_epoch();
        let gating = self.epoch_gating;
        let epochs = &self.accepted_epochs;
        let pkt = Packet::Encapsulated(encap);
        let decision = forward_packet(
            &pkt,
            PortNo::NONE,
            &mut self.flow_table,
            &self.lfib,
            &self.gfib,
            |e| !gating || epochs.is_empty() || e >= current || epochs.contains(&e),
            now_ns,
        );
        let Packet::Encapsulated(encap) = pkt else {
            unreachable!("constructed as encapsulated above")
        };
        match decision {
            ForwardingDecision::DeliverLocal(port) => {
                vec![SwitchOutput::DeliverLocal(port, encap.into_inner())]
            }
            ForwardingDecision::Drop(DropReason::FalsePositive) if self.report_false_positives => {
                // Ship the full encapsulated packet so the controller can
                // identify the mis-forwarding sender from the outer header
                // and install a corrective rule there (Fig. 5, line 28+).
                let msg =
                    self.packet_in(PacketInReason::FalsePositive, PortNo::NONE, encap.encode());
                vec![SwitchOutput::ToController(msg)]
            }
            _ => Vec::new(),
        }
    }

    /// Handles a message from the controller on the control link.
    pub fn handle_control_message(&mut self, now_ns: u64, msg: &Message) -> Vec<SwitchOutput> {
        match &msg.body {
            lazyctrl_proto::MessageBody::Of(of) => match of {
                OfMessage::Hello => {
                    vec![SwitchOutput::ToController(Message::of(
                        msg.xid,
                        OfMessage::Hello,
                    ))]
                }
                OfMessage::EchoRequest(data) => vec![SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::EchoReply(data.clone()),
                ))],
                OfMessage::FeaturesRequest => vec![SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::FeaturesReply {
                        datapath_id: self.id.0 as u64,
                        n_ports: 48,
                    },
                ))],
                OfMessage::StatsRequest => vec![SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::StatsReply {
                        packets: self.packets_processed,
                        flows: self.flow_table.len() as u32,
                        packet_ins: self.packet_ins_sent,
                    },
                ))],
                OfMessage::FlowMod(fm) => {
                    self.flow_table.apply(fm, now_ns);
                    Vec::new()
                }
                OfMessage::PacketOut(po) => {
                    let Ok(frame) = EthernetFrame::decode(&po.data) else {
                        return Vec::new();
                    };
                    let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                    self.apply_actions(now_ns, po.in_port, frame, tenant, &po.actions)
                }
                _ => Vec::new(),
            },
            lazyctrl_proto::MessageBody::Lazy(lazy) => match lazy {
                LazyMsg::GroupAssign(ga) => self.apply_group_assign(now_ns, ga),
                LazyMsg::BlockArp { tenant, block } => {
                    if *block {
                        self.blocked_arp.insert(*tenant);
                    } else {
                        self.blocked_arp.remove(tenant);
                    }
                    Vec::new()
                }
                LazyMsg::KeepAlive(_) => {
                    if let Some(w) = &mut self.wheel {
                        w.on_controller_keepalive(now_ns);
                    }
                    Vec::new()
                }
                LazyMsg::GfibUpdate(gu) => {
                    self.gfib.apply_update(gu);
                    Vec::new()
                }
                LazyMsg::LfibSync(sync) => {
                    // Controller pushing other switches' L-FIBs after a
                    // regroup goes through the designated switch; accepting
                    // it here too keeps small setups simple.
                    self.absorb_lfib_sync(sync)
                }
                _ => Vec::new(),
            },
            // Controller-to-controller traffic never terminates on a switch.
            lazyctrl_proto::MessageBody::Cluster(_) => Vec::new(),
        }
    }

    /// Handles a message from a group member on the peer link.
    pub fn handle_peer_message(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
    ) -> Vec<SwitchOutput> {
        match &msg.body {
            lazyctrl_proto::MessageBody::Lazy(lazy) => match lazy {
                LazyMsg::KeepAlive(ka) => {
                    if let Some(w) = &mut self.wheel {
                        w.on_peer_keepalive(ka.from, now_ns);
                    }
                    Vec::new()
                }
                LazyMsg::GfibUpdate(gu) => {
                    let mut out = Vec::new();
                    if crate::designated::gfib_is_relevant(gu, self.current_epoch()) {
                        self.gfib.apply_update(gu);
                        // Designated switch relays to the rest of the group.
                        if let Some(role) = &self.designated_role {
                            for target in role.relay_targets(from) {
                                let xid = self.next_xid();
                                out.push(SwitchOutput::ToPeer(
                                    target,
                                    Message::lazy(xid, LazyMsg::GfibUpdate(gu.clone())),
                                ));
                            }
                        }
                    }
                    out
                }
                LazyMsg::LfibSync(sync) => {
                    let mut out = self.absorb_lfib_sync(sync);
                    // Designated switch relays exact entries up the state
                    // link for the controller's C-LIB.
                    if self.designated_role.is_some() {
                        let xid = self.next_xid();
                        out.push(SwitchOutput::ToState(Message::lazy(
                            xid,
                            LazyMsg::LfibSync(sync.clone()),
                        )));
                    }
                    out
                }
                LazyMsg::StateReport(report) => {
                    if let Some(role) = &mut self.designated_role {
                        role.absorb_report(report);
                    }
                    Vec::new()
                }
                LazyMsg::WheelReport(report) => {
                    // Relay for a neighbour whose control link is dead.
                    let xid = self.next_xid();
                    vec![SwitchOutput::ToController(Message::lazy(
                        xid,
                        LazyMsg::WheelReport(*report),
                    ))]
                }
                _ => Vec::new(),
            },
            lazyctrl_proto::MessageBody::Of(OfMessage::PacketOut(po)) => {
                // A member asked the designated switch to run an intra-group
                // ARP broadcast (§III-D.3 level ii).
                let Ok(frame) = EthernetFrame::decode(&po.data) else {
                    return Vec::new();
                };
                let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                if self.designated_role.is_some() {
                    let mut out = self.group_broadcast_except(frame.clone(), tenant, from);
                    // Escalate to the controller (level iii) unless blocked.
                    if !self.blocked_arp.contains(&tenant) {
                        let msg =
                            self.packet_in(PacketInReason::NoMatch, po.in_port, frame.encode());
                        out.push(SwitchOutput::ToController(msg));
                    }
                    out
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    /// Handles a timer the driver armed earlier.
    pub fn on_timer(&mut self, now_ns: u64, timer: SwitchTimer) -> Vec<SwitchOutput> {
        match timer {
            SwitchTimer::PeerSync => self.run_peer_sync(now_ns),
            SwitchTimer::KeepAlive => self.run_keepalive(now_ns),
            SwitchTimer::LfibAge => {
                self.lfib.age(now_ns, self.lfib_max_idle_ns);
                vec![SwitchOutput::SetTimer(
                    SwitchTimer::LfibAge,
                    self.lfib_max_idle_ns / 2,
                )]
            }
            SwitchTimer::EpochGrace(epoch) => {
                self.accepted_epochs.remove(&epoch);
                self.armed_timers.remove(&SwitchTimer::EpochGrace(epoch));
                Vec::new()
            }
        }
    }

    fn run_peer_sync(&mut self, now_ns: u64) -> Vec<SwitchOutput> {
        let Some(group) = self.group.clone() else {
            self.armed_timers.remove(&SwitchTimer::PeerSync);
            return Vec::new();
        };
        let mut out = Vec::new();
        let delta = self.lfib.take_delta();
        let epoch = group.epoch;
        if !delta.is_empty() {
            let sync = LfibSyncMsg {
                origin: self.id,
                epoch,
                entries: delta.added,
                removed: delta.removed,
            };
            let gfib_update = build_update(self.id, epoch, self.lfib.macs());
            if group.designated == self.id {
                // Apply own update and fan out directly.
                self.gfib.apply_update(&gfib_update);
                if let Some(role) = &self.designated_role {
                    for target in role.relay_targets(self.id) {
                        let xid = self.next_xid();
                        out.push(SwitchOutput::ToPeer(
                            target,
                            Message::lazy(xid, LazyMsg::GfibUpdate(gfib_update.clone())),
                        ));
                    }
                }
                let xid = self.next_xid();
                out.push(SwitchOutput::ToState(Message::lazy(
                    xid,
                    LazyMsg::LfibSync(sync),
                )));
            } else {
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    group.designated,
                    Message::lazy(xid, LazyMsg::LfibSync(sync)),
                ));
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    group.designated,
                    Message::lazy(xid, LazyMsg::GfibUpdate(gfib_update)),
                ));
            }
        }
        // Windowed traffic report. Quiet windows produce nothing: the
        // dissemination is asynchronous and event-driven (§III-D.3), so an
        // idle group costs the controller zero messages.
        let report = self.adv.take_report(group.group, epoch, now_ns);
        let report_is_empty = report.intensity.is_empty()
            && report.stats.iter().all(|(_, st)| {
                st.local_hits == 0 && st.group_hits == 0 && st.controller_punts == 0
            });
        if group.designated == self.id {
            if let Some(role) = &mut self.designated_role {
                if !report_is_empty {
                    role.absorb_report(&report);
                }
                if !role.is_quiescent() {
                    let controller_report = role.make_controller_report(epoch);
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToState(Message::lazy(
                        xid,
                        LazyMsg::StateReport(controller_report),
                    )));
                }
            }
        } else if !report_is_empty {
            let xid = self.next_xid();
            out.push(SwitchOutput::ToPeer(
                group.designated,
                Message::lazy(xid, LazyMsg::StateReport(report)),
            ));
        }
        out.push(SwitchOutput::SetTimer(
            SwitchTimer::PeerSync,
            group.sync_interval_ns,
        ));
        out
    }

    fn run_keepalive(&mut self, now_ns: u64) -> Vec<SwitchOutput> {
        let Some(wheel) = &mut self.wheel else {
            self.armed_timers.remove(&SwitchTimer::KeepAlive);
            return Vec::new();
        };
        let interval = self
            .group
            .as_ref()
            .map(|g| g.keepalive_interval_ns)
            .unwrap_or(1_000_000_000);
        let actions = wheel.tick(now_ns);
        let mut out = Vec::new();
        for a in actions {
            match a {
                WheelAction::SendKeepAlive { to, msg } => {
                    self.xid = self.xid.wrapping_add(1);
                    out.push(SwitchOutput::ToPeer(
                        to,
                        Message::lazy(self.xid, LazyMsg::KeepAlive(msg)),
                    ));
                }
                WheelAction::Report(report) => {
                    self.xid = self.xid.wrapping_add(1);
                    out.push(SwitchOutput::ToController(Message::lazy(
                        self.xid,
                        LazyMsg::WheelReport(report),
                    )));
                }
                WheelAction::ReportViaPeer { via, msg } => {
                    self.xid = self.xid.wrapping_add(1);
                    out.push(SwitchOutput::ToPeer(
                        via,
                        Message::lazy(self.xid, LazyMsg::WheelReport(msg)),
                    ));
                }
            }
        }
        out.push(SwitchOutput::SetTimer(SwitchTimer::KeepAlive, interval));
        out
    }

    fn apply_group_assign(&mut self, now_ns: u64, ga: &GroupAssignMsg) -> Vec<SwitchOutput> {
        let mut out = Vec::new();
        let old_epoch = self.group.as_ref().map(|g| g.epoch);
        let config = GroupConfig::from(ga);

        self.accepted_epochs.insert(ga.epoch);
        if let Some(old) = old_epoch {
            if old != ga.epoch {
                if self.preload_enabled {
                    let t = SwitchTimer::EpochGrace(old);
                    if self.armed_timers.insert(t) {
                        out.push(SwitchOutput::SetTimer(t, EPOCH_GRACE_NS));
                    }
                } else {
                    self.accepted_epochs.remove(&old);
                }
            }
        }

        self.wheel = Some(WheelPosition::new(
            self.id,
            ga.ring_prev,
            ga.ring_next,
            config.keepalive_interval_ns.max(1),
            now_ns,
        ));
        self.designated_role = if ga.designated == self.id {
            Some(DesignatedRole::new(ga.group, self.id, ga.members.clone()))
        } else {
            None
        };
        // Keep only filters for switches still in the group.
        let peers: Vec<SwitchId> = ga
            .members
            .iter()
            .copied()
            .filter(|&s| s != self.id)
            .collect();
        self.gfib.retain_peers(&peers);

        // Announce our filter to the new group immediately so peers'
        // G-FIBs converge. Exact L-FIB entries go up the state link only
        // when there are *pending host changes* (initial learning, VM
        // moves): a regrouping does not move hosts, so the C-LIB needs
        // nothing and the controller stays undisturbed.
        if !self.lfib.is_empty() {
            let gfib_update = build_update(self.id, ga.epoch, self.lfib.macs());
            let delta = self.lfib.take_delta();
            let sync = (!delta.is_empty()).then_some(LfibSyncMsg {
                origin: self.id,
                epoch: ga.epoch,
                entries: delta.added,
                removed: delta.removed,
            });
            if ga.designated == self.id {
                for target in peers {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToPeer(
                        target,
                        Message::lazy(xid, LazyMsg::GfibUpdate(gfib_update.clone())),
                    ));
                }
                self.gfib.apply_update(&gfib_update);
                if let Some(sync) = sync {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToState(Message::lazy(
                        xid,
                        LazyMsg::LfibSync(sync),
                    )));
                }
            } else {
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    ga.designated,
                    Message::lazy(xid, LazyMsg::GfibUpdate(gfib_update)),
                ));
                if let Some(sync) = sync {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToPeer(
                        ga.designated,
                        Message::lazy(xid, LazyMsg::LfibSync(sync)),
                    ));
                }
            }
        }

        self.group = Some(config.clone());
        for (timer, delay) in [
            (SwitchTimer::PeerSync, config.sync_interval_ns),
            (SwitchTimer::KeepAlive, config.keepalive_interval_ns),
            (SwitchTimer::LfibAge, self.lfib_max_idle_ns / 2),
        ] {
            if self.armed_timers.insert(timer) {
                out.push(SwitchOutput::SetTimer(timer, delay));
            }
        }
        out
    }

    fn absorb_lfib_sync(&mut self, sync: &LfibSyncMsg) -> Vec<SwitchOutput> {
        // Exact entries are only tracked by the controller; a member uses
        // the sync to refresh the origin's bloom filter incrementally by
        // rebuilding from the advertised entries (removals cannot clear
        // bloom bits, so a full GfibUpdate follows periodically anyway).
        if !crate::designated::sync_is_relevant(sync, self.current_epoch()) {
            return Vec::new();
        }
        Vec::new()
    }

    /// Records one flow arrival towards the destination switch when known.
    /// Every first packet counts: the paper's intensity unit is *new flows
    /// per second* (§III-C.1), not distinct pairs.
    fn note_flow(
        &mut self,
        _now_ns: u64,
        _src: MacAddr,
        _dst: MacAddr,
        dst_switch: Option<SwitchId>,
    ) {
        if let Some(s) = dst_switch {
            self.adv.record_flow_to(s);
        }
    }

    fn tunnel_to(
        &mut self,
        candidates: Vec<SwitchId>,
        frame: EthernetFrame,
        tenant: TenantId,
    ) -> Vec<SwitchOutput> {
        let epoch = self.current_epoch();
        candidates
            .into_iter()
            .map(|target| {
                SwitchOutput::Tunnel(
                    target,
                    EncapsulatedFrame::new(
                        EncapHeader::new(
                            self.id.underlay_ip(),
                            target.underlay_ip(),
                            tenant,
                            epoch,
                        ),
                        frame.clone(),
                    ),
                )
            })
            .collect()
    }

    /// Broadcast a frame to every group member plus local ports.
    fn group_broadcast(&mut self, frame: EthernetFrame, tenant: TenantId) -> Vec<SwitchOutput> {
        self.group_broadcast_except(frame, tenant, self.id)
    }

    fn group_broadcast_except(
        &mut self,
        frame: EthernetFrame,
        tenant: TenantId,
        except: SwitchId,
    ) -> Vec<SwitchOutput> {
        let members: Vec<SwitchId> = self
            .group
            .as_ref()
            .map(|g| {
                g.members
                    .iter()
                    .copied()
                    .filter(|&s| s != self.id && s != except)
                    .collect()
            })
            .unwrap_or_default();
        let mut out = self.tunnel_to(members, frame.clone(), tenant);
        out.push(SwitchOutput::FloodLocal(frame));
        out
    }

    fn apply_actions(
        &mut self,
        _now_ns: u64,
        _in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
        actions: &[Action],
    ) -> Vec<SwitchOutput> {
        let mut out = Vec::new();
        let mut frame = frame;
        let mut tenant = tenant;
        for action in actions {
            match *action {
                Action::Output(port) if port == PortNo::FLOOD || port == PortNo::ALL => {
                    out.push(SwitchOutput::FloodLocal(frame.clone()));
                }
                Action::Output(port) if port == PortNo::CONTROLLER => {
                    let msg = self.packet_in(PacketInReason::Action, PortNo::NONE, frame.encode());
                    out.push(SwitchOutput::ToController(msg));
                }
                Action::Output(port) if port.is_physical() => {
                    out.push(SwitchOutput::DeliverLocal(port, frame.clone()));
                }
                Action::Output(_) => {}
                Action::SetVlan(t) => {
                    tenant = t;
                    frame.vlan = Some(lazyctrl_net::VlanTag::for_tenant(t));
                }
                Action::StripVlan => {
                    frame.vlan = None;
                }
                Action::Drop => return out,
                Action::Encap { remote, key } => {
                    if let Some(target) = SwitchId::from_underlay_ip(remote) {
                        out.push(SwitchOutput::Tunnel(
                            target,
                            EncapsulatedFrame::new(
                                EncapHeader::new(self.id.underlay_ip(), remote, tenant, key),
                                frame.clone(),
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}
