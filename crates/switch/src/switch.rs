//! The composed LazyCtrl edge switch.
//!
//! `EdgeSwitch` is a deterministic state machine: packets, control messages
//! and timers go in; [`SwitchOutput`] effects come out. The split mirrors
//! the prototype's ovs-vswitchd modules (§IV-A): Ctrl-IF (control link
//! I/O), state advertisement, FIB maintenance, and state reporting (active
//! only on the designated switch).
//!
//! Every handler writes its effects into a caller-owned
//! [`OutputSink<SwitchOutput>`] instead of returning a fresh `Vec`: the
//! driver owns one scratch buffer, drains it after each event, and the
//! per-packet path performs no heap allocation in steady state (see
//! `DESIGN.md` §7, "Output sinks and message layout"). Output order is
//! push order — identical to the order the old `Vec` returns carried.

use std::collections::{BTreeSet, VecDeque};

use lazyctrl_net::{
    ArpOp, EncapHeader, EncapsulatedFrame, EthernetFrame, GroupId, HostId, MacAddr, Packet, PortNo,
    SwitchId, TenantId,
};
use lazyctrl_proto::{
    Action, GroupAssignMsg, LazyMsg, LfibSyncMsg, Message, OfMessage, OutputSink, PacketInMsg,
    PacketInReason, PacketOutMsg,
};

use crate::forwarding::{forward_packet, DropReason, ForwardingDecision};
use crate::gfib::build_update;
use crate::wheel::{WheelAction, WheelPosition};
use crate::{DesignatedRole, FlowTable, Gfib, Lfib, StateAdvertiser};

/// How long a superseded epoch stays accepted after a regroup when preload
/// is enabled (Appendix B, "preload for seamless grouping update"). Long
/// enough for in-flight packets and already-punted flows to settle.
const EPOCH_GRACE_NS: u64 = 10_000_000_000;

/// Default L-FIB aging horizon. Hosts refresh their entry whenever they
/// send; without periodic gratuitous ARP a quiet VM must not be forgotten,
/// so the default is a full day (VM removal is signalled explicitly).
const DEFAULT_LFIB_MAX_IDLE_NS: u64 = 86_400_000_000_000; // 24 h

/// Base congestion-pace window. One controller pressure notice defers
/// NoMatch punts for at least this long; repeated pressure doubles it up
/// to [`PACE_MAX_DOUBLINGS`].
const PACE_BASE_NS: u64 = 5_000_000; // 5 ms

/// Cap on pace-window doublings (5 ms × 2⁶ = 320 ms worst case).
const PACE_MAX_DOUBLINGS: u32 = 6;

/// Most NoMatch punts a pacing switch defers; overflow drops the oldest
/// (the host retries, exactly as a dropped PacketIn on a real control
/// channel would).
const PACE_BUFFER_CAP: usize = 64;

/// Deterministic pace jitter: a splitmix64-style hash of the switch id
/// and backoff depth folded into `[0, window_ns)`. De-synchronizes the
/// pace windows of switches that heard the same pressure notice in the
/// same tick — the thundering herd at window close — without drawing
/// from any RNG stream (replicated-RNG lockstep must hold).
fn pace_jitter_ns(switch: SwitchId, attempts: u32, window_ns: u64) -> u64 {
    if window_ns == 0 {
        return 0;
    }
    let mut x = ((switch.0 as u64) << 32) ^ (attempts as u64) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % window_ns
}

/// Group membership parameters installed by a `GroupAssign`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// The group this switch belongs to.
    pub group: GroupId,
    /// Current grouping epoch.
    pub epoch: u32,
    /// All members (ring order).
    pub members: Vec<SwitchId>,
    /// The designated switch.
    pub designated: SwitchId,
    /// Backup designated switches.
    pub backups: Vec<SwitchId>,
    /// Peer-sync period (ns).
    pub sync_interval_ns: u64,
    /// Keep-alive period (ns).
    pub keepalive_interval_ns: u64,
}

impl From<&GroupAssignMsg> for GroupConfig {
    fn from(m: &GroupAssignMsg) -> Self {
        GroupConfig {
            group: m.group,
            epoch: m.epoch,
            members: m.members.clone(),
            designated: m.designated,
            backups: m.backups.clone(),
            sync_interval_ns: m.sync_interval_ms as u64 * 1_000_000,
            keepalive_interval_ns: m.keepalive_interval_ms as u64 * 1_000_000,
        }
    }
}

/// Timers the switch asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwitchTimer {
    /// Periodic peer-link state sync (§III-D.3 asynchronous dissemination).
    PeerSync,
    /// Periodic wheel keep-alive.
    KeepAlive,
    /// Periodic L-FIB aging sweep.
    LfibAge,
    /// One-shot: stop accepting the given superseded epoch.
    EpochGrace(u32),
    /// One-shot: the congestion-pace window closed — flush deferred
    /// NoMatch punts and decay the backoff. Unlike `KeepAlive`/
    /// `PeerSync` this must keep firing on a switch whose control link
    /// is dark, or deferred setups would wedge until the link heals.
    PaceFlush,
}

/// Effects the switch wants performed.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchOutput {
    /// Send on the control link to the controller.
    ToController(Message),
    /// Send on the peer link to a group member.
    ToPeer(SwitchId, Message),
    /// Send on the state link (designated switch only).
    ToState(Message),
    /// Tunnel an encapsulated frame across the underlay to a peer edge
    /// switch.
    Tunnel(SwitchId, EncapsulatedFrame),
    /// Deliver to a local host port.
    DeliverLocal(PortNo, EthernetFrame),
    /// Flood to all local host ports (except the ingress port).
    FloodLocal(EthernetFrame),
    /// Arm a timer after the given delay (ns). Periodic timers re-arm from
    /// their handler; the driver just schedules each request once.
    SetTimer(SwitchTimer, u64),
}

/// The edge switch state machine.
#[derive(Debug)]
pub struct EdgeSwitch {
    id: SwitchId,
    flow_table: FlowTable,
    lfib: Lfib,
    gfib: Gfib,
    adv: StateAdvertiser,
    group: Option<GroupConfig>,
    designated_role: Option<DesignatedRole>,
    wheel: Option<WheelPosition>,
    accepted_epochs: BTreeSet<u32>,
    blocked_arp: BTreeSet<TenantId>,
    armed_timers: BTreeSet<SwitchTimer>,
    /// Report bloom-filter mis-deliveries to the controller (Fig. 5's
    /// optional corrective path).
    pub report_false_positives: bool,
    /// Preload grace for superseded epochs (Appendix B). When disabled,
    /// in-flight packets from the old epoch drop at regrouping.
    pub preload_enabled: bool,
    /// Enforce the tunnel-key epoch gate on received packets. Off by
    /// default: misdelivery is already caught by the L-FIB false-positive
    /// path, so the gate only adds transient drops around regroupings.
    /// The preload ablation turns it on to measure exactly that cost.
    pub epoch_gating: bool,
    /// When false the datapath behaves like a plain OpenFlow 1.0 switch:
    /// flow-table lookup, then punt — no L-FIB/G-FIB resolution. This is
    /// the paper's "normal mode" baseline (§V-A).
    pub datapath_learning: bool,
    /// L-FIB entries idle longer than this age out.
    pub lfib_max_idle_ns: u64,
    /// Congestion pacing: virtual time until which NoMatch punts are
    /// deferred (an ECN-style `CongestionNotice` from the controller
    /// opens/extends the window under capped exponential backoff).
    pace_until_ns: u64,
    /// Current backoff depth in doublings; ratchets up on pressure,
    /// unwinds one step per closed window.
    pace_attempts: u32,
    /// NoMatch punts deferred while pacing, flushed at window close.
    /// Bounded by [`PACE_BUFFER_CAP`].
    paced_punts: VecDeque<Message>,
    /// Total punts ever deferred (observer counter).
    punts_paced: u64,
    /// Deferred punts dropped on buffer overflow (observer counter).
    pace_drops: u64,
    xid: u32,
    packets_processed: u64,
    packet_ins_sent: u64,
    /// Last time the flow table was swept for expired rules (amortized
    /// lazy expiry; OpenFlow idle/hard timeouts).
    last_flow_expiry_ns: u64,
    /// Scratch for matched flow-rule actions (filled by `forward_packet`,
    /// consumed by `apply_actions`); reused across packets so a rule hit
    /// costs no allocation.
    scratch_actions: Vec<Action>,
    /// Scratch for G-FIB candidate / broadcast target switch lists;
    /// reused across packets for the same reason.
    scratch_targets: Vec<SwitchId>,
}

impl EdgeSwitch {
    /// Creates a switch that is not yet in any group (it will punt
    /// everything unknown to the controller, like a plain OpenFlow switch).
    pub fn new(id: SwitchId) -> Self {
        EdgeSwitch {
            id,
            flow_table: FlowTable::new(),
            lfib: Lfib::new(),
            gfib: Gfib::new(),
            adv: StateAdvertiser::new(id),
            group: None,
            designated_role: None,
            wheel: None,
            accepted_epochs: BTreeSet::new(),
            blocked_arp: BTreeSet::new(),
            armed_timers: BTreeSet::new(),
            report_false_positives: false,
            preload_enabled: true,
            epoch_gating: false,
            datapath_learning: true,
            lfib_max_idle_ns: DEFAULT_LFIB_MAX_IDLE_NS,
            pace_until_ns: 0,
            pace_attempts: 0,
            paced_punts: VecDeque::new(),
            punts_paced: 0,
            pace_drops: 0,
            xid: 0,
            packets_processed: 0,
            packet_ins_sent: 0,
            last_flow_expiry_ns: 0,
            scratch_actions: Vec::new(),
            scratch_targets: Vec::new(),
        }
    }

    /// This switch's id.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// The current group configuration, if assigned.
    pub fn group(&self) -> Option<&GroupConfig> {
        self.group.as_ref()
    }

    /// True while this switch serves as its group's designated switch.
    pub fn is_designated(&self) -> bool {
        self.designated_role.is_some()
    }

    /// Direct read access to the L-FIB.
    pub fn lfib(&self) -> &Lfib {
        &self.lfib
    }

    /// Direct read access to the G-FIB.
    pub fn gfib(&self) -> &Gfib {
        &self.gfib
    }

    /// Direct read access to the flow table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// Total packets processed.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Total `PacketIn`s sent to the controller.
    pub fn packet_ins_sent(&self) -> u64 {
        self.packet_ins_sent
    }

    /// True while NoMatch punts are deferred under congestion pacing.
    pub fn is_pacing(&self, now_ns: u64) -> bool {
        now_ns < self.pace_until_ns
    }

    /// Current congestion-backoff depth, in window doublings.
    pub fn pace_attempts(&self) -> u32 {
        self.pace_attempts
    }

    /// NoMatch punts deferred by congestion pacing so far.
    pub fn punts_paced(&self) -> u64 {
        self.punts_paced
    }

    /// Deferred punts dropped on pace-buffer overflow.
    pub fn pace_drops(&self) -> u64 {
        self.pace_drops
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    fn current_epoch(&self) -> u32 {
        self.group.as_ref().map(|g| g.epoch).unwrap_or(0)
    }

    fn designated(&self) -> Option<SwitchId> {
        self.group.as_ref().map(|g| g.designated)
    }

    fn packet_in(
        &mut self,
        reason: PacketInReason,
        in_port: PortNo,
        data: impl Into<bytes::Bytes>,
    ) -> Message {
        self.packet_ins_sent += 1;
        let xid = self.next_xid();
        Message::of(
            xid,
            OfMessage::PacketIn(PacketInMsg {
                buffer_id: u32::MAX,
                in_port,
                reason,
                data: data.into(),
            }),
        )
    }

    /// Builds a `NoMatch` punt and either sends it or, while the switch
    /// is pacing under controller congestion pressure, defers it to the
    /// bounded pace buffer (flushed when the window closes; overflow
    /// drops the oldest). Only flow setups route through here —
    /// keepalives, wheel reports and corrective reports are never paced.
    fn punt_no_match(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        data: impl Into<bytes::Bytes>,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let msg = self.packet_in(PacketInReason::NoMatch, in_port, data);
        if now_ns < self.pace_until_ns {
            self.punts_paced += 1;
            self.paced_punts.push_back(msg);
            while self.paced_punts.len() > PACE_BUFFER_CAP {
                self.paced_punts.pop_front();
                self.pace_drops += 1;
            }
        } else {
            out.push(SwitchOutput::ToController(msg));
        }
    }

    /// Handles a plain frame arriving from a directly attached host.
    pub fn handle_local_frame(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        self.packets_processed += 1;
        // Amortized flow-rule expiry (idle/hard timeouts), at most once a
        // second of virtual time.
        if now_ns.saturating_sub(self.last_flow_expiry_ns) >= 1_000_000_000 {
            self.last_flow_expiry_ns = now_ns;
            let _ = self.flow_table.expire(now_ns);
        }
        let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
        // Source learning (live state dissemination, step i).
        self.lfib.learn(frame.src, tenant, in_port, now_ns);

        if self.datapath_learning {
            if let Some(arp) = frame.as_arp() {
                if arp.op == ArpOp::Request {
                    return self.handle_arp_request(now_ns, in_port, frame, tenant, out);
                }
                // ARP replies are unicast; fall through to normal forwarding.
            }
        }
        self.forward_plain(now_ns, in_port, frame, tenant, out)
    }

    /// The three-level ARP cascade of §III-D.3.
    fn handle_arp_request(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let arp = frame.as_arp().expect("caller verified this is ARP");
        let target_mac = HostId::from_ip(arp.target_ip).map(|h| h.mac());

        // Level i: a local host owns the target → flood locally only (the
        // owner will reply).
        if let Some(mac) = target_mac {
            if self.lfib.lookup(mac).is_some() {
                out.push(SwitchOutput::FloodLocal(frame));
                return;
            }
            // Level ii(a): the G-FIB recognizes the target → tunnel the
            // request straight to the candidate switches.
            let mut candidates = std::mem::take(&mut self.scratch_targets);
            candidates.clear();
            self.gfib.query_into(mac, &mut candidates);
            if !candidates.is_empty() {
                self.note_flow(now_ns, frame.src, mac, candidates.first().copied());
                self.tunnel_to(&candidates, frame, tenant, out);
                self.scratch_targets = candidates;
                return;
            }
            self.scratch_targets = candidates;
        }
        // Level ii(b): not recognized in-group → designated switch runs an
        // intra-group broadcast.
        if let Some(designated) = self.designated() {
            if designated != self.id {
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    designated,
                    Message::of(
                        xid,
                        OfMessage::PacketOut(PacketOutMsg {
                            buffer_id: u32::MAX,
                            in_port,
                            actions: vec![Action::Output(PortNo::FLOOD)],
                            data: frame.encode().into(),
                        }),
                    ),
                ));
                return;
            }
            // I am the designated switch: broadcast in-group, and escalate
            // to the controller unless this tenant's ARP is blocked.
            self.group_broadcast(frame.clone(), tenant, out);
            if !self.blocked_arp.contains(&tenant) {
                self.adv.record_punt();
                self.punt_no_match(now_ns, in_port, frame.encode(), out);
            }
            return;
        }
        // Level iii (no group at all): straight to the controller.
        if self.blocked_arp.contains(&tenant) {
            return;
        }
        self.adv.record_punt();
        self.punt_no_match(now_ns, in_port, frame.encode(), out);
    }

    /// Fig. 5 for non-ARP plain packets.
    fn forward_plain(
        &mut self,
        now_ns: u64,
        in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let current = self.current_epoch();
        let gating = self.epoch_gating;
        // Plain-OpenFlow datapath: consult only the flow table. The
        // empty tables are built only on that (cold) path.
        let empties;
        let (lfib, gfib) = if self.datapath_learning {
            (&self.lfib, &self.gfib)
        } else {
            empties = (Lfib::new(), Gfib::new());
            (&empties.0, &empties.1)
        };
        let epochs = &self.accepted_epochs;
        let pkt = Packet::Plain(frame);
        let decision = forward_packet(
            &pkt,
            in_port,
            &mut self.flow_table,
            lfib,
            gfib,
            |e| !gating || epochs.is_empty() || e >= current || epochs.contains(&e),
            now_ns,
            &mut self.scratch_actions,
            &mut self.scratch_targets,
        );
        let Packet::Plain(frame) = pkt else {
            unreachable!("constructed as plain above")
        };
        match decision {
            ForwardingDecision::FlowRule => {
                let actions = std::mem::take(&mut self.scratch_actions);
                // Rule-forwarded flows still count towards intensity: the
                // destination switch is in the rule's Encap action.
                let dst_switch = actions.iter().find_map(|a| match a {
                    Action::Encap { remote, .. } => SwitchId::from_underlay_ip(*remote),
                    Action::Output(p) if p.is_physical() => Some(self.id),
                    _ => None,
                });
                self.note_flow(now_ns, frame.src, frame.dst, dst_switch);
                self.apply_actions(now_ns, in_port, frame, tenant, &actions, out);
                self.scratch_actions = actions;
            }
            ForwardingDecision::DeliverLocal(port) => {
                self.adv.record_local_hit();
                self.note_flow(now_ns, frame.src, frame.dst, Some(self.id));
                out.push(SwitchOutput::DeliverLocal(port, frame));
            }
            ForwardingDecision::EncapTo => {
                let candidates = std::mem::take(&mut self.scratch_targets);
                self.adv.record_group_hit();
                self.note_flow(now_ns, frame.src, frame.dst, candidates.first().copied());
                self.tunnel_to(&candidates, frame, tenant, out);
                self.scratch_targets = candidates;
            }
            ForwardingDecision::PuntToController => {
                self.adv.record_punt();
                self.note_flow(now_ns, frame.src, frame.dst, None);
                self.punt_no_match(now_ns, in_port, frame.encode(), out);
            }
            ForwardingDecision::Drop(_) => {}
        }
    }

    /// Handles an encapsulated packet arriving from the underlay.
    pub fn handle_tunnel_packet(
        &mut self,
        now_ns: u64,
        encap: EncapsulatedFrame,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        self.packets_processed += 1;
        // Flooded intra-group broadcasts (ARP) fan out locally.
        if encap.inner.is_flood() {
            out.push(SwitchOutput::FloodLocal(encap.into_inner()));
            return;
        }
        // Epoch gate (only when enabled): packets from this switch's
        // current epoch, from a *newer* epoch (the controller's view is
        // ahead mid-update), or from a superseded epoch still within the
        // preload grace window are valid; anything older is dropped.
        let current = self.current_epoch();
        let gating = self.epoch_gating;
        let epochs = &self.accepted_epochs;
        let pkt = Packet::Encapsulated(encap);
        let decision = forward_packet(
            &pkt,
            PortNo::NONE,
            &mut self.flow_table,
            &self.lfib,
            &self.gfib,
            |e| !gating || epochs.is_empty() || e >= current || epochs.contains(&e),
            now_ns,
            &mut self.scratch_actions,
            &mut self.scratch_targets,
        );
        let Packet::Encapsulated(encap) = pkt else {
            unreachable!("constructed as encapsulated above")
        };
        match decision {
            ForwardingDecision::DeliverLocal(port) => {
                out.push(SwitchOutput::DeliverLocal(port, encap.into_inner()));
            }
            ForwardingDecision::Drop(DropReason::FalsePositive) if self.report_false_positives => {
                // Ship the full encapsulated packet so the controller can
                // identify the mis-forwarding sender from the outer header
                // and install a corrective rule there (Fig. 5, line 28+).
                let msg =
                    self.packet_in(PacketInReason::FalsePositive, PortNo::NONE, encap.encode());
                out.push(SwitchOutput::ToController(msg));
            }
            _ => {}
        }
    }

    /// Handles a message from the controller on the control link.
    pub fn handle_control_message(
        &mut self,
        now_ns: u64,
        msg: &Message,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        match &msg.body {
            lazyctrl_proto::MessageBody::Of(of) => match of {
                OfMessage::Hello => {
                    out.push(SwitchOutput::ToController(Message::of(
                        msg.xid,
                        OfMessage::Hello,
                    )));
                }
                OfMessage::EchoRequest(data) => out.push(SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::EchoReply(data.clone()),
                ))),
                OfMessage::FeaturesRequest => out.push(SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::FeaturesReply {
                        datapath_id: self.id.0 as u64,
                        n_ports: 48,
                    },
                ))),
                OfMessage::StatsRequest => out.push(SwitchOutput::ToController(Message::of(
                    msg.xid,
                    OfMessage::StatsReply {
                        packets: self.packets_processed,
                        flows: self.flow_table.len() as u32,
                        packet_ins: self.packet_ins_sent,
                    },
                ))),
                OfMessage::FlowMod(fm) => {
                    self.flow_table.apply(fm, now_ns);
                }
                OfMessage::PacketOut(po) => {
                    let Ok(frame) = EthernetFrame::decode(&po.data) else {
                        return;
                    };
                    let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                    self.apply_actions(now_ns, po.in_port, frame, tenant, &po.actions, out);
                }
                _ => {}
            },
            lazyctrl_proto::MessageBody::Lazy(lazy) => match lazy {
                LazyMsg::GroupAssign(ga) => self.apply_group_assign(now_ns, ga, out),
                LazyMsg::BlockArp { tenant, block } => {
                    if *block {
                        self.blocked_arp.insert(*tenant);
                    } else {
                        self.blocked_arp.remove(tenant);
                    }
                }
                LazyMsg::KeepAlive(_) => {
                    if let Some(w) = &mut self.wheel {
                        w.on_controller_keepalive(now_ns);
                    }
                }
                LazyMsg::GfibUpdate(gu) => {
                    self.gfib.apply_update(gu);
                }
                LazyMsg::LfibSync(sync) => {
                    // Controller pushing other switches' L-FIBs after a
                    // regroup goes through the designated switch; accepting
                    // it here too keeps small setups simple.
                    self.absorb_lfib_sync(sync);
                }
                LazyMsg::CongestionNotice(cn) => {
                    // ECN-style pressure from an overloaded controller:
                    // deepen the pace window under capped exponential
                    // backoff (the notice's level adds extra doublings)
                    // with deterministic hash jitter, and defer NoMatch
                    // punts until it closes. Keepalives and wheel reports
                    // keep flowing — liveness outranks flow setup.
                    self.pace_attempts =
                        (self.pace_attempts + 1 + cn.level as u32).min(PACE_MAX_DOUBLINGS);
                    let window = PACE_BASE_NS << self.pace_attempts;
                    let until =
                        now_ns + window + pace_jitter_ns(self.id, self.pace_attempts, window / 4);
                    self.pace_until_ns = self.pace_until_ns.max(until);
                    let t = SwitchTimer::PaceFlush;
                    if self.armed_timers.insert(t) {
                        out.push(SwitchOutput::SetTimer(t, self.pace_until_ns - now_ns));
                    }
                }
                _ => {}
            },
            // Controller-to-controller traffic never terminates on a switch.
            lazyctrl_proto::MessageBody::Cluster(_) => {}
        }
    }

    /// Handles a message from a group member on the peer link.
    pub fn handle_peer_message(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        match &msg.body {
            lazyctrl_proto::MessageBody::Lazy(lazy) => match lazy {
                LazyMsg::KeepAlive(ka) => {
                    if let Some(w) = &mut self.wheel {
                        w.on_peer_keepalive(ka.from, now_ns);
                    }
                }
                LazyMsg::GfibUpdate(gu)
                    if crate::designated::gfib_is_relevant(gu, self.current_epoch()) =>
                {
                    self.gfib.apply_update(gu);
                    // Designated switch relays to the rest of the group.
                    if let Some(role) = &self.designated_role {
                        for target in role.relay_targets(from) {
                            let xid = self.next_xid();
                            out.push(SwitchOutput::ToPeer(
                                target,
                                Message::lazy(xid, LazyMsg::GfibUpdate(gu.clone())),
                            ));
                        }
                    }
                }
                LazyMsg::LfibSync(sync) => {
                    self.absorb_lfib_sync(sync);
                    // Designated switch relays exact entries up the state
                    // link for the controller's C-LIB.
                    if self.designated_role.is_some() {
                        let xid = self.next_xid();
                        out.push(SwitchOutput::ToState(Message::lazy(
                            xid,
                            LazyMsg::LfibSync(sync.clone()),
                        )));
                    }
                }
                LazyMsg::StateReport(report) => {
                    if let Some(role) = &mut self.designated_role {
                        role.absorb_report(report);
                    }
                }
                LazyMsg::WheelReport(report) => {
                    // Relay for a neighbour whose control link is dead.
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToController(Message::lazy(
                        xid,
                        LazyMsg::WheelReport(*report),
                    )));
                }
                _ => {}
            },
            lazyctrl_proto::MessageBody::Of(OfMessage::PacketOut(po)) => {
                // A member asked the designated switch to run an intra-group
                // ARP broadcast (§III-D.3 level ii).
                let Ok(frame) = EthernetFrame::decode(&po.data) else {
                    return;
                };
                let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                if self.designated_role.is_some() {
                    self.group_broadcast_except(frame.clone(), tenant, from, out);
                    // Escalate to the controller (level iii) unless blocked.
                    if !self.blocked_arp.contains(&tenant) {
                        self.punt_no_match(now_ns, po.in_port, frame.encode(), out);
                    }
                }
            }
            _ => {}
        }
    }

    /// Handles a timer the driver armed earlier.
    pub fn on_timer(
        &mut self,
        now_ns: u64,
        timer: SwitchTimer,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        match timer {
            SwitchTimer::PeerSync => self.run_peer_sync(now_ns, out),
            SwitchTimer::KeepAlive => self.run_keepalive(now_ns, out),
            SwitchTimer::LfibAge => {
                self.lfib.age(now_ns, self.lfib_max_idle_ns);
                out.push(SwitchOutput::SetTimer(
                    SwitchTimer::LfibAge,
                    self.lfib_max_idle_ns / 2,
                ));
            }
            SwitchTimer::EpochGrace(epoch) => {
                self.accepted_epochs.remove(&epoch);
                self.armed_timers.remove(&SwitchTimer::EpochGrace(epoch));
            }
            SwitchTimer::PaceFlush => {
                self.armed_timers.remove(&SwitchTimer::PaceFlush);
                if now_ns < self.pace_until_ns {
                    // Fresh pressure extended the window after this timer
                    // was armed; sleep out the remainder.
                    if self.armed_timers.insert(SwitchTimer::PaceFlush) {
                        out.push(SwitchOutput::SetTimer(
                            SwitchTimer::PaceFlush,
                            self.pace_until_ns - now_ns,
                        ));
                    }
                    return;
                }
                // Window closed: release deferred setups and unwind one
                // backoff step — repeated pressure ratchets up, quiet
                // periods decay back down.
                self.pace_attempts = self.pace_attempts.saturating_sub(1);
                while let Some(msg) = self.paced_punts.pop_front() {
                    out.push(SwitchOutput::ToController(msg));
                }
            }
        }
    }

    fn run_peer_sync(&mut self, now_ns: u64, out: &mut OutputSink<SwitchOutput>) {
        // Copy the scalars out of the group config (no members clone — the
        // periodic sync is steady-state work).
        let Some((group_id, epoch, designated, sync_interval_ns)) = self
            .group
            .as_ref()
            .map(|g| (g.group, g.epoch, g.designated, g.sync_interval_ns))
        else {
            self.armed_timers.remove(&SwitchTimer::PeerSync);
            return;
        };
        let delta = self.lfib.take_delta();
        if !delta.is_empty() {
            let sync = LfibSyncMsg {
                origin: self.id,
                epoch,
                entries: delta.added,
                removed: delta.removed,
            };
            let gfib_update = build_update(self.id, epoch, self.lfib.macs());
            if designated == self.id {
                // Apply own update and fan out directly.
                self.gfib.apply_update(&gfib_update);
                if let Some(role) = &self.designated_role {
                    for target in role.relay_targets(self.id) {
                        let xid = self.next_xid();
                        out.push(SwitchOutput::ToPeer(
                            target,
                            Message::lazy(xid, LazyMsg::gfib_update(gfib_update.clone())),
                        ));
                    }
                }
                let xid = self.next_xid();
                out.push(SwitchOutput::ToState(Message::lazy(
                    xid,
                    LazyMsg::lfib_sync(sync),
                )));
            } else {
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    designated,
                    Message::lazy(xid, LazyMsg::lfib_sync(sync)),
                ));
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    designated,
                    Message::lazy(xid, LazyMsg::gfib_update(gfib_update)),
                ));
            }
        }
        // Windowed traffic report. Quiet windows produce nothing: the
        // dissemination is asynchronous and event-driven (§III-D.3), so an
        // idle group costs the controller zero messages.
        let report = self.adv.take_report(group_id, epoch, now_ns);
        let report_is_empty = report.intensity.is_empty()
            && report.stats.iter().all(|(_, st)| {
                st.local_hits == 0 && st.group_hits == 0 && st.controller_punts == 0
            });
        if designated == self.id {
            if let Some(role) = &mut self.designated_role {
                if !report_is_empty {
                    role.absorb_report(&report);
                }
                if !role.is_quiescent() {
                    let controller_report = role.make_controller_report(epoch);
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToState(Message::lazy(
                        xid,
                        LazyMsg::state_report(controller_report),
                    )));
                }
            }
        } else if !report_is_empty {
            let xid = self.next_xid();
            out.push(SwitchOutput::ToPeer(
                designated,
                Message::lazy(xid, LazyMsg::state_report(report)),
            ));
        }
        out.push(SwitchOutput::SetTimer(
            SwitchTimer::PeerSync,
            sync_interval_ns,
        ));
    }

    fn run_keepalive(&mut self, now_ns: u64, out: &mut OutputSink<SwitchOutput>) {
        let Some(wheel) = &mut self.wheel else {
            self.armed_timers.remove(&SwitchTimer::KeepAlive);
            return;
        };
        let interval = self
            .group
            .as_ref()
            .map(|g| g.keepalive_interval_ns)
            .unwrap_or(1_000_000_000);
        // Disjoint-field closure captures: the wheel drives the visitor
        // while xid and the sink absorb the actions — no scratch Vec.
        let xid = &mut self.xid;
        wheel.tick_each(now_ns, |a| match a {
            WheelAction::SendKeepAlive { to, msg } => {
                *xid = xid.wrapping_add(1);
                out.push(SwitchOutput::ToPeer(
                    to,
                    Message::lazy(*xid, LazyMsg::KeepAlive(msg)),
                ));
            }
            WheelAction::Report(report) => {
                *xid = xid.wrapping_add(1);
                out.push(SwitchOutput::ToController(Message::lazy(
                    *xid,
                    LazyMsg::WheelReport(report),
                )));
            }
            WheelAction::ReportViaPeer { via, msg } => {
                *xid = xid.wrapping_add(1);
                out.push(SwitchOutput::ToPeer(
                    via,
                    Message::lazy(*xid, LazyMsg::WheelReport(msg)),
                ));
            }
        });
        out.push(SwitchOutput::SetTimer(SwitchTimer::KeepAlive, interval));
    }

    fn apply_group_assign(
        &mut self,
        now_ns: u64,
        ga: &GroupAssignMsg,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let old_epoch = self.group.as_ref().map(|g| g.epoch);
        let config = GroupConfig::from(ga);

        self.accepted_epochs.insert(ga.epoch);
        if let Some(old) = old_epoch {
            if old != ga.epoch {
                if self.preload_enabled {
                    let t = SwitchTimer::EpochGrace(old);
                    if self.armed_timers.insert(t) {
                        out.push(SwitchOutput::SetTimer(t, EPOCH_GRACE_NS));
                    }
                } else {
                    self.accepted_epochs.remove(&old);
                }
            }
        }

        self.wheel = Some(WheelPosition::new(
            self.id,
            ga.ring_prev,
            ga.ring_next,
            config.keepalive_interval_ns.max(1),
            now_ns,
        ));
        self.designated_role = if ga.designated == self.id {
            Some(DesignatedRole::new(ga.group, self.id, ga.members.clone()))
        } else {
            None
        };
        // Keep only filters for switches still in the group.
        let peers: Vec<SwitchId> = ga
            .members
            .iter()
            .copied()
            .filter(|&s| s != self.id)
            .collect();
        self.gfib.retain_peers(&peers);

        // Announce our filter to the new group immediately so peers'
        // G-FIBs converge. Exact L-FIB entries go up the state link only
        // when there are *pending host changes* (initial learning, VM
        // moves): a regrouping does not move hosts, so the C-LIB needs
        // nothing and the controller stays undisturbed.
        if !self.lfib.is_empty() {
            let gfib_update = build_update(self.id, ga.epoch, self.lfib.macs());
            let delta = self.lfib.take_delta();
            let sync = (!delta.is_empty()).then_some(LfibSyncMsg {
                origin: self.id,
                epoch: ga.epoch,
                entries: delta.added,
                removed: delta.removed,
            });
            if ga.designated == self.id {
                for target in peers {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToPeer(
                        target,
                        Message::lazy(xid, LazyMsg::gfib_update(gfib_update.clone())),
                    ));
                }
                self.gfib.apply_update(&gfib_update);
                if let Some(sync) = sync {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToState(Message::lazy(
                        xid,
                        LazyMsg::lfib_sync(sync),
                    )));
                }
            } else {
                let xid = self.next_xid();
                out.push(SwitchOutput::ToPeer(
                    ga.designated,
                    Message::lazy(xid, LazyMsg::gfib_update(gfib_update)),
                ));
                if let Some(sync) = sync {
                    let xid = self.next_xid();
                    out.push(SwitchOutput::ToPeer(
                        ga.designated,
                        Message::lazy(xid, LazyMsg::lfib_sync(sync)),
                    ));
                }
            }
        }

        self.group = Some(config.clone());
        for (timer, delay) in [
            (SwitchTimer::PeerSync, config.sync_interval_ns),
            (SwitchTimer::KeepAlive, config.keepalive_interval_ns),
            (SwitchTimer::LfibAge, self.lfib_max_idle_ns / 2),
        ] {
            if self.armed_timers.insert(timer) {
                out.push(SwitchOutput::SetTimer(timer, delay));
            }
        }
    }

    /// Deliberate no-op: exact entries are only tracked by the
    /// controller. A member's G-FIB is refreshed by the periodic
    /// `GfibUpdate` that accompanies every sync (removals cannot clear
    /// bloom bits, so incremental absorption would buy nothing — the
    /// full filter push is the refresh).
    fn absorb_lfib_sync(&mut self, _sync: &LfibSyncMsg) {}

    /// Records one flow arrival towards the destination switch when known.
    /// Every first packet counts: the paper's intensity unit is *new flows
    /// per second* (§III-C.1), not distinct pairs.
    fn note_flow(
        &mut self,
        _now_ns: u64,
        _src: MacAddr,
        _dst: MacAddr,
        dst_switch: Option<SwitchId>,
    ) {
        if let Some(s) = dst_switch {
            self.adv.record_flow_to(s);
        }
    }

    fn tunnel_to(
        &mut self,
        candidates: &[SwitchId],
        frame: EthernetFrame,
        tenant: TenantId,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let epoch = self.current_epoch();
        for &target in candidates {
            out.push(SwitchOutput::Tunnel(
                target,
                EncapsulatedFrame::new(
                    EncapHeader::new(self.id.underlay_ip(), target.underlay_ip(), tenant, epoch),
                    // Arc-backed payload: each copy is a refcount bump.
                    frame.clone(),
                ),
            ));
        }
    }

    /// Broadcast a frame to every group member plus local ports.
    fn group_broadcast(
        &mut self,
        frame: EthernetFrame,
        tenant: TenantId,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        self.group_broadcast_except(frame, tenant, self.id, out)
    }

    fn group_broadcast_except(
        &mut self,
        frame: EthernetFrame,
        tenant: TenantId,
        except: SwitchId,
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let mut members = std::mem::take(&mut self.scratch_targets);
        members.clear();
        if let Some(g) = self.group.as_ref() {
            members.extend(
                g.members
                    .iter()
                    .copied()
                    .filter(|&s| s != self.id && s != except),
            );
        }
        self.tunnel_to(&members, frame.clone(), tenant, out);
        self.scratch_targets = members;
        out.push(SwitchOutput::FloodLocal(frame));
    }

    fn apply_actions(
        &mut self,
        _now_ns: u64,
        _in_port: PortNo,
        frame: EthernetFrame,
        tenant: TenantId,
        actions: &[Action],
        out: &mut OutputSink<SwitchOutput>,
    ) {
        let mut frame = frame;
        let mut tenant = tenant;
        for action in actions {
            match *action {
                Action::Output(port) if port == PortNo::FLOOD || port == PortNo::ALL => {
                    out.push(SwitchOutput::FloodLocal(frame.clone()));
                }
                Action::Output(port) if port == PortNo::CONTROLLER => {
                    let msg = self.packet_in(PacketInReason::Action, PortNo::NONE, frame.encode());
                    out.push(SwitchOutput::ToController(msg));
                }
                Action::Output(port) if port.is_physical() => {
                    out.push(SwitchOutput::DeliverLocal(port, frame.clone()));
                }
                Action::Output(_) => {}
                Action::SetVlan(t) => {
                    tenant = t;
                    frame.vlan = Some(lazyctrl_net::VlanTag::for_tenant(t));
                }
                Action::StripVlan => {
                    frame.vlan = None;
                }
                Action::Drop => return,
                Action::Encap { remote, key } => {
                    if let Some(target) = SwitchId::from_underlay_ip(remote) {
                        out.push(SwitchOutput::Tunnel(
                            target,
                            EncapsulatedFrame::new(
                                EncapHeader::new(self.id.underlay_ip(), remote, tenant, key),
                                frame.clone(),
                            ),
                        ));
                    }
                }
            }
        }
    }
}
