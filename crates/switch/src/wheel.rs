//! The failure-detection wheel participant (§III-E.1).
//!
//! At setup the controller orders the group's switches into a logical ring
//! ("wheel") with itself at the hub. Keep-alives flow from each switch to
//! both ring neighbours and from the controller to every switch; the
//! pattern of *missing* keep-alives identifies the failure (Table I):
//!
//! | failure          | Sn→Sn−1 lost | Sn→Sn+1 lost | Controller→Sn lost |
//! |------------------|--------------|--------------|--------------------|
//! | control link     |              |              | ✓                  |
//! | peer link (up)   | ✓            |              |                    |
//! | peer link (down) |              | ✓            |                    |
//! | switch Sn        | ✓            | ✓            | ✓                  |
//!
//! This module implements the switch-side participant: emit keep-alives,
//! track silence, and report losses. The controller-side inference lives
//! in `lazyctrl-controller`.

use lazyctrl_net::SwitchId;
use lazyctrl_proto::{KeepAliveMsg, WheelLoss, WheelReportMsg};
use serde::{Deserialize, Serialize};

/// What the participant wants sent on a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WheelAction {
    /// Send a keep-alive to a ring neighbour over the peer link.
    SendKeepAlive {
        /// The neighbour to probe.
        to: SwitchId,
        /// The message body.
        msg: KeepAliveMsg,
    },
    /// Report a loss observation to the controller over the control link.
    Report(WheelReportMsg),
    /// The controller's keep-alives stopped: the control link (or the
    /// controller) is unreachable, so route the report via the upstream
    /// ring neighbour (§III-E.2).
    ReportViaPeer {
        /// The relay neighbour.
        via: SwitchId,
        /// The report to relay.
        msg: WheelReportMsg,
    },
}

/// The switch-side wheel participant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WheelPosition {
    me: SwitchId,
    prev: SwitchId,
    next: SwitchId,
    interval_ns: u64,
    /// Miss this many intervals before declaring a loss.
    miss_threshold: u32,
    seq: u64,
    last_from_prev_ns: u64,
    last_from_next_ns: u64,
    last_from_controller_ns: u64,
    /// When each loss was last reported (`None` = source healthy).
    /// Repeats are suppressed for one detection deadline, then the loss
    /// is re-raised: a still-silent source keeps being reported, so the
    /// controller's correlation window can match reports from both ring
    /// directions even when the reporters went silent (or rebooted) at
    /// different times.
    reported_prev_at_ns: Option<u64>,
    reported_next_at_ns: Option<u64>,
    reported_controller_at_ns: Option<u64>,
}

impl WheelPosition {
    /// Joins the wheel between `prev` and `next` with the given keep-alive
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn new(
        me: SwitchId,
        prev: SwitchId,
        next: SwitchId,
        interval_ns: u64,
        now_ns: u64,
    ) -> Self {
        assert!(interval_ns > 0, "keep-alive interval must be positive");
        WheelPosition {
            me,
            prev,
            next,
            interval_ns,
            miss_threshold: lazyctrl_proto::WHEEL_MISS_THRESHOLD,
            seq: 0,
            last_from_prev_ns: now_ns,
            last_from_next_ns: now_ns,
            last_from_controller_ns: now_ns,
            reported_prev_at_ns: None,
            reported_next_at_ns: None,
            reported_controller_at_ns: None,
        }
    }

    /// The upstream neighbour.
    pub fn prev(&self) -> SwitchId {
        self.prev
    }

    /// The downstream neighbour.
    pub fn next(&self) -> SwitchId {
        self.next
    }

    /// Records a keep-alive heard from a ring neighbour.
    pub fn on_peer_keepalive(&mut self, from: SwitchId, now_ns: u64) {
        if from == self.prev {
            self.last_from_prev_ns = now_ns;
            self.reported_prev_at_ns = None;
        }
        if from == self.next {
            self.last_from_next_ns = now_ns;
            self.reported_next_at_ns = None;
        }
    }

    /// Records a keep-alive heard from the controller.
    pub fn on_controller_keepalive(&mut self, now_ns: u64) {
        self.last_from_controller_ns = now_ns;
        self.reported_controller_at_ns = None;
    }

    /// One keep-alive tick: emit probes to both neighbours and report any
    /// sources that have gone silent past the miss threshold. Actions are
    /// handed to the visitor in emission order — the tick fires once per
    /// interval on *every* switch, so this path must not allocate.
    pub fn tick_each(&mut self, now_ns: u64, mut f: impl FnMut(WheelAction)) {
        self.seq += 1;
        f(WheelAction::SendKeepAlive {
            to: self.prev,
            msg: KeepAliveMsg {
                from: self.me,
                seq: self.seq,
            },
        });
        f(WheelAction::SendKeepAlive {
            to: self.next,
            msg: KeepAliveMsg {
                from: self.me,
                seq: self.seq,
            },
        });
        let deadline = self.interval_ns.saturating_mul(self.miss_threshold as u64);
        let due = |last_heard: u64, reported_at: Option<u64>| {
            now_ns.saturating_sub(last_heard) > deadline
                && reported_at.is_none_or(|r| now_ns.saturating_sub(r) > deadline)
        };
        if due(self.last_from_prev_ns, self.reported_prev_at_ns) {
            self.reported_prev_at_ns = Some(now_ns);
            f(WheelAction::Report(WheelReportMsg {
                reporter: self.me,
                missing: self.prev,
                loss: WheelLoss::Upstream,
            }));
        }
        if due(self.last_from_next_ns, self.reported_next_at_ns) {
            self.reported_next_at_ns = Some(now_ns);
            f(WheelAction::Report(WheelReportMsg {
                reporter: self.me,
                missing: self.next,
                loss: WheelLoss::Downstream,
            }));
        }
        if due(self.last_from_controller_ns, self.reported_controller_at_ns) {
            self.reported_controller_at_ns = Some(now_ns);
            // Control link presumed dead: relay via the upstream neighbour.
            f(WheelAction::ReportViaPeer {
                via: self.prev,
                msg: WheelReportMsg {
                    reporter: self.me,
                    missing: self.me,
                    loss: WheelLoss::Controller,
                },
            });
        }
    }

    /// [`WheelPosition::tick_each`], collected (test/inspection
    /// convenience).
    pub fn tick(&mut self, now_ns: u64) -> Vec<WheelAction> {
        let mut out = Vec::new();
        self.tick_each(now_ns, |a| out.push(a));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IVL: u64 = 1_000_000_000; // 1 s

    fn wheel() -> WheelPosition {
        WheelPosition::new(SwitchId::new(5), SwitchId::new(4), SwitchId::new(6), IVL, 0)
    }

    fn keepalives(actions: &[WheelAction]) -> Vec<SwitchId> {
        actions
            .iter()
            .filter_map(|a| match a {
                WheelAction::SendKeepAlive { to, .. } => Some(*to),
                _ => None,
            })
            .collect()
    }

    fn reports(actions: &[WheelAction]) -> Vec<(SwitchId, WheelLoss)> {
        actions
            .iter()
            .filter_map(|a| match a {
                WheelAction::Report(m) => Some((m.missing, m.loss)),
                WheelAction::ReportViaPeer { msg, .. } => Some((msg.missing, msg.loss)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn healthy_ticks_probe_both_neighbours() {
        let mut w = wheel();
        for i in 1..=3u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(4), now);
            w.on_peer_keepalive(SwitchId::new(6), now);
            w.on_controller_keepalive(now);
            let actions = w.tick(now);
            assert_eq!(
                keepalives(&actions),
                vec![SwitchId::new(4), SwitchId::new(6)]
            );
            assert!(reports(&actions).is_empty(), "no losses when healthy");
        }
    }

    #[test]
    fn silent_upstream_is_reported_once_per_deadline() {
        let mut w = wheel();
        // Only downstream and controller stay alive.
        let mut reported = Vec::new();
        for i in 1..=6u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(6), now);
            w.on_controller_keepalive(now);
            reported.extend(reports(&w.tick(now)));
        }
        // One report within the first deadline window (no per-tick spam).
        assert_eq!(reported, vec![(SwitchId::new(4), WheelLoss::Upstream)]);
    }

    #[test]
    fn still_silent_source_is_re_reported_each_deadline() {
        let mut w = wheel();
        let mut reported = Vec::new();
        for i in 1..=16u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(6), now);
            w.on_controller_keepalive(now);
            reported.extend(reports(&w.tick(now)));
        }
        // 16 s of silence at a 3 s deadline: the loss is re-raised every
        // deadline (t=4, 8, 12, 16), so a controller whose correlation
        // window missed the first report still converges.
        assert_eq!(
            reported,
            vec![(SwitchId::new(4), WheelLoss::Upstream); 4],
            "{reported:?}"
        );
        // Recovery clears the cadence: next silence starts a fresh cycle.
        w.on_peer_keepalive(SwitchId::new(4), 17 * IVL);
        assert!(reports(&w.tick(18 * IVL)).is_empty());
    }

    #[test]
    fn controller_silence_relays_via_prev() {
        let mut w = wheel();
        let mut via = None;
        for i in 1..=6u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(4), now);
            w.on_peer_keepalive(SwitchId::new(6), now);
            for a in w.tick(now) {
                if let WheelAction::ReportViaPeer { via: v, msg } = a {
                    via = Some((v, msg));
                }
            }
        }
        let (v, msg) = via.expect("controller silence must be reported");
        assert_eq!(v, SwitchId::new(4), "relayed via upstream neighbour");
        assert_eq!(msg.loss, WheelLoss::Controller);
        assert_eq!(
            msg.missing,
            SwitchId::new(5),
            "the switch itself is cut off"
        );
    }

    #[test]
    fn recovery_rearms_reporting() {
        let mut w = wheel();
        let mut all = Vec::new();
        for i in 1..=5u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(6), now);
            w.on_controller_keepalive(now);
            all.extend(reports(&w.tick(now)));
        }
        assert_eq!(all.len(), 1, "one report while down");
        // Upstream comes back, then dies again: a fresh report fires.
        w.on_peer_keepalive(SwitchId::new(4), 6 * IVL);
        for i in 7..=12u64 {
            let now = i * IVL;
            w.on_peer_keepalive(SwitchId::new(6), now);
            w.on_controller_keepalive(now);
            all.extend(reports(&w.tick(now)));
        }
        assert_eq!(all.len(), 2, "recovery must rearm the detector");
    }

    #[test]
    fn dead_switch_pattern_from_both_sides() {
        // Neighbours of a dead switch each observe a loss; together with
        // the controller's own probe loss this is Table I's last row.
        let mut left =
            WheelPosition::new(SwitchId::new(4), SwitchId::new(3), SwitchId::new(5), IVL, 0);
        let mut right =
            WheelPosition::new(SwitchId::new(6), SwitchId::new(5), SwitchId::new(7), IVL, 0);
        let mut seen = Vec::new();
        for i in 1..=5u64 {
            let now = i * IVL;
            for w in [&mut left, &mut right] {
                w.on_controller_keepalive(now);
            }
            left.on_peer_keepalive(SwitchId::new(3), now);
            right.on_peer_keepalive(SwitchId::new(7), now);
            seen.extend(reports(&left.tick(now)));
            seen.extend(reports(&right.tick(now)));
        }
        assert!(seen.contains(&(SwitchId::new(5), WheelLoss::Downstream)));
        assert!(seen.contains(&(SwitchId::new(5), WheelLoss::Upstream)));
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut w = wheel();
        let a1 = w.tick(IVL);
        let a2 = w.tick(2 * IVL);
        let seq = |a: &[WheelAction]| match &a[0] {
            WheelAction::SendKeepAlive { msg, .. } => msg.seq,
            _ => panic!("expected keepalive"),
        };
        assert_eq!(seq(&a1) + 1, seq(&a2));
    }
}
