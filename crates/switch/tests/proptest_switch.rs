//! Property tests for the switch substrates: flow-table semantics and the
//! Fig. 5 forwarding routine's exhaustiveness.

use lazyctrl_net::{EtherType, EthernetFrame, MacAddr, Packet, PortNo, SwitchId, TenantId};
use lazyctrl_proto::{Action, FlowMatch, FlowModCommand, FlowModMsg};
use lazyctrl_switch::forwarding::{forward_packet, ForwardingDecision};
use lazyctrl_switch::{build_gfib_update, FlowTable, Gfib, Lfib, PacketFields};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    (0u64..64).prop_map(MacAddr::for_host)
}

fn arb_flow_mod() -> impl Strategy<Value = FlowModMsg> {
    (
        prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::Delete)
        ],
        arb_mac(),
        0u16..200,
        0u16..4,
        prop_oneof![
            Just(vec![Action::Drop]),
            Just(vec![Action::Output(PortNo::new(1))]),
            (0u32..8).prop_map(|s| vec![Action::Encap {
                remote: SwitchId::new(s).underlay_ip(),
                key: 1,
            }]),
        ],
    )
        .prop_map(|(command, dst, priority, idle, actions)| FlowModMsg {
            command,
            flow_match: FlowMatch::to_dst(dst),
            priority,
            idle_timeout: idle,
            hard_timeout: 0,
            cookie: 0,
            actions,
        })
}

proptest! {
    /// The flow table never returns a rule that doesn't match, always
    /// returns the highest-priority matching rule, and its size accounting
    /// stays consistent under arbitrary FlowMod sequences.
    #[test]
    fn flow_table_respects_priority_and_matching(
        mods in proptest::collection::vec(arb_flow_mod(), 1..40),
        probe in arb_mac(),
    ) {
        let mut table = FlowTable::new();
        for (i, m) in mods.iter().enumerate() {
            table.apply(m, i as u64);
        }
        let fields = PacketFields {
            dl_dst: Some(probe),
            ..PacketFields::default()
        };
        let best_priority = table
            .iter()
            .filter(|r| r.flow_match.matches(None, None, Some(probe), None, None))
            .map(|r| r.priority)
            .max();
        let hit = table.lookup(&fields, 1_000);
        match (hit, best_priority) {
            (Some(rule), Some(p)) => {
                prop_assert!(rule.flow_match.matches(None, None, Some(probe), None, None));
                prop_assert_eq!(rule.priority, p, "must return the top-priority match");
            }
            (None, None) => {}
            (got, want) => {
                prop_assert!(false, "lookup {:?} vs expected priority {:?}", got.map(|r| r.priority), want);
            }
        }
    }

    /// Fig. 5 totality: the routine returns a decision for every packet,
    /// and plain-packet decisions never claim a local port the L-FIB does
    /// not hold.
    #[test]
    fn forwarding_is_total_and_consistent(
        local_hosts in proptest::collection::btree_set(0u64..32, 0..8),
        group_hosts in proptest::collection::btree_set(32u64..64, 0..8),
        dst in 0u64..96,
    ) {
        let mut lfib = Lfib::new();
        for &h in &local_hosts {
            lfib.learn(MacAddr::for_host(h), TenantId::new(1), PortNo::new(h as u16 + 1), 0);
        }
        let mut gfib = Gfib::new();
        if !group_hosts.is_empty() {
            let macs: Vec<MacAddr> = group_hosts.iter().map(|&h| MacAddr::for_host(h)).collect();
            gfib.apply_update(&build_gfib_update(SwitchId::new(7), 1, macs));
        }
        let mut table = FlowTable::new();
        let frame = EthernetFrame::new(
            MacAddr::for_host(999),
            MacAddr::for_host(dst),
            EtherType::IPV4,
            vec![],
        );
        let mut actions_scratch = Vec::new();
        let mut targets_scratch = Vec::new();
        let decision = forward_packet(
            &Packet::Plain(frame),
            PortNo::new(1),
            &mut table,
            &lfib,
            &gfib,
            |_| true,
            0,
            &mut actions_scratch,
            &mut targets_scratch,
        );
        match decision {
            ForwardingDecision::DeliverLocal(port) => {
                prop_assert!(local_hosts.contains(&dst), "claimed local for non-local {dst}");
                prop_assert_eq!(port, PortNo::new(dst as u16 + 1));
            }
            ForwardingDecision::EncapTo => {
                prop_assert!(!targets_scratch.is_empty());
                // No false negatives: a real group host must be found.
            }
            ForwardingDecision::PuntToController => {
                // A genuine group host must never be punted (bloom filters
                // have no false negatives).
                prop_assert!(
                    !group_hosts.contains(&dst),
                    "group host {dst} punted despite filter"
                );
                prop_assert!(!local_hosts.contains(&dst));
            }
            other => prop_assert!(false, "unexpected decision {other:?}"),
        }
    }
}
