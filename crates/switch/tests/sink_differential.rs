//! Differential test for the sink-based dispatch refactor: the same
//! scripted scenario driven twice through identical switches — once
//! through a single **reused** `OutputSink` (the world's steady-state
//! path, where the scratch buffer lives for the whole run) and once
//! through a **fresh sink per event** (the debug shim equivalent of the
//! old `Vec<SwitchOutput>`-returning handlers). The full ordered output
//! sequences must be identical: sink reuse must not leak state between
//! events, reorder effects, or drop anything.

use lazyctrl_net::{
    ArpPacket, EncapHeader, EncapsulatedFrame, EtherType, EthernetFrame, GroupId, HostId, MacAddr,
    PortNo, SwitchId, TenantId, VlanTag,
};
use lazyctrl_proto::{
    Action, FlowMatch, FlowModCommand, FlowModMsg, GroupAssignMsg, LazyMsg, Message, OfMessage,
    OutputSink, PacketOutMsg,
};
use lazyctrl_switch::{EdgeSwitch, SwitchOutput, SwitchTimer};

/// One scripted input event for the switch under test.
enum Input {
    Local(u64, PortNo, EthernetFrame),
    Tunnel(u64, EncapsulatedFrame),
    Control(u64, Message),
    Peer(u64, SwitchId, Message),
    Timer(u64, SwitchTimer),
}

fn data_frame(src: u32, dst: u32, tenant: u16) -> EthernetFrame {
    EthernetFrame::tagged(
        HostId::new(src).mac(),
        HostId::new(dst).mac(),
        VlanTag::for_tenant(TenantId::new(tenant)),
        EtherType::IPV4,
        vec![0xcd; 24],
    )
}

fn arp_frame(src: u32, target: u32, tenant: u16) -> EthernetFrame {
    let arp = ArpPacket::request(
        HostId::new(src).mac(),
        HostId::new(src).ip(),
        HostId::new(target).ip(),
    );
    EthernetFrame::tagged(
        HostId::new(src).mac(),
        MacAddr::BROADCAST,
        VlanTag::for_tenant(TenantId::new(tenant)),
        EtherType::ARP,
        arp.encode(),
    )
}

/// A mini-scenario covering every handler on the per-event path: group
/// assignment, local data frames (hit/miss/punt), the three ARP cascade
/// levels, tunnel delivery and false-positive drop, flow-rule
/// application, peer relays, and the periodic timers.
fn script() -> Vec<Input> {
    let ga = GroupAssignMsg {
        group: GroupId::new(0),
        epoch: 1,
        members: vec![SwitchId::new(1), SwitchId::new(2), SwitchId::new(3)],
        designated: SwitchId::new(1), // the switch under test is designated
        backups: vec![SwitchId::new(2)],
        ring_prev: SwitchId::new(3),
        ring_next: SwitchId::new(2),
        sync_interval_ms: 1000,
        keepalive_interval_ms: 500,
        group_size_limit: 3,
    };
    let gfib = lazyctrl_switch::build_gfib_update(SwitchId::new(3), 1, vec![HostId::new(30).mac()]);
    let flow_mod = FlowModMsg {
        command: FlowModCommand::Add,
        flow_match: FlowMatch::to_dst(HostId::new(40).mac()),
        priority: 10,
        idle_timeout: 30,
        hard_timeout: 0,
        cookie: 1,
        actions: vec![Action::Encap {
            remote: SwitchId::new(9).underlay_ip(),
            key: 1,
        }],
    };
    let relayed_arp = Message::of(
        77,
        OfMessage::PacketOut(PacketOutMsg {
            buffer_id: u32::MAX,
            in_port: PortNo::new(3),
            actions: vec![Action::Output(PortNo::FLOOD)],
            data: arp_frame(50, 60, 1).encode().into(),
        }),
    );
    let tunnel_hit = EncapsulatedFrame::new(
        EncapHeader::new(
            SwitchId::new(2).underlay_ip(),
            SwitchId::new(1).underlay_ip(),
            TenantId::new(1),
            1,
        ),
        data_frame(10, 20, 1),
    );
    let tunnel_fp = EncapsulatedFrame::new(
        EncapHeader::new(
            SwitchId::new(2).underlay_ip(),
            SwitchId::new(1).underlay_ip(),
            TenantId::new(1),
            1,
        ),
        data_frame(10, 777, 1),
    );
    vec![
        Input::Control(0, Message::lazy(1, LazyMsg::group_assign(ga))),
        // Learn host 20 locally, then hit it.
        Input::Local(1_000, PortNo::new(7), data_frame(20, 99, 1)),
        Input::Local(2_000, PortNo::new(1), data_frame(10, 20, 1)),
        // G-FIB learns host 30 at S3, then a frame and an ARP tunnel out.
        Input::Control(3_000, Message::lazy(2, LazyMsg::gfib_update(gfib))),
        Input::Local(4_000, PortNo::new(1), data_frame(10, 30, 1)),
        Input::Local(5_000, PortNo::new(1), arp_frame(10, 30, 1)),
        // Unknown target: designated broadcast + controller escalation.
        Input::Local(6_000, PortNo::new(1), arp_frame(10, 555, 1)),
        // Flow rule install + rule-forwarded frame.
        Input::Control(7_000, Message::of(3, OfMessage::flow_mod(flow_mod))),
        Input::Local(8_000, PortNo::new(1), data_frame(10, 40, 1)),
        // Tunnel delivery and a bloom false positive (silent drop).
        Input::Tunnel(9_000, tunnel_hit),
        Input::Tunnel(10_000, tunnel_fp),
        // Peer relays: a member-escalated ARP broadcast.
        Input::Peer(11_000, SwitchId::new(2), relayed_arp),
        // Periodic machinery.
        Input::Timer(500_000_000, SwitchTimer::KeepAlive),
        Input::Timer(1_000_000_000, SwitchTimer::PeerSync),
        Input::Timer(1_500_000_000, SwitchTimer::KeepAlive),
        Input::Local(1_600_000_000, PortNo::new(1), data_frame(10, 20, 1)),
    ]
}

fn drive(sw: &mut EdgeSwitch, input: &Input, sink: &mut OutputSink<SwitchOutput>) {
    match input {
        Input::Local(now, port, frame) => sw.handle_local_frame(*now, *port, frame.clone(), sink),
        Input::Tunnel(now, encap) => sw.handle_tunnel_packet(*now, encap.clone(), sink),
        Input::Control(now, msg) => sw.handle_control_message(*now, msg, sink),
        Input::Peer(now, from, msg) => sw.handle_peer_message(*now, *from, msg, sink),
        Input::Timer(now, timer) => sw.on_timer(*now, *timer, sink),
    }
}

#[test]
fn reused_sink_matches_fresh_sink_per_event() {
    let inputs = script();

    // Path A: the world's steady-state pattern — one sink, drained (and
    // its capacity kept) after every event.
    let mut sw_a = EdgeSwitch::new(SwitchId::new(1));
    let mut reused = OutputSink::new();
    let mut outputs_a: Vec<Vec<SwitchOutput>> = Vec::new();
    for input in &inputs {
        drive(&mut sw_a, input, &mut reused);
        let buf = reused.take_buf();
        outputs_a.push(buf.clone());
        reused.put_back(buf);
    }

    // Path B: the debug shim — a fresh sink per event, collecting into a
    // Vec exactly like the pre-refactor `Vec<SwitchOutput>` returns.
    let mut sw_b = EdgeSwitch::new(SwitchId::new(1));
    let mut outputs_b: Vec<Vec<SwitchOutput>> = Vec::new();
    for input in &inputs {
        let mut fresh = OutputSink::new();
        drive(&mut sw_b, input, &mut fresh);
        outputs_b.push(fresh.take_buf());
    }

    assert_eq!(outputs_a.len(), outputs_b.len());
    for (i, (a, b)) in outputs_a.iter().zip(&outputs_b).enumerate() {
        assert_eq!(a, b, "event #{i}: sink reuse changed the output sequence");
    }
    // The scenario actually exercised the machine: outputs flowed.
    let total: usize = outputs_a.iter().map(Vec::len).sum();
    assert!(total >= 15, "scenario too quiet ({total} outputs)");
    assert_eq!(sw_a.packets_processed(), sw_b.packets_processed());
    assert_eq!(sw_a.packet_ins_sent(), sw_b.packet_ins_sent());
}

/// The reused sink must always be handed to handlers empty (the driver
/// contract), and handlers must never read what the driver left: a
/// poisoned-capacity sink (cleared but previously large) behaves
/// identically to a brand new one.
#[test]
fn sink_capacity_reuse_is_invisible() {
    let inputs = script();
    let mut sw_a = EdgeSwitch::new(SwitchId::new(1));
    let mut sw_b = EdgeSwitch::new(SwitchId::new(1));
    let mut big = OutputSink::with_capacity(1024);
    let mut small = OutputSink::new();
    for input in &inputs {
        drive(&mut sw_a, input, &mut big);
        drive(&mut sw_b, input, &mut small);
        assert_eq!(big.as_slice(), small.as_slice());
        big.clear();
        small.clear();
    }
}
