//! Behavioural tests for the composed edge switch: group assignment, the
//! ARP cascade, tunnelling, sync timers and keep-alives.

use lazyctrl_net::{
    ArpPacket, EtherType, EthernetFrame, GroupId, HostId, MacAddr, PortNo, SwitchId, TenantId,
    VlanTag,
};
use lazyctrl_proto::{
    Action, FlowMatch, FlowModCommand, FlowModMsg, GroupAssignMsg, LazyMsg, Message, MessageBody,
    OfMessage, OutputSink, PacketInReason,
};
use lazyctrl_switch::{EdgeSwitch, SwitchOutput, SwitchTimer};

/// Runs one sink-based handler and returns its outputs as a `Vec` (test
/// convenience mirroring the pre-sink API).
fn collect(f: impl FnOnce(&mut OutputSink<SwitchOutput>)) -> Vec<SwitchOutput> {
    let mut sink = OutputSink::new();
    f(&mut sink);
    sink.take_buf()
}

fn host_frame(src: u32, dst: u32, tenant: u16) -> EthernetFrame {
    EthernetFrame::tagged(
        HostId::new(src).mac(),
        HostId::new(dst).mac(),
        VlanTag::for_tenant(TenantId::new(tenant)),
        EtherType::IPV4,
        vec![0xab; 40],
    )
}

fn arp_request(src: u32, target: u32, tenant: u16) -> EthernetFrame {
    let arp = ArpPacket::request(
        HostId::new(src).mac(),
        HostId::new(src).ip(),
        HostId::new(target).ip(),
    );
    EthernetFrame::tagged(
        HostId::new(src).mac(),
        MacAddr::BROADCAST,
        VlanTag::for_tenant(TenantId::new(tenant)),
        EtherType::ARP,
        arp.encode(),
    )
}

fn group_assign(me_designated: bool) -> GroupAssignMsg {
    GroupAssignMsg {
        group: GroupId::new(0),
        epoch: 1,
        members: vec![SwitchId::new(1), SwitchId::new(2), SwitchId::new(3)],
        designated: if me_designated {
            SwitchId::new(1)
        } else {
            SwitchId::new(2)
        },
        backups: vec![SwitchId::new(3)],
        ring_prev: SwitchId::new(3),
        ring_next: SwitchId::new(2),
        sync_interval_ms: 1000,
        keepalive_interval_ms: 500,
        group_size_limit: 3,
    }
}

fn configured_switch(designated: bool) -> EdgeSwitch {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    let msg = Message::lazy(1, LazyMsg::group_assign(group_assign(designated)));
    let _ = collect(|s| sw.handle_control_message(0, &msg, s));
    sw
}

fn controller_msgs(outputs: &[SwitchOutput]) -> Vec<&Message> {
    outputs
        .iter()
        .filter_map(|o| match o {
            SwitchOutput::ToController(m) => Some(m),
            _ => None,
        })
        .collect()
}

#[test]
fn unassigned_switch_punts_unknowns_like_plain_openflow() {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    let out = collect(|s| sw.handle_local_frame(0, PortNo::new(1), host_frame(10, 20, 1), s));
    let msgs = controller_msgs(&out);
    assert_eq!(msgs.len(), 1);
    match &msgs[0].body {
        MessageBody::Of(OfMessage::PacketIn(pi)) => {
            assert_eq!(pi.reason, PacketInReason::NoMatch);
        }
        other => panic!("expected PacketIn, got {other:?}"),
    }
    assert_eq!(sw.packet_ins_sent(), 1);
}

#[test]
fn group_assign_installs_state_and_timers() {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    // Learn a host first so the assignment triggers an announcement.
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(4), host_frame(10, 11, 1), s));
    let msg = Message::lazy(1, LazyMsg::group_assign(group_assign(false)));
    let out = collect(|s| sw.handle_control_message(0, &msg, s));

    assert!(sw.group().is_some());
    assert!(!sw.is_designated());
    let timers: Vec<SwitchTimer> = out
        .iter()
        .filter_map(|o| match o {
            SwitchOutput::SetTimer(t, _) => Some(*t),
            _ => None,
        })
        .collect();
    assert!(timers.contains(&SwitchTimer::PeerSync));
    assert!(timers.contains(&SwitchTimer::KeepAlive));
    // L-FIB announcement heads to the designated switch (S2).
    let to_designated: Vec<_> = out
        .iter()
        .filter(|o| matches!(o, SwitchOutput::ToPeer(s, _) if *s == SwitchId::new(2)))
        .collect();
    assert!(
        to_designated.len() >= 2,
        "expected LfibSync + GfibUpdate to designated, got {out:?}"
    );
}

#[test]
fn local_destination_is_delivered_locally() {
    let mut sw = configured_switch(false);
    // Host 20 attaches locally (we learn it from its own traffic).
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(7), host_frame(20, 99, 1), s));
    // Traffic towards 20 now short-circuits in the data plane.
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), host_frame(10, 20, 1), s));
    assert!(
        matches!(
            out.as_slice(),
            [SwitchOutput::DeliverLocal(p, _)] if *p == PortNo::new(7)
        ),
        "got {out:?}"
    );
    assert_eq!(sw.packet_ins_sent(), 1, "only host 99 punted earlier");
}

#[test]
fn gfib_hit_tunnels_with_epoch_key() {
    let mut sw = configured_switch(false);
    // Peer S3 advertises host 30.
    let update =
        lazyctrl_switch::build_gfib_update(SwitchId::new(3), 1, vec![HostId::new(30).mac()]);
    let msg = Message::lazy(5, LazyMsg::gfib_update(update));
    let _ = collect(|s| sw.handle_control_message(0, &msg, s));
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), host_frame(10, 30, 1), s));
    match out.as_slice() {
        [SwitchOutput::Tunnel(target, encap)] => {
            assert_eq!(*target, SwitchId::new(3));
            assert_eq!(encap.header.key, 1, "epoch stamped into tunnel header");
            assert_eq!(encap.header.dst, SwitchId::new(3).underlay_ip());
            assert_eq!(encap.inner.dst, HostId::new(30).mac());
        }
        other => panic!("expected a single tunnel, got {other:?}"),
    }
}

#[test]
fn tunnel_delivery_and_false_positive_drop() {
    let mut tx = configured_switch(false);
    let mut rx = EdgeSwitch::new(SwitchId::new(3));
    // rx knows host 30 locally.
    let _ = collect(|s| rx.handle_local_frame(0, PortNo::new(2), host_frame(30, 99, 1), s));

    let update =
        lazyctrl_switch::build_gfib_update(SwitchId::new(3), 1, vec![HostId::new(30).mac()]);
    let msg = Message::lazy(5, LazyMsg::gfib_update(update));
    let _ = collect(|s| tx.handle_control_message(0, &msg, s));
    let out = collect(|s| tx.handle_local_frame(1, PortNo::new(1), host_frame(10, 30, 1), s));
    let SwitchOutput::Tunnel(_, encap) = &out[0] else {
        panic!("expected tunnel");
    };
    // Delivered at rx.
    let delivery = collect(|s| rx.handle_tunnel_packet(2, encap.clone(), s));
    assert!(
        matches!(
            delivery.as_slice(),
            [SwitchOutput::DeliverLocal(p, _)] if *p == PortNo::new(2)
        ),
        "got {delivery:?}"
    );
    // A mis-forwarded copy (host unknown at rx) is silently dropped.
    let mut bogus = encap.clone();
    bogus.inner.dst = HostId::new(12345).mac();
    let dropped = collect(|s| rx.handle_tunnel_packet(3, bogus, s));
    assert!(dropped.is_empty(), "false positive must drop: {dropped:?}");
}

#[test]
fn false_positive_reporting_is_optional() {
    let mut rx = EdgeSwitch::new(SwitchId::new(3));
    rx.report_false_positives = true;
    let encap = lazyctrl_net::EncapsulatedFrame::new(
        lazyctrl_net::EncapHeader::new(
            SwitchId::new(1).underlay_ip(),
            SwitchId::new(3).underlay_ip(),
            TenantId::new(1),
            0,
        ),
        host_frame(10, 777, 1),
    );
    let out = collect(|s| rx.handle_tunnel_packet(0, encap, s));
    let msgs = controller_msgs(&out);
    assert_eq!(msgs.len(), 1);
    match &msgs[0].body {
        MessageBody::Of(OfMessage::PacketIn(pi)) => {
            assert_eq!(pi.reason, PacketInReason::FalsePositive);
        }
        other => panic!("expected FalsePositive PacketIn, got {other:?}"),
    }
}

#[test]
fn arp_cascade_level_one_floods_locally() {
    let mut sw = configured_switch(false);
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(7), host_frame(20, 99, 1), s));
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), arp_request(10, 20, 1), s));
    assert!(
        matches!(out.as_slice(), [SwitchOutput::FloodLocal(_)]),
        "local target: flood locally only, got {out:?}"
    );
}

#[test]
fn arp_cascade_level_two_tunnels_to_candidates() {
    let mut sw = configured_switch(false);
    let update =
        lazyctrl_switch::build_gfib_update(SwitchId::new(3), 1, vec![HostId::new(30).mac()]);
    let msg = Message::lazy(5, LazyMsg::gfib_update(update));
    let _ = collect(|s| sw.handle_control_message(0, &msg, s));
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), arp_request(10, 30, 1), s));
    assert!(
        matches!(out.as_slice(), [SwitchOutput::Tunnel(s, _)] if *s == SwitchId::new(3)),
        "got {out:?}"
    );
}

#[test]
fn arp_cascade_level_two_b_asks_designated() {
    let mut sw = configured_switch(false);
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), arp_request(10, 555, 1), s));
    assert!(
        matches!(
            out.as_slice(),
            [SwitchOutput::ToPeer(s, m)]
                if *s == SwitchId::new(2)
                    && matches!(m.body, MessageBody::Of(OfMessage::PacketOut(_)))
        ),
        "unknown target goes to designated switch, got {out:?}"
    );
    assert_eq!(sw.packet_ins_sent(), 0, "member must not punt ARP itself");
}

#[test]
fn designated_broadcasts_and_escalates() {
    let mut sw = configured_switch(true);
    assert!(sw.is_designated());
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), arp_request(10, 555, 1), s));
    let tunnels = out
        .iter()
        .filter(|o| matches!(o, SwitchOutput::Tunnel(_, _)))
        .count();
    assert_eq!(tunnels, 2, "broadcast to both other members: {out:?}");
    assert!(out.iter().any(|o| matches!(o, SwitchOutput::FloodLocal(_))));
    assert_eq!(controller_msgs(&out).len(), 1, "escalation to controller");
}

#[test]
fn blocked_tenant_arp_never_reaches_controller() {
    let mut sw = configured_switch(true);
    let block = Message::lazy(
        9,
        LazyMsg::BlockArp {
            tenant: TenantId::new(1),
            block: true,
        },
    );
    let _ = collect(|s| sw.handle_control_message(0, &block, s));
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), arp_request(10, 555, 1), s));
    assert!(
        controller_msgs(&out).is_empty(),
        "blocked tenant escalated anyway: {out:?}"
    );
    // Unblock restores escalation.
    let unblock = Message::lazy(
        10,
        LazyMsg::BlockArp {
            tenant: TenantId::new(1),
            block: false,
        },
    );
    let _ = collect(|s| sw.handle_control_message(2, &unblock, s));
    let out = collect(|s| sw.handle_local_frame(3, PortNo::new(1), arp_request(10, 556, 1), s));
    assert_eq!(controller_msgs(&out).len(), 1);
}

#[test]
fn flow_mod_and_stats_round_trip() {
    let mut sw = configured_switch(false);
    let fm = Message::of(
        2,
        OfMessage::flow_mod(FlowModMsg {
            command: FlowModCommand::Add,
            flow_match: FlowMatch::to_dst(HostId::new(40).mac()),
            priority: 10,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 7,
            actions: vec![Action::Drop],
        }),
    );
    let _ = collect(|s| sw.handle_control_message(0, &fm, s));
    assert_eq!(sw.flow_table().len(), 1);
    // Matching traffic is dropped by the rule, not punted.
    let out = collect(|s| sw.handle_local_frame(1, PortNo::new(1), host_frame(10, 40, 1), s));
    assert!(out.is_empty(), "rule says drop, got {out:?}");

    let stats_req = Message::of(3, OfMessage::StatsRequest);
    let out = collect(|s| sw.handle_control_message(2, &stats_req, s));
    match &controller_msgs(&out)[0].body {
        MessageBody::Of(OfMessage::StatsReply { flows, .. }) => assert_eq!(*flows, 1),
        other => panic!("expected StatsReply, got {other:?}"),
    }
}

#[test]
fn echo_and_features_replies() {
    let mut sw = EdgeSwitch::new(SwitchId::new(9));
    let echo = Message::of(4, OfMessage::EchoRequest(vec![1, 2]));
    let out = collect(|s| sw.handle_control_message(0, &echo, s));
    assert!(matches!(
        &controller_msgs(&out)[0].body,
        MessageBody::Of(OfMessage::EchoReply(d)) if d == &vec![1, 2]
    ));
    let features = Message::of(5, OfMessage::FeaturesRequest);
    let out = collect(|s| sw.handle_control_message(0, &features, s));
    assert!(matches!(
        &controller_msgs(&out)[0].body,
        MessageBody::Of(OfMessage::FeaturesReply { datapath_id: 9, .. })
    ));
}

#[test]
fn peer_sync_timer_reports_state() {
    let mut sw = configured_switch(false);
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(7), host_frame(20, 99, 1), s));
    let out = collect(|s| sw.on_timer(1_000_000_000, SwitchTimer::PeerSync, s));
    // A non-designated member sends LfibSync + GfibUpdate + StateReport to
    // the designated switch, and re-arms the timer.
    let to_designated = out
        .iter()
        .filter(|o| matches!(o, SwitchOutput::ToPeer(s, _) if *s == SwitchId::new(2)))
        .count();
    assert!(
        to_designated >= 3,
        "expected 3 messages to designated: {out:?}"
    );
    assert!(out
        .iter()
        .any(|o| matches!(o, SwitchOutput::SetTimer(SwitchTimer::PeerSync, _))));
}

#[test]
fn designated_sync_timer_reports_upward() {
    let mut sw = configured_switch(true);
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(7), host_frame(20, 99, 1), s));
    let out = collect(|s| sw.on_timer(1_000_000_000, SwitchTimer::PeerSync, s));
    let to_state = out
        .iter()
        .filter(|o| matches!(o, SwitchOutput::ToState(_)))
        .count();
    assert!(
        to_state >= 2,
        "LfibSync + StateReport on state link: {out:?}"
    );
}

#[test]
fn keepalive_timer_probes_ring() {
    let mut sw = configured_switch(false);
    let out = collect(|s| sw.on_timer(500_000_000, SwitchTimer::KeepAlive, s));
    let probes: Vec<SwitchId> = out
        .iter()
        .filter_map(|o| match o {
            SwitchOutput::ToPeer(s, m) if matches!(m.as_lazy(), Some(LazyMsg::KeepAlive(_))) => {
                Some(*s)
            }
            _ => None,
        })
        .collect();
    assert_eq!(probes, vec![SwitchId::new(3), SwitchId::new(2)]);
}

#[test]
fn stale_epoch_tunnel_drops_after_grace() {
    let mut sw = configured_switch(false);
    sw.epoch_gating = true;
    // Learn a host so delivery would otherwise succeed.
    let _ = collect(|s| sw.handle_local_frame(0, PortNo::new(2), host_frame(30, 99, 1), s));

    // Regroup to epoch 2; epoch 1 stays valid through the grace window.
    let mut ga = group_assign(false);
    ga.epoch = 2;
    let regroup = Message::lazy(8, LazyMsg::group_assign(ga));
    let _ = collect(|s| sw.handle_control_message(1, &regroup, s));

    let encap = |key: u32| {
        lazyctrl_net::EncapsulatedFrame::new(
            lazyctrl_net::EncapHeader::new(
                SwitchId::new(2).underlay_ip(),
                SwitchId::new(1).underlay_ip(),
                TenantId::new(1),
                key,
            ),
            host_frame(10, 30, 1),
        )
    };
    // Old-epoch packet within grace: delivered.
    let out = collect(|s| sw.handle_tunnel_packet(2, encap(1), s));
    assert!(matches!(out.as_slice(), [SwitchOutput::DeliverLocal(_, _)]));
    // Grace expires.
    let _ = collect(|s| sw.on_timer(3_000_000_000, SwitchTimer::EpochGrace(1), s));
    let out = collect(|s| sw.handle_tunnel_packet(4, encap(1), s));
    assert!(out.is_empty(), "stale epoch must drop: {out:?}");
    // Current epoch still flows.
    let out = collect(|s| sw.handle_tunnel_packet(5, encap(2), s));
    assert!(matches!(out.as_slice(), [SwitchOutput::DeliverLocal(_, _)]));
}

#[test]
fn wheel_report_relay_goes_up_the_control_link() {
    let mut sw = configured_switch(false);
    let report = lazyctrl_proto::WheelReportMsg {
        reporter: SwitchId::new(3),
        missing: SwitchId::new(3),
        loss: lazyctrl_proto::WheelLoss::Controller,
    };
    let msg = Message::lazy(11, LazyMsg::WheelReport(report));
    let out = collect(|s| sw.handle_peer_message(0, SwitchId::new(3), &msg, s));
    assert!(
        matches!(
            out.as_slice(),
            [SwitchOutput::ToController(m)]
                if matches!(m.as_lazy(), Some(LazyMsg::WheelReport(r)) if *r == report)
        ),
        "got {out:?}"
    );
}

#[test]
fn congestion_notice_paces_punts_and_flushes_at_window_close() {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    // Pressure notice from the controller opens a pace window.
    let cn = Message::lazy(
        7,
        LazyMsg::CongestionNotice(lazyctrl_proto::CongestionNoticeMsg { from: 0, level: 1 }),
    );
    let out = collect(|s| sw.handle_control_message(1_000, &cn, s));
    assert!(sw.is_pacing(2_000));
    let flush_delay = out
        .iter()
        .find_map(|o| match o {
            SwitchOutput::SetTimer(SwitchTimer::PaceFlush, d) => Some(*d),
            _ => None,
        })
        .expect("pressure must arm a PaceFlush timer");

    // An unknown destination now defers its punt instead of sending it.
    let out = collect(|s| sw.handle_local_frame(2_000, PortNo::new(1), host_frame(10, 20, 1), s));
    assert!(
        controller_msgs(&out).is_empty(),
        "paced punt leaked: {out:?}"
    );
    assert_eq!(sw.punts_paced(), 1);

    // Window close releases the deferred setup and decays the backoff.
    let depth = sw.pace_attempts();
    let out = collect(|s| sw.on_timer(1_000 + flush_delay, SwitchTimer::PaceFlush, s));
    let msgs = controller_msgs(&out);
    assert_eq!(msgs.len(), 1, "flush must release the deferred punt");
    assert!(matches!(
        &msgs[0].body,
        MessageBody::Of(OfMessage::PacketIn(pi)) if pi.reason == PacketInReason::NoMatch
    ));
    assert_eq!(sw.pace_attempts(), depth - 1);
    assert!(!sw.is_pacing(1_000 + flush_delay));
}

#[test]
fn pacing_never_defers_keepalives_or_wheel_reports() {
    let mut sw = configured_switch(false);
    let cn = Message::lazy(
        8,
        LazyMsg::CongestionNotice(lazyctrl_proto::CongestionNoticeMsg { from: 0, level: 6 }),
    );
    let _ = collect(|s| sw.handle_control_message(0, &cn, s));
    assert!(sw.is_pacing(1_000_000));

    // Keep-alive tick still emits its peer keepalives while paced.
    let out = collect(|s| sw.on_timer(500_000_000, SwitchTimer::KeepAlive, s));
    assert!(
        out.iter().any(|o| matches!(
            o,
            SwitchOutput::ToPeer(_, m) if matches!(m.as_lazy(), Some(LazyMsg::KeepAlive(_)))
        )),
        "keepalives must not pace: {out:?}"
    );

    // A relayed wheel report still goes straight up the control link.
    let report = lazyctrl_proto::WheelReportMsg {
        reporter: SwitchId::new(3),
        missing: SwitchId::new(3),
        loss: lazyctrl_proto::WheelLoss::Controller,
    };
    let msg = Message::lazy(12, LazyMsg::WheelReport(report));
    let out = collect(|s| sw.handle_peer_message(1_000, SwitchId::new(3), &msg, s));
    assert!(
        matches!(out.as_slice(), [SwitchOutput::ToController(_)]),
        "wheel report must not pace: {out:?}"
    );
}

#[test]
fn pace_buffer_overflow_drops_oldest() {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    let cn = Message::lazy(
        9,
        LazyMsg::CongestionNotice(lazyctrl_proto::CongestionNoticeMsg { from: 0, level: 6 }),
    );
    let _ = collect(|s| sw.handle_control_message(0, &cn, s));
    for i in 0..100u32 {
        let out =
            collect(|s| sw.handle_local_frame(1_000, PortNo::new(1), host_frame(10, 20 + i, 1), s));
        assert!(controller_msgs(&out).is_empty());
    }
    assert_eq!(sw.punts_paced(), 100);
    assert!(sw.pace_drops() > 0, "overflow must drop the oldest punts");
    assert_eq!(sw.punts_paced() - sw.pace_drops(), 64);
}
