//! The "expanded" trace of §V-D: the real trace plus 30% extra flows among
//! host pairs that never communicated, injected during hours 8–24.
//!
//! This deliberately erodes traffic locality over the day, forcing the
//! grouping to adapt — it drives the dynamic-vs-static contrast in Fig. 7
//! and the update-frequency growth in Fig. 8.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lazyctrl_net::HostId;

use crate::realistic::sample_payload;
use crate::{FlowRecord, Trace};

/// Expands `base` with `extra_fraction` additional flows among previously
/// non-communicating pairs, uniformly over `[start_hour, end_hour)`.
///
/// The paper's expanded trace is `expand(real, 0.30, 8.0, 24.0, seed)`.
///
/// # Panics
///
/// Panics if the hour window is empty or outside the trace duration, or if
/// `extra_fraction` is negative/non-finite.
pub fn expand(
    base: &Trace,
    extra_fraction: f64,
    start_hour: f64,
    end_hour: f64,
    seed: u64,
) -> Trace {
    assert!(
        extra_fraction.is_finite() && extra_fraction >= 0.0,
        "invalid extra_fraction {extra_fraction}"
    );
    assert!(
        start_hour < end_hour,
        "empty hour window [{start_hour}, {end_hour})"
    );
    let duration_hours = base.duration_ns as f64 / 3.6e12;
    assert!(
        end_hour <= duration_hours + 1e-9,
        "window end {end_hour}h beyond trace duration {duration_hours}h"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Pairs that already communicate are off-limits.
    let mut existing = std::collections::HashSet::new();
    for f in &base.flows {
        let key = if f.src.0 < f.dst.0 {
            (f.src.0, f.dst.0)
        } else {
            (f.dst.0, f.src.0)
        };
        existing.insert(key);
    }

    let n_extra = (base.num_flows() as f64 * extra_fraction).round() as usize;
    let start_ns = (start_hour * 3.6e12) as u64;
    let end_ns = (end_hour * 3.6e12) as u64;

    // Fresh pairs are drawn from *hotspots*: newly deployed applications
    // occupy a couple of switches each and generate many flows between
    // previously silent host pairs there. This keeps the new traffic
    // clusterable — an adaptive grouping can absorb a hotspot by merging
    // its two switches' groups, while a frozen grouping keeps paying for
    // it at the controller (the Fig. 7/8 static-vs-dynamic contrast).
    let hosts_by_switch = base.topology.hosts_by_switch();
    let eligible: Vec<usize> = (0..base.topology.num_switches)
        .filter(|&s| !hosts_by_switch[s].is_empty())
        .collect();
    assert!(eligible.len() >= 2, "need at least two populated switches");
    let n_hotspots = (n_extra / 2000).clamp(2, 64);
    let mut fresh_pairs = Vec::new();
    let mut guard = 0;
    while fresh_pairs.len() < (n_extra / 20).max(1) && guard < n_extra * 10 + 100 {
        guard += 1;
        // Pick (or re-pick) a hotspot: two distinct populated switches.
        let sa = eligible[rng.gen_range(0..eligible.len())];
        let mut sb = eligible[rng.gen_range(0..eligible.len())];
        let mut tries = 0;
        while sb == sa && tries < 8 {
            sb = eligible[rng.gen_range(0..eligible.len())];
            tries += 1;
        }
        if sb == sa {
            continue;
        }
        // Several fresh host pairs per hotspot.
        for _ in 0..(n_extra / 20 / n_hotspots).max(1) {
            let a = hosts_by_switch[sa][rng.gen_range(0..hosts_by_switch[sa].len())].0;
            let b = hosts_by_switch[sb][rng.gen_range(0..hosts_by_switch[sb].len())].0;
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            if !existing.contains(&key) {
                existing.insert(key);
                fresh_pairs.push(key);
            }
        }
    }
    assert!(
        !fresh_pairs.is_empty(),
        "could not find any non-communicating pairs to expand with"
    );

    let mut flows = base.flows.clone();
    for _ in 0..n_extra {
        let (a, b) = fresh_pairs[rng.gen_range(0..fresh_pairs.len())];
        let (src, dst) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        flows.push(FlowRecord {
            time_ns: rng.gen_range(start_ns..end_ns),
            src: HostId::new(src),
            dst: HostId::new(dst),
            bytes: sample_payload(&mut rng),
        });
    }
    flows.sort_by_key(|f| f.time_ns);

    let trace = Trace {
        name: format!("{}-expanded", base.name),
        topology: base.topology.clone(),
        flows,
        duration_ns: base.duration_ns,
        nominal: base.nominal,
    };
    trace.validate();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::{generate, RealTraceConfig};

    fn base() -> Trace {
        generate(&RealTraceConfig::small())
    }

    #[test]
    fn adds_thirty_percent() {
        let b = base();
        let e = expand(&b, 0.30, 8.0, 24.0, 7);
        assert_eq!(
            e.num_flows(),
            b.num_flows() + (b.num_flows() as f64 * 0.30).round() as usize
        );
        assert_eq!(e.name, "real-expanded");
        assert_eq!(e.topology, b.topology);
    }

    #[test]
    fn extra_flows_use_fresh_pairs_only() {
        let b = base();
        let e = expand(&b, 0.30, 8.0, 24.0, 7);
        let mut old_pairs = std::collections::HashSet::new();
        for f in &b.flows {
            let key = if f.src.0 < f.dst.0 {
                (f.src.0, f.dst.0)
            } else {
                (f.dst.0, f.src.0)
            };
            old_pairs.insert(key);
        }
        // Count flows on pairs the base trace never used.
        let fresh_flows = e
            .flows
            .iter()
            .filter(|f| {
                let key = if f.src.0 < f.dst.0 {
                    (f.src.0, f.dst.0)
                } else {
                    (f.dst.0, f.src.0)
                };
                !old_pairs.contains(&key)
            })
            .count();
        assert_eq!(
            fresh_flows,
            e.num_flows() - b.num_flows(),
            "every extra flow must be on a previously silent pair"
        );
    }

    #[test]
    fn extra_flows_sit_in_the_window() {
        let b = base();
        let e = expand(&b, 0.30, 8.0, 24.0, 7);
        let start_ns = (8.0 * 3.6e12) as u64;
        let early_base = b.flows_between(0, start_ns).len();
        let early_exp = e.flows_between(0, start_ns).len();
        assert_eq!(
            early_base, early_exp,
            "flows before hour 8 must be untouched"
        );
    }

    #[test]
    fn zero_fraction_is_identity_modulo_name() {
        let b = base();
        let e = expand(&b, 0.0, 8.0, 24.0, 7);
        assert_eq!(e.flows, b.flows);
    }

    #[test]
    #[should_panic(expected = "empty hour window")]
    fn inverted_window_panics() {
        let b = base();
        let _ = expand(&b, 0.1, 10.0, 10.0, 1);
    }

    #[test]
    #[should_panic(expected = "beyond trace duration")]
    fn overlong_window_panics() {
        let b = base();
        let _ = expand(&b, 0.1, 8.0, 48.0, 1);
    }
}
