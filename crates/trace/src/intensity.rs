//! Switch-pair traffic intensity matrices — the input to switch grouping.
//!
//! §III-C.1: "an intensity matrix where each element w_{i,j} represents the
//! normalized traffic intensity (i.e., number of new flows per second)
//! between two edge switches". Built here from a trace window, consumed by
//! `lazyctrl-partition` as a [`WeightedGraph`].

use std::collections::HashMap;

use lazyctrl_partition::WeightedGraph;
use serde::{Deserialize, Serialize};

use crate::Trace;

/// A sparse symmetric switch-pair intensity matrix (new flows/sec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityMatrix {
    num_switches: usize,
    /// `(s_min, s_max) -> flows/sec`.
    entries: HashMap<(u32, u32), f64>,
}

impl IntensityMatrix {
    /// An empty matrix over `num_switches` switches.
    pub fn new(num_switches: usize) -> Self {
        IntensityMatrix {
            num_switches,
            entries: HashMap::new(),
        }
    }

    /// Builds the matrix from all flows in `[start_ns, end_ns)` of `trace`.
    ///
    /// Intra-switch flows (both hosts on one edge switch) don't appear: they
    /// never cross the fabric and are invisible to grouping.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`start_ns >= end_ns`).
    pub fn from_trace_window(trace: &Trace, start_ns: u64, end_ns: u64) -> Self {
        assert!(start_ns < end_ns, "empty window");
        let secs = (end_ns - start_ns) as f64 / 1e9;
        let mut entries: HashMap<(u32, u32), f64> = HashMap::new();
        for f in trace.flows_between(start_ns, end_ns) {
            let a = trace.topology.switch_of(f.src).0;
            let b = trace.topology.switch_of(f.dst).0;
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            *entries.entry(key).or_insert(0.0) += 1.0;
        }
        for v in entries.values_mut() {
            *v /= secs;
        }
        IntensityMatrix {
            num_switches: trace.topology.num_switches,
            entries,
        }
    }

    /// Builds the matrix over the whole trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_window(trace, 0, trace.duration_ns.max(1))
    }

    /// Number of switches (vertex count of [`Self::to_graph`]).
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Number of switch pairs with non-zero intensity.
    pub fn num_pairs(&self) -> usize {
        self.entries.len()
    }

    /// Intensity between two switches (0 when absent, symmetric).
    pub fn intensity(&self, a: u32, b: u32) -> f64 {
        if a == b {
            return 0.0;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.entries.get(&key).copied().unwrap_or(0.0)
    }

    /// Sum of all pairwise intensities.
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Adds intensity between two switches.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range switches, `a == b`, or invalid weights.
    pub fn add(&mut self, a: u32, b: u32, flows_per_sec: f64) {
        assert!(
            (a as usize) < self.num_switches && (b as usize) < self.num_switches,
            "switch out of range"
        );
        assert_ne!(a, b, "self-intensity");
        assert!(
            flows_per_sec.is_finite() && flows_per_sec >= 0.0,
            "invalid intensity"
        );
        let key = if a < b { (a, b) } else { (b, a) };
        *self.entries.entry(key).or_insert(0.0) += flows_per_sec;
    }

    /// Iterates over `(switch_a, switch_b, flows_per_sec)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.entries.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Converts to the partition crate's graph form (vertex = switch).
    pub fn to_graph(&self) -> WeightedGraph {
        WeightedGraph::from_triplets(
            self.num_switches,
            self.triplets().map(|(a, b, w)| (a as usize, b as usize, w)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::{generate, RealTraceConfig};
    use crate::{FlowRecord, NominalParams, Topology};
    use lazyctrl_net::{HostId, SwitchId, TenantId};

    fn tiny_trace() -> Trace {
        // Hosts 0,1 on switch 0; host 2 on switch 1; host 3 on switch 2.
        let topology = Topology {
            num_switches: 3,
            host_switch: vec![
                SwitchId::new(0),
                SwitchId::new(0),
                SwitchId::new(1),
                SwitchId::new(2),
            ],
            host_tenant: vec![TenantId::new(1); 4],
        };
        let mk = |t: u64, s: u32, d: u32| FlowRecord {
            time_ns: t,
            src: HostId::new(s),
            dst: HostId::new(d),
            bytes: 100,
        };
        Trace {
            name: "tiny".into(),
            topology,
            flows: vec![
                mk(0, 0, 1),             // intra-switch: ignored
                mk(1_000_000_000, 0, 2), // S0-S1
                mk(2_000_000_000, 2, 0), // S1-S0 (same pair)
                mk(3_000_000_000, 1, 3), // S0-S2
            ],
            duration_ns: 10_000_000_000, // 10 s
            nominal: NominalParams::default(),
        }
    }

    #[test]
    fn builds_flows_per_second() {
        let m = IntensityMatrix::from_trace(&tiny_trace());
        assert_eq!(m.num_pairs(), 2);
        assert!((m.intensity(0, 1) - 0.2).abs() < 1e-12); // 2 flows / 10 s
        assert!((m.intensity(1, 0) - 0.2).abs() < 1e-12); // symmetric
        assert!((m.intensity(0, 2) - 0.1).abs() < 1e-12);
        assert_eq!(m.intensity(1, 2), 0.0);
        assert!((m.total() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn windowing_selects_flows() {
        let t = tiny_trace();
        let m = IntensityMatrix::from_trace_window(&t, 0, 1_500_000_000);
        assert_eq!(m.num_pairs(), 1);
        // One S0-S1 flow in 1.5 s.
        assert!((m.intensity(0, 1) - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn to_graph_preserves_weights() {
        let m = IntensityMatrix::from_trace(&tiny_trace());
        let g = m.to_graph();
        assert_eq!(g.num_vertices(), 3);
        assert!((g.edge_weight(0, 1) - 0.2).abs() < 1e-12);
        assert!((g.total_edge_weight() - m.total()).abs() < 1e-12);
    }

    #[test]
    fn manual_adds_accumulate() {
        let mut m = IntensityMatrix::new(4);
        m.add(0, 1, 1.5);
        m.add(1, 0, 0.5);
        assert_eq!(m.intensity(0, 1), 2.0);
    }

    #[test]
    fn realistic_trace_matrix_is_localized() {
        // Tenant locality must show up as a sparse, clustered matrix.
        let trace = generate(&RealTraceConfig::small());
        let m = IntensityMatrix::from_trace(&trace);
        // Tenant locality concentrates the heavy pairs; the diffuse
        // background touches many switch pairs lightly, so assert on
        // weight concentration instead of raw pair count.
        let possible = 40 * 39 / 2;
        assert!(
            m.num_pairs() < possible,
            "every pair active: {}",
            m.num_pairs()
        );
        let mut weights: Vec<f64> = m.triplets().map(|(_, _, w)| w).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let top20: f64 = weights.iter().take(weights.len() / 5).sum();
        let total: f64 = weights.iter().sum();
        assert!(
            top20 / total > 0.6,
            "top-20% switch pairs carry only {:.2} of intensity",
            top20 / total
        );
        assert!(m.total() > 0.0);
    }

    #[test]
    #[should_panic(expected = "self-intensity")]
    fn self_add_panics() {
        let mut m = IntensityMatrix::new(2);
        m.add(1, 1, 1.0);
    }
}
