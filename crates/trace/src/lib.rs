//! Traffic traces for LazyCtrl experiments.
//!
//! The paper evaluates on a proprietary day-long trace from a European
//! production data center (272 edge switches, 6509 hosts, 271M flows,
//! average k=5 centrality 0.85) and three synthetic traces derived from it
//! by the (p, q) procedure of §V-B (Table II). Neither the real trace nor
//! the original synthetic derivations are available, so this crate builds
//! statistical surrogates that match every aggregate the paper reports
//! (see `DESIGN.md` for the substitution argument):
//!
//! * [`TenantModel`] — multi-tenant host placement: tenant sizes in the
//!   20–100 VM band (§II-B), hosts placed on a window of nearby switches;
//! * [`realistic`] — the "real" trace surrogate: skewed pair popularity
//!   (≈90% of flows from ≈10% of communicating pairs), strong tenant
//!   locality, diurnal rate profile;
//! * [`synthetic`] — the paper's own (p, q) generation procedure at ×10
//!   scale (Syn-A/B/C);
//! * [`expand`] — the "+30% flows among previously non-communicating hosts
//!   during hours 8–24" variant used in Fig. 7/8;
//! * [`intensity`] — switch-pair intensity matrices (new flows/sec), the
//!   input to switch grouping;
//! * [`stats`] — Table II statistics (flow counts, centrality via k-way
//!   partitioning) computed *from the generated trace itself*.
//!
//! Everything is deterministic given the config seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
pub mod intensity;
mod model;
pub mod realistic;
pub mod stats;
pub mod synthetic;
mod tenant;
mod zipf;

pub use intensity::IntensityMatrix;
pub use model::{FlowRecord, NominalParams, Topology, Trace};
pub use stats::TraceStats;
pub use tenant::{TenantModel, TenantModelConfig};
pub use zipf::Zipf;
