use lazyctrl_net::{HostId, SwitchId, TenantId};
use serde::{Deserialize, Serialize};

/// Static description of the emulated data center: which switch and tenant
/// every host belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of edge switches.
    pub num_switches: usize,
    /// Host → edge switch attachment, indexed by `HostId`.
    pub host_switch: Vec<SwitchId>,
    /// Host → tenant, indexed by `HostId`.
    pub host_tenant: Vec<TenantId>,
}

impl Topology {
    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.host_switch.len()
    }

    /// Number of distinct tenants.
    pub fn num_tenants(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for t in &self.host_tenant {
            seen.insert(*t);
        }
        seen.len()
    }

    /// The switch a host is attached to.
    pub fn switch_of(&self, host: HostId) -> SwitchId {
        self.host_switch[host.index()]
    }

    /// The tenant a host belongs to.
    pub fn tenant_of(&self, host: HostId) -> TenantId {
        self.host_tenant[host.index()]
    }

    /// Hosts attached to each switch.
    pub fn hosts_by_switch(&self) -> Vec<Vec<HostId>> {
        let mut out = vec![Vec::new(); self.num_switches];
        for (h, s) in self.host_switch.iter().enumerate() {
            out[s.index()].push(HostId::new(h as u32));
        }
        out
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the tenant vector length differs from the switch vector,
    /// or any switch index is out of range.
    pub fn validate(&self) {
        assert_eq!(
            self.host_switch.len(),
            self.host_tenant.len(),
            "host vectors disagree in length"
        );
        for (h, s) in self.host_switch.iter().enumerate() {
            assert!(
                s.index() < self.num_switches,
                "host {h} on out-of-range switch {s}"
            );
        }
    }
}

/// One flow arrival: the moment a fresh flow's first packet enters the
/// network (the event that can miss tables and reach the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Arrival time in nanoseconds since trace start.
    pub time_ns: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Flow payload size in bytes (cosmetic; control-plane load is
    /// per-flow, not per-byte).
    pub bytes: u32,
}

/// The nominal (p, q) parameters of a synthetic trace, for Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NominalParams {
    /// Percentage of flows drawn from the hot pair set.
    pub p: Option<f64>,
    /// Hot pair set size as a percentage of all host pairs.
    pub q: Option<f64>,
}

/// A complete traffic trace: topology plus time-ordered flow arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable name ("real", "syn-a", ...).
    pub name: String,
    /// The emulated data center.
    pub topology: Topology,
    /// Flow arrivals sorted by `time_ns`.
    pub flows: Vec<FlowRecord>,
    /// Trace duration in nanoseconds.
    pub duration_ns: u64,
    /// Nominal generation parameters, when applicable.
    pub nominal: NominalParams,
}

impl Trace {
    /// Number of flow arrivals.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Trace duration in hours.
    pub fn duration_hours(&self) -> f64 {
        self.duration_ns as f64 / 3.6e12
    }

    /// Iterates over flows within `[start_ns, end_ns)`.
    pub fn flows_between(&self, start_ns: u64, end_ns: u64) -> &[FlowRecord] {
        let lo = self.flows.partition_point(|f| f.time_ns < start_ns);
        let hi = self.flows.partition_point(|f| f.time_ns < end_ns);
        &self.flows[lo..hi]
    }

    /// Asserts the invariants generators must uphold: sorted flows, valid
    /// host ids, no self-flows.
    ///
    /// # Panics
    ///
    /// Panics when any invariant is violated.
    pub fn validate(&self) {
        self.topology.validate();
        let n = self.topology.num_hosts() as u32;
        let mut last = 0u64;
        for f in &self.flows {
            assert!(f.time_ns >= last, "flows out of order");
            assert!(f.time_ns <= self.duration_ns, "flow beyond duration");
            assert!(f.src.0 < n && f.dst.0 < n, "flow host out of range");
            assert_ne!(f.src, f.dst, "self-flow");
            last = f.time_ns;
        }
    }

    /// Distinct communicating (unordered) host pairs.
    pub fn distinct_pairs(&self) -> usize {
        let mut pairs = std::collections::HashSet::new();
        for f in &self.flows {
            let key = if f.src.0 < f.dst.0 {
                (f.src.0, f.dst.0)
            } else {
                (f.dst.0, f.src.0)
            };
            pairs.insert(key);
        }
        pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_topology() -> Topology {
        Topology {
            num_switches: 2,
            host_switch: vec![SwitchId::new(0), SwitchId::new(0), SwitchId::new(1)],
            host_tenant: vec![TenantId::new(1), TenantId::new(1), TenantId::new(2)],
        }
    }

    fn toy_trace() -> Trace {
        Trace {
            name: "toy".into(),
            topology: toy_topology(),
            flows: vec![
                FlowRecord {
                    time_ns: 10,
                    src: HostId::new(0),
                    dst: HostId::new(1),
                    bytes: 100,
                },
                FlowRecord {
                    time_ns: 20,
                    src: HostId::new(1),
                    dst: HostId::new(2),
                    bytes: 200,
                },
                FlowRecord {
                    time_ns: 30,
                    src: HostId::new(0),
                    dst: HostId::new(1),
                    bytes: 300,
                },
            ],
            duration_ns: 100,
            nominal: NominalParams::default(),
        }
    }

    #[test]
    fn topology_queries() {
        let t = toy_topology();
        t.validate();
        assert_eq!(t.num_hosts(), 3);
        assert_eq!(t.num_tenants(), 2);
        assert_eq!(t.switch_of(HostId::new(2)), SwitchId::new(1));
        assert_eq!(t.tenant_of(HostId::new(0)), TenantId::new(1));
        let by_switch = t.hosts_by_switch();
        assert_eq!(by_switch[0], vec![HostId::new(0), HostId::new(1)]);
        assert_eq!(by_switch[1], vec![HostId::new(2)]);
    }

    #[test]
    fn trace_queries() {
        let tr = toy_trace();
        tr.validate();
        assert_eq!(tr.num_flows(), 3);
        assert_eq!(tr.distinct_pairs(), 2);
        assert_eq!(tr.flows_between(15, 35).len(), 2);
        assert_eq!(tr.flows_between(0, 10).len(), 0);
        assert_eq!(tr.flows_between(0, 11).len(), 1);
    }

    #[test]
    #[should_panic(expected = "flows out of order")]
    fn unsorted_flows_rejected() {
        let mut tr = toy_trace();
        tr.flows.swap(0, 2);
        tr.validate();
    }

    #[test]
    #[should_panic(expected = "self-flow")]
    fn self_flow_rejected() {
        let mut tr = toy_trace();
        tr.flows[0].dst = tr.flows[0].src;
        tr.validate();
    }
}
