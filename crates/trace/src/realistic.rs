//! Surrogate generator for the paper's proprietary "real" trace.
//!
//! The original is a day-long trace from a European production data center:
//! 272 GigE edge switches, 6509 hosts, 271M flows; only 11,602 of >20M host
//! pairs ever communicated; >90% of flows came from ~10% of those pairs;
//! k=5 partitioning leaves <9.8% inter-group traffic (average centrality
//! 0.853). This module generates a trace matching those aggregates — the
//! statistics the grouping algorithm and every experiment actually consume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use lazyctrl_net::HostId;

use crate::tenant::{TenantModel, TenantModelConfig};
use crate::zipf::Zipf;
use crate::{FlowRecord, NominalParams, Trace};

/// Per-2-hour activity multipliers over the day, shaped like the Fig. 7
/// OpenFlow workload curve (quiet nights, mid-day peak).
pub const DIURNAL_PROFILE: [f64; 12] = [3.2, 3.0, 3.4, 4.3, 5.4, 6.3, 7.2, 7.6, 7.1, 6.2, 5.2, 4.2];

/// Configuration for the real-trace surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealTraceConfig {
    /// Tenant/placement model (defaults to the paper's 6509/272 shape).
    pub tenants: TenantModelConfig,
    /// Flow arrivals to generate. The paper's 271M is scaled down by
    /// default (shape is preserved; absolute counts scale linearly).
    pub num_flows: usize,
    /// Trace length in hours (paper: 24).
    pub duration_hours: u64,
    /// Number of distinct communicating host pairs (paper: 11,602).
    pub communicating_pairs: usize,
    /// Fraction of communicating pairs that are intra-tenant. Tuned so
    /// k=5 centrality lands at the paper's 0.85.
    pub intra_tenant_fraction: f64,
    /// Fraction of flows drawn from a *diffuse* uniform background pool
    /// (pairs scattered across all hosts, each carrying little traffic).
    /// This is what produces the paper's ≈9.8% inter-group residue: the
    /// partitioner can co-locate heavy pairs but not diffuse ones.
    pub background_fraction: f64,
    /// Top fraction of pairs that carry `hot_mass` of the flows.
    pub hot_fraction: f64,
    /// Mass carried by the top `hot_fraction` (paper: 0.90 on 0.10).
    pub hot_mass: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealTraceConfig {
    fn default() -> Self {
        RealTraceConfig {
            tenants: TenantModelConfig::paper_real(),
            num_flows: 250_000,
            duration_hours: 24,
            communicating_pairs: 11_602,
            intra_tenant_fraction: 0.95,
            background_fraction: 0.08,
            hot_fraction: 0.10,
            hot_mass: 0.90,
            seed: 0xDC01,
        }
    }
}

impl RealTraceConfig {
    /// A reduced-size config for fast unit tests and examples: 40 switches,
    /// ~1000 hosts, 20k flows.
    pub fn small() -> Self {
        RealTraceConfig {
            tenants: TenantModelConfig {
                num_hosts: 1000,
                num_switches: 40,
                min_tenant_size: 20,
                max_tenant_size: 100,
                hosts_per_switch: 8,
            },
            num_flows: 20_000,
            communicating_pairs: 1_800,
            ..RealTraceConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on empty flows/pairs, bad fractions, or zero duration.
    pub fn validate(&self) {
        self.tenants.validate();
        assert!(self.num_flows > 0, "no flows requested");
        assert!(self.communicating_pairs > 0, "no communicating pairs");
        assert!(self.duration_hours > 0, "zero duration");
        assert!(
            (0.0..=1.0).contains(&self.intra_tenant_fraction),
            "intra_tenant_fraction out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.background_fraction),
            "background_fraction out of [0,1]"
        );
        assert!(
            self.hot_fraction > 0.0 && self.hot_fraction < 1.0,
            "hot_fraction out of (0,1)"
        );
        assert!(
            self.hot_mass > 0.0 && self.hot_mass < 1.0,
            "hot_mass out of (0,1)"
        );
    }
}

/// Samples a payload size: mixture of mice and elephants (log-uniform).
pub(crate) fn sample_payload<R: Rng>(rng: &mut R) -> u32 {
    let exp = rng.gen_range(6.0..17.0); // 2^6=64 B .. 2^17=128 KiB
    (2.0f64.powf(exp)) as u32
}

/// Samples a flow timestamp following the diurnal profile.
pub(crate) fn sample_time_ns<R: Rng>(duration_hours: u64, rng: &mut R) -> u64 {
    let total: f64 = DIURNAL_PROFILE.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    let mut bucket = 0usize;
    for (i, &w) in DIURNAL_PROFILE.iter().enumerate() {
        if u < w {
            bucket = i;
            break;
        }
        u -= w;
    }
    // The profile describes a 24 h day in 2 h buckets; scale to duration.
    let bucket_ns = duration_hours * 3_600_000_000_000 / 12;
    bucket as u64 * bucket_ns + rng.gen_range(0..bucket_ns)
}

/// Builds the communicating-pair set for the surrogate.
pub(crate) fn build_pair_set<R: Rng>(
    model: &TenantModel,
    count: usize,
    intra_fraction: f64,
    rng: &mut R,
) -> Vec<(u32, u32)> {
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut pairs = Vec::with_capacity(count);
    let mut stall = 0usize;
    while pairs.len() < count && stall < count * 50 {
        let pair = if rng.gen_bool(intra_fraction) {
            model
                .sample_intra_pair(rng)
                .unwrap_or_else(|| model.sample_any_pair(rng))
        } else {
            model.sample_any_pair(rng)
        };
        let key = if pair.0 < pair.1 {
            (pair.0, pair.1)
        } else {
            (pair.1, pair.0)
        };
        if seen.insert(key) {
            pairs.push(key);
            stall = 0;
        } else {
            stall += 1;
        }
    }
    pairs
}

/// Generates the surrogate trace.
///
/// # Panics
///
/// Panics on invalid configuration.
pub fn generate(cfg: &RealTraceConfig) -> Trace {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = TenantModel::generate(&cfg.tenants, &mut rng);
    let pairs = build_pair_set(
        &model,
        cfg.communicating_pairs,
        cfg.intra_tenant_fraction,
        &mut rng,
    );
    let alpha = Zipf::fit_alpha(pairs.len(), cfg.hot_fraction, cfg.hot_mass);
    let zipf = Zipf::new(pairs.len(), alpha);
    // Diffuse background: pairs sampled uniformly over all hosts, each
    // carrying a light, even share of the background traffic.
    let background = build_pair_set(&model, cfg.communicating_pairs / 2, 0.0, &mut rng);

    let mut flows = Vec::with_capacity(cfg.num_flows);
    for _ in 0..cfg.num_flows {
        let (a, b) = if !background.is_empty() && rng.gen_bool(cfg.background_fraction) {
            background[rng.gen_range(0..background.len())]
        } else {
            pairs[zipf.sample(&mut rng)]
        };
        let (src, dst) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        flows.push(FlowRecord {
            time_ns: sample_time_ns(cfg.duration_hours, &mut rng),
            src: HostId::new(src),
            dst: HostId::new(dst),
            bytes: sample_payload(&mut rng),
        });
    }
    flows.sort_by_key(|f| f.time_ns);

    let trace = Trace {
        name: "real".into(),
        topology: model.topology,
        flows,
        duration_ns: cfg.duration_hours * 3_600_000_000_000,
        nominal: NominalParams::default(),
    };
    trace.validate();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = RealTraceConfig::small();
        let trace = generate(&cfg);
        assert_eq!(trace.num_flows(), 20_000);
        assert_eq!(trace.topology.num_switches, 40);
        assert_eq!(trace.topology.num_hosts(), 1000);
        // The candidate pool has 1800 pairs; under heavy Zipf skew only the
        // pairs that actually draw ≥1 flow are "communicating" (exactly the
        // paper's definition — 11,602 pairs *exchanged traffic*).
        let dp = trace.distinct_pairs();
        assert!(
            (700..=2700).contains(&dp),
            "distinct pairs {dp} outside plausible band"
        );
    }

    #[test]
    fn flow_popularity_is_skewed() {
        let trace = generate(&RealTraceConfig::small());
        let mut counts = std::collections::HashMap::new();
        for f in &trace.flows {
            let key = if f.src.0 < f.dst.0 {
                (f.src.0, f.dst.0)
            } else {
                (f.dst.0, f.src.0)
            };
            *counts.entry(key).or_insert(0u32) += 1;
        }
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10 = sorted.len() / 10;
        let top_mass: u32 = sorted[..top10].iter().sum();
        let share = top_mass as f64 / trace.num_flows() as f64;
        assert!(
            share > 0.80,
            "top-10% pairs carry only {share:.2} of flows (want ≈0.90)"
        );
    }

    #[test]
    fn flows_are_mostly_intra_tenant() {
        let trace = generate(&RealTraceConfig::small());
        let intra = trace
            .flows
            .iter()
            .filter(|f| trace.topology.tenant_of(f.src) == trace.topology.tenant_of(f.dst))
            .count();
        let frac = intra as f64 / trace.num_flows() as f64;
        assert!(frac > 0.85, "intra-tenant flow fraction {frac} too low");
    }

    #[test]
    fn diurnal_profile_shows_through() {
        let trace = generate(&RealTraceConfig::small());
        let bucket_ns = trace.duration_ns / 12;
        let night = trace.flows_between(0, bucket_ns).len(); // hours 0-2
        let peak = trace.flows_between(7 * bucket_ns, 8 * bucket_ns).len(); // 14-16
        assert!(
            peak as f64 > night as f64 * 1.5,
            "peak {peak} not clearly above night {night}"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&RealTraceConfig::small());
        let b = generate(&RealTraceConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn payload_sampler_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let b = sample_payload(&mut rng);
            assert!((64..=131_072).contains(&b), "payload {b}");
        }
    }
}
