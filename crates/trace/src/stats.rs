//! Table II statistics, computed from generated traces.
//!
//! The paper characterizes each trace by flow count and *average
//! centrality* under an even k-way partition of the hosts (§II-A uses k=5).
//! This module reproduces that measurement pipeline: host-pair graph →
//! size-constrained MLkP → per-group centrality.

use lazyctrl_partition::{metrics, mlkp, MlkpConfig, WeightedGraph};
use serde::{Deserialize, Serialize};

use crate::Trace;

/// One Table II row, measured (not asserted) from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Number of flow arrivals.
    pub num_flows: usize,
    /// Distinct communicating host pairs.
    pub distinct_pairs: usize,
    /// Average group centrality under an even k-way host partition.
    pub avg_centrality: f64,
    /// Fraction of traffic crossing the k groups (the paper's "<9.8%").
    pub inter_group_fraction: f64,
    /// Share of flows carried by the top 10% of communicating pairs.
    pub top10_share: f64,
    /// Nominal p (synthetic traces only).
    pub p: Option<f64>,
    /// Nominal q (synthetic traces only).
    pub q: Option<f64>,
}

/// Builds the host-level communication graph: vertices are hosts, edge
/// weights are flow counts between the pair.
pub fn host_graph(trace: &Trace) -> WeightedGraph {
    let n = trace.topology.num_hosts();
    let mut counts: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for f in &trace.flows {
        let key = if f.src.0 < f.dst.0 {
            (f.src.0, f.dst.0)
        } else {
            (f.dst.0, f.src.0)
        };
        *counts.entry(key).or_insert(0.0) += 1.0;
    }
    WeightedGraph::from_triplets(
        n,
        counts
            .into_iter()
            .map(|((a, b), w)| (a as usize, b as usize, w)),
    )
}

/// Computes a trace's Table II row: centrality via an (approximately even)
/// `k`-way partition of the hosts, as in §II-A.
pub fn compute(trace: &Trace, k: usize, seed: u64) -> TraceStats {
    let g = host_graph(trace);
    let n = g.num_vertices();
    // "partitioning the hosts evenly into k groups": allow 5% slack.
    let cap = (n as f64 / k as f64 * 1.05).ceil();
    let part = mlkp(
        &g,
        &MlkpConfig::new(k).with_max_part_weight(cap).with_seed(seed),
    );
    let avg_centrality = metrics::average_centrality(&g, &part);
    let inter_group_fraction = metrics::normalized_inter_group_intensity(&g, &part);

    // Top-10% pair share.
    let mut pair_counts: Vec<f64> = {
        let mut m: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
        for f in &trace.flows {
            let key = if f.src.0 < f.dst.0 {
                (f.src.0, f.dst.0)
            } else {
                (f.dst.0, f.src.0)
            };
            *m.entry(key).or_insert(0.0) += 1.0;
        }
        m.into_values().collect()
    };
    pair_counts.sort_by(|a, b| b.partial_cmp(a).expect("finite counts"));
    let top_k = (pair_counts.len() / 10).max(1);
    let top10_share = if trace.num_flows() == 0 {
        0.0
    } else {
        pair_counts.iter().take(top_k).sum::<f64>() / trace.num_flows() as f64
    };

    TraceStats {
        name: trace.name.clone(),
        num_flows: trace.num_flows(),
        distinct_pairs: pair_counts.len(),
        avg_centrality,
        inter_group_fraction,
        top10_share,
        p: trace.nominal.p,
        q: trace.nominal.q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::{generate, RealTraceConfig};

    #[test]
    fn real_surrogate_matches_paper_aggregates() {
        let trace = generate(&RealTraceConfig::small());
        let stats = compute(&trace, 5, 1);
        // §II-A: average centrality 0.853, inter-group < 9.8%, 90/10 skew.
        assert!(
            stats.avg_centrality > 0.75,
            "centrality {} below paper band",
            stats.avg_centrality
        );
        assert!(
            stats.inter_group_fraction < 0.20,
            "inter-group fraction {} too high",
            stats.inter_group_fraction
        );
        assert!(
            stats.top10_share > 0.80,
            "top-10% share {} too low",
            stats.top10_share
        );
        assert_eq!(stats.num_flows, trace.num_flows());
        assert_eq!(stats.p, None);
    }

    #[test]
    fn host_graph_shape() {
        let trace = generate(&RealTraceConfig::small());
        let g = host_graph(&trace);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), trace.distinct_pairs());
        assert!((g.total_edge_weight() - trace.num_flows() as f64).abs() < 1e-9);
    }

    #[test]
    fn stats_are_deterministic() {
        let trace = generate(&RealTraceConfig::small());
        assert_eq!(compute(&trace, 5, 42), compute(&trace, 5, 42));
    }
}
