//! Multi-tenant host placement.
//!
//! §II-B: tenant sizes sit stably in the 20–100 VM band while tenant counts
//! grow; traffic is "aggregated within some size-limited groups of hosts".
//! The placement model gives every tenant a *window* of nearby switches and
//! scatters its hosts within that window — the physical locality that makes
//! affinity-based switch grouping effective.

use lazyctrl_net::{SwitchId, TenantId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Topology;

/// Configuration for the tenant/placement generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantModelConfig {
    /// Total hosts to create.
    pub num_hosts: usize,
    /// Total edge switches.
    pub num_switches: usize,
    /// Smallest tenant (VM count).
    pub min_tenant_size: usize,
    /// Largest tenant (VM count).
    pub max_tenant_size: usize,
    /// How many hosts of a tenant share one switch on average; the tenant's
    /// switch window is `ceil(size / hosts_per_switch)` wide.
    pub hosts_per_switch: usize,
}

impl TenantModelConfig {
    /// The paper's real-trace shape: 6509 hosts on 272 switches, tenants of
    /// 20–100 VMs (Amazon EC2 numbers, §II-B).
    pub fn paper_real() -> Self {
        TenantModelConfig {
            num_hosts: 6509,
            num_switches: 272,
            min_tenant_size: 20,
            max_tenant_size: 100,
            hosts_per_switch: 8,
        }
    }

    /// The ×10 synthetic scale: 65090 hosts on 2713 switches.
    pub fn paper_synthetic() -> Self {
        TenantModelConfig {
            num_hosts: 65_090,
            num_switches: 2713,
            min_tenant_size: 20,
            max_tenant_size: 100,
            hosts_per_switch: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero hosts/switches, an inverted size band, or a zero
    /// `hosts_per_switch`.
    pub fn validate(&self) {
        assert!(self.num_hosts > 0, "no hosts");
        assert!(self.num_switches > 0, "no switches");
        assert!(
            self.min_tenant_size > 0 && self.min_tenant_size <= self.max_tenant_size,
            "invalid tenant size band"
        );
        assert!(
            self.hosts_per_switch > 0,
            "hosts_per_switch must be positive"
        );
    }
}

/// The generated tenant structure (wraps a [`Topology`] plus membership
/// lists).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantModel {
    /// The topology: host → switch, host → tenant.
    pub topology: Topology,
    /// Hosts of each tenant, indexed by tenant id − 1.
    pub members: Vec<Vec<u32>>,
}

impl TenantModel {
    /// Generates tenants and placements.
    ///
    /// Tenant ids start at 1 (0 is reserved for "no tenant"). Tenant ids
    /// wrap modulo the 12-bit VLAN space if there are more than 4095
    /// tenants, mirroring how real deployments re-use VLAN ids across
    /// isolation domains.
    pub fn generate<R: Rng>(cfg: &TenantModelConfig, rng: &mut R) -> Self {
        cfg.validate();
        let mut host_switch = Vec::with_capacity(cfg.num_hosts);
        let mut host_tenant = Vec::with_capacity(cfg.num_hosts);
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut next_host = 0u32;
        let mut window_start = 0usize;
        while (next_host as usize) < cfg.num_hosts {
            let remaining = cfg.num_hosts - next_host as usize;
            let size = rng
                .gen_range(cfg.min_tenant_size..=cfg.max_tenant_size)
                .min(remaining);
            let tenant_index = members.len();
            let tenant_id = TenantId::new((tenant_index % 4095 + 1) as u16);
            let window = size.div_ceil(cfg.hosts_per_switch).max(1);
            let mut my_hosts = Vec::with_capacity(size);
            for _ in 0..size {
                let offset = rng.gen_range(0..window);
                let switch = (window_start + offset) % cfg.num_switches;
                host_switch.push(SwitchId::new(switch as u32));
                host_tenant.push(tenant_id);
                my_hosts.push(next_host);
                next_host += 1;
            }
            members.push(my_hosts);
            // Slide the window; overlap a little so switches host a few
            // tenants each (the paper's motivation for host exclusion).
            window_start = (window_start + window.max(1)) % cfg.num_switches;
        }
        let topology = Topology {
            num_switches: cfg.num_switches,
            host_switch,
            host_tenant,
        };
        topology.validate();
        TenantModel { topology, members }
    }

    /// Number of tenants generated.
    pub fn num_tenants(&self) -> usize {
        self.members.len()
    }

    /// Samples an intra-tenant host pair (two distinct hosts of one
    /// tenant), or `None` if every tenant has a single host.
    pub fn sample_intra_pair<R: Rng>(&self, rng: &mut R) -> Option<(u32, u32)> {
        for _ in 0..32 {
            let t = rng.gen_range(0..self.members.len());
            let m = &self.members[t];
            if m.len() < 2 {
                continue;
            }
            let a = m[rng.gen_range(0..m.len())];
            let mut b = m[rng.gen_range(0..m.len())];
            let mut guard = 0;
            while b == a && guard < 16 {
                b = m[rng.gen_range(0..m.len())];
                guard += 1;
            }
            if a != b {
                return Some((a, b));
            }
        }
        None
    }

    /// Samples a uniformly random distinct host pair.
    pub fn sample_any_pair<R: Rng>(&self, rng: &mut R) -> (u32, u32) {
        let n = self.topology.num_hosts() as u32;
        debug_assert!(n >= 2, "need at least two hosts");
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> TenantModelConfig {
        TenantModelConfig {
            num_hosts: 500,
            num_switches: 20,
            min_tenant_size: 20,
            max_tenant_size: 100,
            hosts_per_switch: 8,
        }
    }

    #[test]
    fn generates_valid_topology() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = TenantModel::generate(&small_cfg(), &mut rng);
        assert_eq!(model.topology.num_hosts(), 500);
        assert_eq!(model.topology.num_switches, 20);
        // Tenant sizes in band (except possibly the last, truncated).
        for (i, m) in model.members.iter().enumerate() {
            if i + 1 < model.members.len() {
                assert!((20..=100).contains(&m.len()), "tenant {i} size {}", m.len());
            }
            assert!(!m.is_empty());
        }
        let total: usize = model.members.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn tenants_are_localized() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = TenantModel::generate(&small_cfg(), &mut rng);
        // Each tenant should span far fewer switches than the fabric has.
        for m in &model.members {
            let mut switches = std::collections::HashSet::new();
            for &h in m {
                switches.insert(model.topology.host_switch[h as usize]);
            }
            assert!(
                switches.len() <= m.len().div_ceil(8) + 1,
                "tenant spans {} switches for {} hosts",
                switches.len(),
                m.len()
            );
        }
    }

    #[test]
    fn intra_pairs_share_tenant() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = TenantModel::generate(&small_cfg(), &mut rng);
        for _ in 0..200 {
            let (a, b) = model
                .sample_intra_pair(&mut rng)
                .expect("tenants ≥ 20 hosts");
            assert_ne!(a, b);
            assert_eq!(
                model.topology.host_tenant[a as usize],
                model.topology.host_tenant[b as usize]
            );
        }
    }

    #[test]
    fn any_pairs_are_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = TenantModel::generate(&small_cfg(), &mut rng);
        for _ in 0..200 {
            let (a, b) = model.sample_any_pair(&mut rng);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TenantModel::generate(&small_cfg(), &mut StdRng::seed_from_u64(9));
        let b = TenantModel::generate(&small_cfg(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn paper_configs_are_consistent() {
        TenantModelConfig::paper_real().validate();
        TenantModelConfig::paper_synthetic().validate();
        assert_eq!(TenantModelConfig::paper_real().num_hosts, 6509);
        assert_eq!(TenantModelConfig::paper_synthetic().num_switches, 2713);
    }
}
