//! Zipf-distributed sampling over ranks `0..n`, used for pair popularity
//! (data-center flow counts per host pair are heavily skewed: the paper's
//! real trace has ~90% of flows on ~10% of communicating pairs).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Zipf(α) sampler over `n` ranks with a precomputed inverse-CDF table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with exponent `alpha`.
    ///
    /// Rank 0 is the most popular. `alpha = 0` degenerates to uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(alpha.is_finite() && alpha >= 0.0, "invalid alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (never empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of the given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Fraction of total mass held by the top `k` ranks.
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }

    /// Finds the exponent `alpha` such that the top `top_frac` of ranks
    /// carry approximately `mass_frac` of the mass (bisection search).
    ///
    /// This is how the "90% of flows from 10% of pairs" constraint is
    /// turned into a concrete sampler.
    ///
    /// # Panics
    ///
    /// Panics unless both fractions are in `(0, 1)`.
    pub fn fit_alpha(n: usize, top_frac: f64, mass_frac: f64) -> f64 {
        assert!((0.0..1.0).contains(&top_frac) && top_frac > 0.0);
        assert!((0.0..1.0).contains(&mass_frac) && mass_frac > 0.0);
        let k = ((n as f64 * top_frac).round() as usize).max(1);
        let (mut lo, mut hi) = (0.0f64, 4.0f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            let z = Zipf::new(n, mid);
            if z.top_k_mass(k) < mass_frac {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        for rank in 0..4 {
            assert!((z.pmf(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_mass_ordering() {
        let z = Zipf::new(100, 1.2);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        assert!(z.top_k_mass(10) > 0.4);
        assert!((z.top_k_mass(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let emp = count as f64 / trials as f64;
            let theory = z.pmf(rank);
            assert!(
                (emp - theory).abs() < 0.01,
                "rank {rank}: empirical {emp} vs {theory}"
            );
        }
    }

    #[test]
    fn fit_alpha_hits_the_target() {
        // The paper's constraint: top 10% of pairs carry 90% of flows.
        let n = 10_000;
        let alpha = Zipf::fit_alpha(n, 0.10, 0.90);
        let z = Zipf::new(n, alpha);
        let mass = z.top_k_mass(1000);
        assert!((mass - 0.90).abs() < 0.01, "top-10% mass {mass}");
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
