//! Calibration sweep (ignored by default): prints measured centralities
//! for candidate generator parameters.
use lazyctrl_trace::realistic::{generate, RealTraceConfig};
use lazyctrl_trace::stats;
use lazyctrl_trace::synthetic::{generate as gen_syn, SyntheticConfig};

#[test]
#[ignore]
fn sweep_real_intra_fraction() {
    for frac in [0.80, 0.85, 0.88, 0.90, 0.93] {
        let mut cfg = RealTraceConfig::small();
        cfg.num_flows = 60_000;
        cfg.intra_tenant_fraction = frac;
        let t = generate(&cfg);
        let s = stats::compute(&t, 5, 1);
        println!(
            "real intra={frac}: centrality={:.3} inter={:.3} top10={:.2}",
            s.avg_centrality, s.inter_group_fraction, s.top10_share
        );
    }
}

#[test]
#[ignore]
fn sweep_syn_bias() {
    for (name, base, biases) in [
        ("syn-a", SyntheticConfig::syn_a(), [1.00, 0.97, 0.94]),
        ("syn-b", SyntheticConfig::syn_b(), [0.97, 0.92, 0.88]),
        ("syn-c", SyntheticConfig::syn_c(), [0.85, 0.80, 0.75]),
    ] {
        for bias in biases {
            let mut cfg = base.clone().scaled_down(8);
            cfg.hot_intra_bias = bias;
            let t = gen_syn(&cfg);
            let s = stats::compute(&t, 5, 1);
            println!(
                "{name} bias={bias}: centrality={:.3} inter={:.3}",
                s.avg_centrality, s.inter_group_fraction
            );
        }
    }
}
