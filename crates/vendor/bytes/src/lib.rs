//! Offline stand-in for the `bytes` crate (see `DESIGN.md`, "vendored
//! stubs").
//!
//! Provides exactly the subset the workspace uses: the [`Buf`] reader trait
//! implemented for `&[u8]` (big-endian reads, like the real crate) and the
//! [`BufMut`] writer trait implemented for `Vec<u8>`. All wire formats in
//! `lazyctrl-net` / `lazyctrl-proto` go through these two traits, so the
//! byte-for-byte encodings are identical to what the real crate would
//! produce.

#![forbid(unsafe_code)]

/// Read access to a contiguous byte cursor. Reads advance the cursor and
/// panic on underflow, mirroring `bytes::Buf`; callers that need checked
/// reads wrap this (see `lazyctrl-proto`'s `Reader`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "Buf underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink (big-endian writes, like the real
/// crate).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// Cheaply-cloneable immutable byte buffer, mirroring `bytes::Bytes`:
/// the contents live behind an atomically reference-counted allocation,
/// so `clone()` is a refcount bump — which is what makes frame
/// broadcast/relay hops in the simulator zero-copy.
///
/// Construction from a `Vec<u8>` moves the vector (no copy); construction
/// from a slice copies once.
#[derive(Clone, Default)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a vector (moves it; no copy).
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }

    /// Copies a slice into a fresh shared buffer (mirrors
    /// `bytes::Bytes::copy_from_slice`).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        // Pointer fast path: clones of one buffer are trivially equal.
        std::sync::Arc::ptr_eq(&self.0, &other.0) || self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16(0x0102);
        v.put_u32(0x03040506);
        v.put_u64(0x0708090a0b0c0d0e);
        v.put_slice(b"xy");
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.remaining(), 0);
    }
}
