//! Offline stand-in for `criterion` (see `DESIGN.md`, "vendored stubs").
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — as a
//! small wall-clock harness: each benchmark is warmed up once, then run for
//! a fixed iteration budget, and the mean per-iteration time is printed as
//!
//! ```text
//! bench <group>/<name> ... <mean> per iter (<iters> iters)
//! ```
//!
//! No statistics, no HTML reports, no comparison to saved baselines; the
//! point is that `cargo bench` compiles, runs, and prints meaningful
//! numbers without any network dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples (used as the iteration budget
    /// multiplier here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Names a benchmark, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup (also primes caches/allocations out of the measurement).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    // Calibrate: run once to estimate per-iter cost, then pick an iteration
    // count that keeps each bench under ~1s while using the sample size as
    // a floor.
    let mut cal = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut cal);
    let per_iter = cal.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(300);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    let iters = iters.max(sample_size.min(100) as u64);

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / (b.iters as u32);
    println!("bench {label:<48} {mean:>12?} per iter ({} iters)", b.iters);
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
