//! Offline stand-in for `crossbeam` (see `DESIGN.md`, "vendored stubs").
//!
//! Provides the `crossbeam::thread::scope` API shape the workspace uses
//! (`scope(|s| { s.spawn(|_| ...) })`, handles joined for results), but
//! executes each spawn **sequentially and immediately** on the calling
//! thread. Rationale:
//!
//! * the workspace only uses scoped threads for the SGI merge/split step,
//!   whose workers are pure functions over disjoint group pairs — the
//!   results are identical whether they run in parallel or in order;
//! * sequential execution keeps the whole simulation single-threaded and
//!   bit-deterministic, which the reproduction's acceptance tests rely on;
//! * no `unsafe`, no lifetime gymnastics, no external dependency.
//!
//! If a future PR wants real parallelism here, `std::thread::scope` is the
//! replacement seam.

#![forbid(unsafe_code)]

/// Scoped-"thread" API, mirroring `crossbeam::thread`.
pub mod thread {
    /// Error half of the join result (a panic payload in real crossbeam;
    /// never produced here because spawns run eagerly and panics propagate
    /// directly).
    pub type JoinError = Box<dyn std::any::Any + Send + 'static>;

    /// The scope handle passed to the closure and to each spawn.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope;

    /// Result of a completed spawn.
    pub struct ScopedJoinHandle<T> {
        result: T,
    }

    impl<T> ScopedJoinHandle<T> {
        /// Returns the spawn's result.
        pub fn join(self) -> Result<T, JoinError> {
            Ok(self.result)
        }
    }

    impl Scope {
        /// Runs `f` immediately on the calling thread and captures its
        /// result. The closure receives the scope (ignored by all callers
        /// in this workspace).
        pub fn spawn<T, F: FnOnce(&Scope) -> T>(&self, f: F) -> ScopedJoinHandle<T> {
            ScopedJoinHandle { result: f(self) }
        }
    }

    /// Runs `f` with a scope; all "spawned" work completes before this
    /// returns (trivially, since spawns run eagerly).
    pub fn scope<R, F: FnOnce(&Scope) -> R>(f: F) -> Result<R, JoinError> {
        Ok(f(&Scope))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_collects_results() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums, vec![10, 20, 30, 40]);
    }
}
