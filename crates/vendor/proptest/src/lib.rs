//! Offline stand-in for `proptest` (see `DESIGN.md`, "vendored stubs").
//!
//! A deterministic property-testing harness implementing exactly the
//! surface this workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `boxed`, [`any`] over the [`Arbitrary`] types the tests
//! need, range strategies, tuple strategies, [`collection`] (`vec`,
//! `hash_set`, `btree_set`), [`option::of`], [`sample::Index`], and the
//! [`proptest!`] / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering via the standard assert message; it does not
//!   minimize. Seeds are fixed, so failures replay exactly.
//! * **Fixed seeding.** Every `proptest!` test derives its RNG seed from
//!   the test function's name, so runs are bit-identical across
//!   invocations and machines — the same determinism contract as the rest
//!   of the workspace.

#![forbid(unsafe_code)]

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by the harness (xorshift*-style; quality is
/// ample for test-case generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (never produces the zero state).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives a seed from a test name, so each test gets a stable,
    /// distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 step: robust even for adversarial seeds.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Harness configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (regenerating, bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 candidates", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of ordinary magnitudes and special values, like real proptest's
        // float strategy (sans NaN-heavy bias).
        match rng.below(8) {
            0 => 0.0,
            1 => -1.5,
            2 => f64::NAN,
            3 => f64::INFINITY,
            _ => (rng.f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Collection strategies (`vec`, `hash_set`, `btree_set`).
pub mod collection {
    use super::*;

    /// Size specification for collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec<T>` strategy.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<T>`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut tries = 0;
            while out.len() < n && tries < n * 100 + 100 {
                out.insert(self.elem.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// `HashSet<T>` strategy; element duplicates are retried so the set
    /// usually reaches the drawn size.
    pub fn hash_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < n && tries < n * 100 + 100 {
                out.insert(self.elem.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// `BTreeSet<T>` strategy.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `None` 1 time in 4.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option` of the given strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling helpers (`Index`).
pub mod sample {
    use super::*;

    /// An index into a collection of runtime-determined size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, size)`; `size` must be nonzero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Why a generated case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` failed); it does not count as a
    /// failure.
    Reject,
}

/// Skips the current generated case when the assumption fails.
///
/// Each case body runs inside a closure returning
/// `Result<(), TestCaseError>` (which is also why `return Ok(())` works as
/// an early exit, as in real proptest); this expands to an early
/// `Err(Reject)` return from that closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(x in strategy, (a, b) in strategy2) { body }
///     // ... more #[test] fns
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal rules first: the public fallback below matches any token
    // stream, so `@cfg` continuations must be tried before it.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // The body runs in a closure returning Result so that
                // `prop_assume!` can reject the case and `return Ok(())`
                // can end it early, as in real proptest. Failures panic
                // straight through the closure.
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match case() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // With a config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), 10u8..20, any::<u8>().prop_map(|v| v / 2)]) {
            prop_assert!(x == 1 || (10..20).contains(&x) || x <= 127);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(i in any::<prop::sample::Index>()) {
            let k = i.index(17);
            prop_assert!(k < 17);
        }
    }
}
