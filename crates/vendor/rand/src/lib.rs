//! Offline stand-in for the `rand` crate (see `DESIGN.md`, "vendored
//! stubs").
//!
//! Implements exactly the API subset the workspace uses — [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`) — over a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism contract (the whole point of this stub): the same seed
//! always produces the same stream, on every platform, forever. The
//! reproduction's "same seed ⇒ bit-identical results" guarantee bottoms
//! out here. Statistical quality is xoshiro256++'s, which is more than
//! adequate for the trace generators and jitter models in this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6c62_272e_07bb_0142,
                    0xcbf2_9ce4_8422_2325,
                    0x0123_4567_89ab_cdef,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire, without the rejection step:
    // the bias is < 2^-64 per draw, irrelevant for simulation workloads and
    // fully deterministic).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffle/choose over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_one(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_one(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
