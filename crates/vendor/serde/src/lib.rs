//! Offline stand-in for `serde` (see `DESIGN.md`, "vendored stubs").
//!
//! The workspace derives `Serialize`/`Deserialize` on its public model types
//! as a forward-compatibility marker; nothing serializes through serde today.
//! This stub provides the two derive macros (as no-ops) plus marker traits so
//! `use serde::{Deserialize, Serialize};` resolves. If a future PR adds a
//! real serialization backend, this crate is the seam to replace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize`.
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize`.
pub trait DeserializeMarker {}
