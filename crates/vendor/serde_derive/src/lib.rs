//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker (no code path actually serializes through
//! serde), so these derives expand to nothing. See `DESIGN.md` for the
//! vendored-stub policy: the container has no network access, so every
//! external dependency is replaced by a minimal local implementation of
//! exactly the API surface the workspace uses.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
