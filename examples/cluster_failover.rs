//! Controller failover in a `lazyctrl-cluster`: a two-member cluster runs
//! a day-fragment of traffic, one member is killed mid-run, the survivors'
//! ring heartbeats feed the *same Table-I inference* the switch wheel
//! uses, the leader takes over the dead member's groups, and the failed
//! shard's traffic flows again — its C-LIB seeded from the asynchronous
//! replica rather than waiting for every switch to re-sync.
//!
//! ```sh
//! cargo run --release --example cluster_failover
//! ```

use lazyctrl::core::scenarios::controller_crash;
use lazyctrl::core::{run_built, ScenarioRegistry};

fn main() {
    println!("=== lazyctrl-cluster: controller-crash-under-load ===\n");
    println!("cluster: 2 controllers, round-robin group ownership");
    println!("event:   member 1 killed at t = 1.4 h under steady load\n");

    // The scenario is a registry entry: the fault schedule comes from its
    // EventPlan, and its own `check` judges the run.
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get("crash_under_load").expect("built-in");
    let (trace, cfg, plan) = scenario.build(5);
    println!("injected plan:");
    for e in plan.events() {
        println!("  {e}");
    }
    let run = run_built(scenario, trace, cfg, plan);
    assert!(
        run.verdict.passed(),
        "crash_under_load failed: {:?}",
        run.verdict.failures
    );
    println!("registry verdict: PASS\n");

    // The detailed analysis additionally splits delivered flows by shard
    // and crash phase (it needs the per-flow latency log).
    let r = controller_crash(2, 5);
    let cluster = r.report.cluster.as_ref().expect("cluster run");

    println!("detection & takeover");
    println!("  confirmed dead:      {:?}", cluster.confirmed_dead);
    println!(
        "  takeovers:           {:?}  (dead member, groups moved)",
        cluster.takeovers
    );
    println!("  failover transfers:  {}", cluster.failover_transfers);
    println!("  failed-shard groups: {:?}", cluster.failover_groups);

    println!("\nreachability of the failed shard's traffic (delivered first packets)");
    println!("  before crash:        {}", r.affected_before);
    println!("  during outage:       {}", r.affected_during_outage);
    println!("  after takeover:      {}", r.affected_after_takeover);
    println!(
        "\nsurviving shards kept {} flows moving during the outage —",
        r.survivor_during_outage
    );
    println!("devolved intra-group control plus sharding contain the blast radius.");

    println!("\ncluster bookkeeping at end of run");
    println!(
        "  requests/controller: {:?}",
        cluster.requests_per_controller
    );
    println!("  C-LIB shard sizes:   {:?}", cluster.clib_sizes);
    println!("  replica sizes:       {:?}", cluster.replica_sizes);
    println!("  ctrl-peer messages:  {}", cluster.ctrl_peer_messages);

    assert!(
        r.affected_after_takeover > 0,
        "failover must restore the failed shard's reachability"
    );
    println!("\nOK: inter-group reachability recovered after takeover.");
}
