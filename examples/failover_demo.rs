//! Failure detection and recovery (§III-E): the failure-detection wheel,
//! Table I inference, and designated-switch reselection — exercised
//! directly against the switch and controller state machines.
//!
//! ```sh
//! cargo run --release --example failover_demo
//! ```

use lazyctrl::controller::{ControllerOutput, LazyConfig, LazyController};
use lazyctrl::core::{run_built, ScenarioRegistry};
use lazyctrl::net::SwitchId;
use lazyctrl::partition::WeightedGraph;
use lazyctrl::proto::{LazyMsg, Message, OutputSink, WheelLoss, WheelReportMsg};
use lazyctrl::switch::wheel::{WheelAction, WheelPosition};

fn main() {
    println!("=== 1. The failure-detection wheel at one switch ===");
    // S5 sits between S4 (upstream) and S6 (downstream) on the wheel,
    // probing both neighbours every second.
    let interval = 1_000_000_000u64;
    let mut wheel = WheelPosition::new(
        SwitchId::new(5),
        SwitchId::new(4),
        SwitchId::new(6),
        interval,
        0,
    );
    // Healthy rounds: everyone keeps everyone alive.
    for i in 1..=3u64 {
        let now = i * interval;
        wheel.on_peer_keepalive(SwitchId::new(4), now);
        wheel.on_peer_keepalive(SwitchId::new(6), now);
        wheel.on_controller_keepalive(now);
        let probes = wheel.tick(now).len();
        println!("t={i}s  healthy tick: {probes} keep-alives sent, no losses");
    }
    // S4 dies: its keep-alives stop; S5 notices after the miss threshold.
    for i in 4..=8u64 {
        let now = i * interval;
        wheel.on_peer_keepalive(SwitchId::new(6), now);
        wheel.on_controller_keepalive(now);
        for action in wheel.tick(now) {
            if let WheelAction::Report(report) = action {
                println!(
                    "t={i}s  S5 reports: keep-alives from {} stopped ({:?})",
                    report.missing, report.loss
                );
            }
        }
    }

    println!("\n=== 2. Controller-side Table I inference and recovery ===");
    // Build a controller over 8 switches in two natural clusters.
    let mut g = WeightedGraph::new(8);
    for c in 0..2 {
        let b = c * 4;
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(b + i, b + j, 10.0);
            }
        }
    }
    let switches: Vec<SwitchId> = (0..8).map(SwitchId::new).collect();
    let mut controller = LazyController::new(
        switches,
        LazyConfig {
            group_size_limit: 4,
            ..LazyConfig::default()
        },
    );
    let mut sink = OutputSink::new();
    controller.bootstrap(0, g, &mut sink);
    sink.clear();
    let victim = controller
        .grouping()
        .designated_of(0)
        .expect("group 0 exists");
    println!("group 0 designated switch: {victim}");

    // Both ring neighbours of the victim report silence — Table I's
    // "switch failure" row.
    let mk = |loss, reporter: u32| {
        Message::lazy(
            1,
            LazyMsg::WheelReport(WheelReportMsg {
                reporter: SwitchId::new(reporter),
                missing: victim,
                loss,
            }),
        )
    };
    controller.handle_message(1, SwitchId::new(1), &mk(WheelLoss::Upstream, 1), &mut sink);
    sink.clear();
    controller.handle_message(
        2,
        SwitchId::new(2),
        &mk(WheelLoss::Downstream, 2),
        &mut sink,
    );
    let out = sink.take_buf();

    println!("controller infers: switch {victim} is down");
    println!(
        "switches believed down: {:?}",
        controller.failover().down_switches()
    );
    for o in &out {
        if let ControllerOutput::ToSwitch(to, m) = o {
            if let Some(LazyMsg::GroupAssign(ga)) = m.as_lazy() {
                println!(
                    "  → {to}: new group membership {:?}, designated {}",
                    ga.members, ga.designated
                );
            }
        }
    }

    // The victim reboots and pings the controller: §III-E.3 comeback.
    println!("\n=== 3. Rebooted switch comes back ===");
    let hello = Message::of(9, lazyctrl::proto::OfMessage::Hello);
    let mut sink = OutputSink::new();
    controller.handle_message(60_000_000_000, victim, &hello, &mut sink);
    let out = sink.take_buf();
    let resyncs = out
        .iter()
        .filter(|o| {
            matches!(o, ControllerOutput::ToSwitch(_, m)
                if matches!(m.as_lazy(), Some(LazyMsg::GroupAssign(_))))
        })
        .count();
    println!("controller resynchronizes the group: {resyncs} GroupAssign messages pushed");
    println!(
        "switches still down: {:?}",
        controller.failover().down_switches()
    );

    // The same machinery, end to end: the registry's switch_failure
    // scenario injects the crashes through an EventPlan and lets the
    // full simulation drive detection, group reform and comeback.
    println!("\n=== 4. End to end: the switch_failure scenario ===");
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get("switch_failure").expect("built-in");
    println!("plan:");
    let (trace, cfg, plan) = scenario.build(0xFA);
    for e in plan.events() {
        println!("  {e}");
    }
    let run = run_built(scenario, trace, cfg, plan);
    println!(
        "down at end of run: {:?}; delivered {}/{} flows",
        run.report.down_switches, run.report.delivered_flows, run.report.flows_started
    );
    assert!(
        run.verdict.passed(),
        "switch_failure failed: {:?}",
        run.verdict.failures
    );
    println!("verdict: PASS — Table-I inference flagged exactly the still-dead switch.");
}
