//! Explore the switch-grouping machinery on the paper's synthetic traces:
//! how inter-group traffic intensity (W_inter) depends on the number of
//! groups (Fig. 6a's sweep), how fast grouping runs, and what the
//! incremental update does when traffic shifts.
//!
//! ```sh
//! cargo run --release --example grouping_explorer
//! ```

use std::time::Instant;

use lazyctrl::partition::{metrics, mlkp, MlkpConfig, Sgi, SgiConfig};
use lazyctrl::trace::synthetic::{generate, SyntheticConfig};
use lazyctrl::trace::IntensityMatrix;

fn main() {
    // Scaled-down Syn-A/B/C (same generation procedure as §V-B).
    let scale = 8;
    println!("generating synthetic traces (scale 1/{scale})...");
    let traces: Vec<_> = [
        SyntheticConfig::syn_a(),
        SyntheticConfig::syn_b(),
        SyntheticConfig::syn_c(),
    ]
    .into_iter()
    .map(|cfg| generate(&cfg.scaled_down(scale)))
    .collect();

    println!("\n=== W_inter vs number of groups (Fig. 6a shape) ===");
    println!("{:>8} {:>10} {:>10} {:>10}", "k", "syn-a", "syn-b", "syn-c");
    for k in [5usize, 10, 20, 40, 80] {
        let mut row = format!("{k:>8}");
        for trace in &traces {
            let graph = IntensityMatrix::from_trace(trace).to_graph();
            // Size-constrained, as in IniGroup (roughly equal groups).
            let cap = (graph.num_vertices() as f64 / k as f64 * 1.1).ceil();
            let part = mlkp(
                &graph,
                &MlkpConfig::new(k).with_max_part_weight(cap).with_seed(7),
            );
            let w = metrics::normalized_inter_group_intensity(&graph, &part);
            row.push_str(&format!(" {:>9.1}%", w * 100.0));
        }
        println!("{row}");
    }

    println!("\n=== grouping computation time vs group size limit (Fig. 6b shape) ===");
    let trace = &traces[0];
    let graph = IntensityMatrix::from_trace(trace).to_graph();
    println!(
        "switches: {}, pairs: {}",
        graph.num_vertices(),
        graph.num_edges()
    );
    for limit in [10usize, 20, 40, 80] {
        let k = graph.num_vertices().div_ceil(limit);
        let start = Instant::now();
        let part = mlkp(
            &graph,
            &MlkpConfig::new(k)
                .with_max_part_weight(limit as f64)
                .with_seed(7),
        );
        let elapsed = start.elapsed();
        println!(
            "limit {:>4}: {:>3} groups in {:>8.2?} (W_inter {:.1}%)",
            limit,
            part.num_groups(),
            elapsed,
            metrics::normalized_inter_group_intensity(&graph, &part) * 100.0
        );
    }

    println!("\n=== IncUpdate after a traffic shift ===");
    let graph = IntensityMatrix::from_trace(&traces[0]).to_graph();
    let n = graph.num_vertices();
    let limit = 40;
    let mut sgi = Sgi::ini_group(
        graph.clone(),
        SgiConfig::new(limit).with_thresholds(0.0, 0.0).with_seed(3),
    );
    println!(
        "initial grouping: {} groups, W_inter {:.2}%",
        sgi.partition().num_groups(),
        sgi.winter() * 100.0
    );
    // Shift: ten previously unrelated switch pairs start talking at a rate
    // comparable to the hottest existing pairs.
    let peak = (0..n)
        .map(|u| graph.weighted_degree(u))
        .fold(0.0f64, f64::max);
    let mut shifted = graph.clone();
    for i in 0..10 {
        let a = i;
        let b = n / 2 + i;
        if a != b {
            shifted.add_edge(a, b, peak);
        }
    }
    sgi.set_intensity(shifted);
    println!("after shift:      W_inter {:.2}%", sgi.winter() * 100.0);
    let start = Instant::now();
    let report = sgi.inc_update(f64::INFINITY);
    println!(
        "IncUpdate: {} merge/split rounds in {:.2?}, W_inter {:.2}% → {:.2}%",
        report.rounds,
        start.elapsed(),
        report.winter_before * 100.0,
        report.winter_after * 100.0
    );
}
