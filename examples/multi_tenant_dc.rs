//! The paper's Fig. 1 scenario, end to end: a multi-tenant data center
//! where edge switches are clustered into local control groups by
//! communication affinity, so tenant-local traffic never touches the
//! central controller.
//!
//! Three tenants (A, B, C) spread over five edge switches; tenants A and C
//! communicate within {S_A, S_C, S_E}; tenant B within {S_B, S_D}. The
//! grouping discovers exactly those two groups, and only the rare A↔B
//! style cross-group flow reaches the controller.
//!
//! ```sh
//! cargo run --release --example multi_tenant_dc
//! ```

use lazyctrl::core::{ControlMode, Experiment, ExperimentConfig};
use lazyctrl::net::{HostId, SwitchId, TenantId};
use lazyctrl::trace::{FlowRecord, NominalParams, Topology, Trace};

fn main() {
    // Five switches S0..S4 (the paper's S_A..S_E). Two hosts per switch.
    // Tenant A on S0/S2, tenant B on S1/S3, tenant C on S2/S4.
    let placements: [(u16, u32); 10] = [
        (1, 0), // host 0, tenant A, S0
        (1, 0), // host 1, tenant A, S0
        (2, 1), // host 2, tenant B, S1
        (2, 1), // host 3
        (1, 2), // host 4, tenant A, S2
        (3, 2), // host 5, tenant C, S2
        (2, 3), // host 6, tenant B, S3
        (2, 3), // host 7
        (3, 4), // host 8, tenant C, S4
        (3, 4), // host 9
    ];
    let topology = Topology {
        num_switches: 5,
        host_switch: placements.iter().map(|&(_, s)| SwitchId::new(s)).collect(),
        host_tenant: placements.iter().map(|&(t, _)| TenantId::new(t)).collect(),
    };

    // A day of traffic: heavy intra-tenant flows, one cross-tenant pair.
    let mut flows = Vec::new();
    let mut t = 1_000_000_000u64;
    let hour = 3_600_000_000_000u64;
    while t < 24 * hour {
        // Tenant A: hosts 0,1 (S0) ↔ host 4 (S2) — binds S0 and S2.
        flows.push(flow(t, 0, 4));
        flows.push(flow(t + 200_000_000, 1, 4));
        // Tenant C: host 5 (S2) ↔ hosts 8,9 (S4) — binds S2 and S4.
        flows.push(flow(t + 400_000_000, 5, 8));
        flows.push(flow(t + 600_000_000, 5, 9));
        // Tenant B: hosts 2,3 (S1) ↔ hosts 6,7 (S3) — binds S1 and S3.
        flows.push(flow(t + 800_000_000, 2, 6));
        flows.push(flow(t + 1_000_000_000, 3, 7));
        // Rare cross-group chatter (the S_A ↔ S_D case of Fig. 1): once
        // an hour, tenant-less infrastructure traffic.
        if (t / hour) != ((t + 2_000_000_000) / hour) {
            flows.push(flow(t + 1_200_000_000, 0, 6));
        }
        t += 60_000_000_000; // every minute
    }
    flows.sort_by_key(|f| f.time_ns);

    let trace = Trace {
        name: "fig1".into(),
        topology,
        flows,
        duration_ns: 24 * hour,
        nominal: NominalParams::default(),
    };

    let cfg = ExperimentConfig::new(ControlMode::LazyDynamic).with_group_size_limit(3);
    let run = Experiment::new(trace, cfg).run_detailed();
    let r = &run.report;

    println!("local control groups formed: {:?}", r.num_groups);
    println!(
        "normalized inter-group traffic (W_inter): {:.3}",
        r.final_winter.unwrap_or(1.0)
    );
    println!("flow arrivals:        {}", r.flows_started);
    println!("controller messages:  {}", r.controller_messages);
    println!("  of which PacketIns: {}", r.packet_ins);
    println!(
        "controller saw {:.1}% of flows — the rest were handled inside the groups",
        100.0 * r.packet_ins as f64 / r.flows_started as f64
    );
    for p in &r.workload_rps {
        println!(
            "  hour {:>4.1}: {:>8.4} controller requests/sec",
            p.hour, p.value
        );
    }
}

fn flow(time_ns: u64, src: u32, dst: u32) -> FlowRecord {
    FlowRecord {
        time_ns,
        src: HostId::new(src),
        dst: HostId::new(dst),
        bytes: 1000,
    }
}
