//! Quickstart: run the same day of data-center traffic under standard
//! OpenFlow control and under LazyCtrl, and compare what the controller
//! had to do.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lazyctrl::core::{ControlMode, Experiment, ExperimentConfig};
use lazyctrl::trace::realistic::{generate, RealTraceConfig};

fn main() {
    // A scaled-down version of the paper's "real" trace: 40 edge switches,
    // 1000 hosts, tenant-local traffic with a 90/10 popularity skew.
    let mut trace_cfg = RealTraceConfig::small();
    trace_cfg.num_flows = 40_000;
    let trace = generate(&trace_cfg);
    println!(
        "trace: {} switches, {} hosts, {} flow arrivals over {:.0} h",
        trace.topology.num_switches,
        trace.topology.num_hosts(),
        trace.num_flows(),
        trace.duration_hours()
    );

    let mut reports = Vec::new();
    for mode in [
        ControlMode::Baseline,
        ControlMode::LazyStatic,
        ControlMode::LazyDynamic,
    ] {
        let cfg = ExperimentConfig::new(mode).with_group_size_limit(10);
        let report = Experiment::new(trace.clone(), cfg).run();
        println!(
            "{:<18} controller messages: {:>7}  packet-ins: {:>7}  mean latency: {:.3} ms",
            report.mode, report.controller_messages, report.packet_ins, report.mean_latency_ms
        );
        reports.push(report);
    }

    let baseline = &reports[0];
    for lazy in &reports[1..] {
        println!(
            "{:<18} reduces controller workload by {:.0}% vs OpenFlow",
            lazy.mode,
            lazy.workload_reduction_vs(baseline) * 100.0
        );
    }
}
