#!/usr/bin/env sh
# Purity lint for the model-checked crates.
#
# The model checker (crates/mc) explores the cluster plane (crates/cluster)
# by cloning states and replaying schedules; both crates must therefore be
# pure functions of their inputs. Two schedules that replay the same events
# must produce bit-identical states — which bans wall clocks, OS
# randomness, environment reads, and hash-iteration order from ever
# entering protocol state.
#
# This is a source lint backing the runtime purity hooks
# (`ClusterControlPlane`'s debug assertions): cheap, runs in CI, and fails
# with the offending lines.

set -u
cd "$(dirname "$0")/.."

fail=0

# Wall clocks, OS randomness, and environment reads: banned outright.
# `Instant` is allowed in bench binaries (they report wall time), never in
# the checked crates.
if out=$(grep -rn \
    -e 'Instant::now' \
    -e 'SystemTime' \
    -e 'thread_rng' \
    -e 'from_entropy' \
    -e 'rand::' \
    -e 'std::env::' \
    crates/cluster/src crates/mc/src); then
    echo "purity_lint: nondeterminism source in a model-checked crate:" >&2
    echo "$out" >&2
    fail=1
fi

# Hash-order hazard: HashMap/HashSet iteration order varies per process
# (SipHash keys are randomized), so neither may appear where iteration
# could leak into protocol state or checker output. The one allowlisted
# use is the checker's visited-fingerprint set, which is membership-only.
if out=$(grep -rn -e 'HashMap' -e 'HashSet' \
    crates/cluster/src crates/mc/src \
    | grep -v '^crates/mc/src/checker\.rs:'); then
    echo "purity_lint: hash-ordered container in a model-checked crate" >&2
    echo "(use BTreeMap/BTreeSet, or membership-only sets in checker.rs):" >&2
    echo "$out" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "purity_lint: ok (crates/cluster, crates/mc are clock-, rand-, and hash-order-free)"
fi
exit "$fail"
