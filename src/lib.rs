//! # LazyCtrl — scalable hybrid network control for cloud data centers
//!
//! A full reproduction of *LazyCtrl: Scalable Network Control for Cloud
//! Data Centers* (Zheng, Wang, Yang, Sun, Zhang, Uhlig — ICDCS 2015) as a
//! Rust workspace. LazyCtrl clusters edge switches into **local control
//! groups** by traffic affinity, devolves frequent intra-group control to
//! distributed mechanisms near the datapath, and leaves only rare
//! inter-group events to a central controller — cutting controller
//! workload by 61–82% in the paper's evaluation.
//!
//! This crate is the facade: it re-exports every subsystem so downstream
//! users depend on one crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`net`] | `lazyctrl-net` | MAC/Ethernet/ARP/VLAN packet model, GRE-like encapsulation |
//! | [`proto`] | `lazyctrl-proto` | OpenFlow 1.0-style wire protocol + LazyCtrl vendor extensions |
//! | [`bloom`] | `lazyctrl-bloom` | Bloom / counting-Bloom filters (the G-FIB substrate) |
//! | [`cluster`] | `lazyctrl-cluster` | sharded multi-controller control plane: ownership, C-LIB replication, failover |
//! | [`partition`] | `lazyctrl-partition` | multilevel k-way partitioning, Stoer–Wagner, the SGI algorithm, Rubinstein bargaining |
//! | [`sim`] | `lazyctrl-sim` | deterministic discrete-event kernel, latency model, metrics |
//! | [`obs`] | `lazyctrl-obs` | flight-recorder tracing, sampling engine profiler, telemetry JSON |
//! | [`trace`] | `lazyctrl-trace` | real-trace surrogate, Syn-A/B/C generators, intensity matrices |
//! | [`switch`] | `lazyctrl-switch` | the edge switch: flow table, L-FIB, G-FIB, Fig. 5 forwarding, failure wheel |
//! | [`controller`] | `lazyctrl-controller` | baseline OpenFlow + LazyCtrl controllers, C-LIB, failover |
//! | [`core`] | `lazyctrl-core` | end-to-end experiments over traces |
//!
//! # Quickstart
//!
//! Run the same trace under standard OpenFlow and under LazyCtrl and
//! compare controller workload:
//!
//! ```
//! use lazyctrl::core::{ControlMode, Experiment, ExperimentConfig};
//! use lazyctrl::trace::realistic::{generate, RealTraceConfig};
//!
//! let mut tc = RealTraceConfig::small();
//! tc.num_flows = 3_000; // keep the doctest quick
//! let trace = generate(&tc);
//!
//! let baseline = Experiment::new(
//!     trace.clone(),
//!     ExperimentConfig::new(ControlMode::Baseline),
//! )
//! .run();
//! let lazy = Experiment::new(
//!     trace,
//!     ExperimentConfig::new(ControlMode::LazyDynamic).with_group_size_limit(10),
//! )
//! .run();
//!
//! assert!(lazy.controller_messages < baseline.controller_messages);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lazyctrl_bloom as bloom;
pub use lazyctrl_cluster as cluster;
pub use lazyctrl_controller as controller;
pub use lazyctrl_core as core;
pub use lazyctrl_mc as mc;
pub use lazyctrl_net as net;
pub use lazyctrl_obs as obs;
pub use lazyctrl_partition as partition;
pub use lazyctrl_proto as proto;
pub use lazyctrl_sim as sim;
pub use lazyctrl_switch as switch;
pub use lazyctrl_trace as trace;
