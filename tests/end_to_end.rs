//! Cross-crate integration tests: full trace → simulation → report runs
//! exercising every subsystem together, asserting the paper's headline
//! properties at test scale.

use lazyctrl::core::{ControlMode, Experiment, ExperimentConfig};
use lazyctrl::trace::expand::expand;
use lazyctrl::trace::realistic::{generate, RealTraceConfig};

fn small_trace(flows: usize) -> lazyctrl::trace::Trace {
    let mut cfg = RealTraceConfig::small();
    cfg.num_flows = flows;
    generate(&cfg)
}

#[test]
fn lazyctrl_reduces_packet_ins_massively() {
    let trace = small_trace(12_000);
    let base = Experiment::new(
        trace.clone(),
        ExperimentConfig::new(ControlMode::Baseline).with_group_size_limit(10),
    )
    .run();
    let lazy = Experiment::new(
        trace,
        ExperimentConfig::new(ControlMode::LazyStatic).with_group_size_limit(10),
    )
    .run();
    // The headline claim, at test scale: far fewer flow setups reach the
    // controller (paper: 61–82% total workload reduction).
    assert!(
        (lazy.packet_ins as f64) < (base.packet_ins as f64) * 0.5,
        "packet-ins: lazy {} vs baseline {}",
        lazy.packet_ins,
        base.packet_ins
    );
    assert!(
        lazy.controller_messages < base.controller_messages,
        "total messages: lazy {} vs baseline {}",
        lazy.controller_messages,
        base.controller_messages
    );
}

#[test]
fn both_modes_deliver_the_traffic() {
    let trace = small_trace(8_000);
    for mode in [ControlMode::Baseline, ControlMode::LazyStatic] {
        let report = Experiment::new(
            trace.clone(),
            ExperimentConfig::new(mode).with_group_size_limit(10),
        )
        .run();
        let ratio = report.delivered_flows as f64 / report.flows_started as f64;
        assert!(
            ratio > 0.93,
            "{}: delivered only {:.1}% of flows",
            report.mode,
            ratio * 100.0
        );
    }
}

#[test]
fn lazy_latency_beats_baseline() {
    let trace = small_trace(8_000);
    let base = Experiment::new(
        trace.clone(),
        ExperimentConfig::new(ControlMode::Baseline).with_group_size_limit(10),
    )
    .run();
    let lazy = Experiment::new(
        trace,
        ExperimentConfig::new(ControlMode::LazyStatic).with_group_size_limit(10),
    )
    .run();
    assert!(
        lazy.mean_latency_ms < base.mean_latency_ms,
        "latency: lazy {:.3} ms vs baseline {:.3} ms",
        lazy.mean_latency_ms,
        base.mean_latency_ms
    );
}

#[test]
fn dynamic_regrouping_beats_static_on_shifting_traffic() {
    // Expanded trace: +40% flows on fresh hotspots during hours 8–24.
    let base_trace = small_trace(20_000);
    let shifted = expand(&base_trace, 0.40, 8.0, 24.0, 11);
    let static_run = Experiment::new(
        shifted.clone(),
        ExperimentConfig::new(ControlMode::LazyStatic).with_group_size_limit(10),
    )
    .run();
    let dynamic_run = Experiment::new(
        shifted,
        ExperimentConfig::new(ControlMode::LazyDynamic).with_group_size_limit(10),
    )
    .run();
    assert!(
        dynamic_run.controller_messages < static_run.controller_messages,
        "dynamic {} should beat static {} on shifting traffic",
        dynamic_run.controller_messages,
        static_run.controller_messages
    );
    // And it must actually have adapted.
    let updates: f64 = dynamic_run.updates_per_hour.iter().map(|p| p.value).sum();
    assert!(updates > 0.0, "dynamic mode never regrouped");
}

#[test]
fn experiment_is_deterministic() {
    let trace = small_trace(4_000);
    let cfg = ExperimentConfig::new(ControlMode::LazyDynamic)
        .with_group_size_limit(10)
        .with_seed(1234);
    let a = Experiment::new(trace.clone(), cfg.clone()).run();
    let b = Experiment::new(trace, cfg).run();
    assert_eq!(a, b, "same seed must give bit-identical reports");
}

#[test]
fn group_size_limit_is_respected_end_to_end() {
    let trace = small_trace(6_000);
    let report = Experiment::new(
        trace,
        ExperimentConfig::new(ControlMode::LazyStatic).with_group_size_limit(7),
    )
    .run();
    // 40 switches at limit 7 ⇒ at least 6 groups.
    assert!(report.num_groups.unwrap_or(0) >= 6);
    assert!(report.final_winter.is_some());
    // Storage: every switch holds at most (group-1) filters (§V-D).
    assert!(report.max_gfib_bytes > 0);
}

#[test]
fn horizon_cuts_the_run_short() {
    let trace = small_trace(8_000);
    let full = Experiment::new(trace.clone(), ExperimentConfig::new(ControlMode::Baseline)).run();
    let half = Experiment::new(
        trace,
        ExperimentConfig::new(ControlMode::Baseline).with_horizon_hours(12.0),
    )
    .run();
    assert!(half.flows_started < full.flows_started);
    assert!(half.flows_started > 0);
}
