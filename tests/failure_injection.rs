//! Cross-crate failure-injection tests: wheel detection, Table I inference
//! and recovery driven through the switch + controller state machines with
//! simulated time (no real network, fully deterministic).

use lazyctrl::controller::{ControllerOutput, LazyConfig, LazyController};
use lazyctrl::net::{GroupId, SwitchId};
use lazyctrl::partition::WeightedGraph;
use lazyctrl::proto::{GroupAssignMsg, LazyMsg, Message, OutputSink, WheelLoss, WheelReportMsg};
use lazyctrl::switch::{EdgeSwitch, SwitchOutput, SwitchTimer};

fn ring_of_four() -> Vec<EdgeSwitch> {
    let members: Vec<SwitchId> = (0..4).map(SwitchId::new).collect();
    let mut switches: Vec<EdgeSwitch> = members.iter().map(|&id| EdgeSwitch::new(id)).collect();
    for (i, sw) in switches.iter_mut().enumerate() {
        let ga = GroupAssignMsg {
            group: GroupId::new(0),
            epoch: 1,
            members: members.clone(),
            designated: members[0],
            backups: vec![members[1]],
            ring_prev: members[(i + 3) % 4],
            ring_next: members[(i + 1) % 4],
            sync_interval_ms: 1_000,
            keepalive_interval_ms: 1_000,
            group_size_limit: 4,
        };
        let mut sink = OutputSink::new();
        sw.handle_control_message(0, &Message::lazy(1, LazyMsg::group_assign(ga)), &mut sink);
    }
    switches
}

/// Drives keep-alive rounds over the ring, dropping everything sent by
/// `dead` switches. Returns the wheel reports that reached "the controller".
fn run_keepalive_rounds(
    switches: &mut [EdgeSwitch],
    dead: &[SwitchId],
    rounds: u64,
) -> Vec<WheelReportMsg> {
    let interval_ns = 1_000_000_000u64;
    let mut reports = Vec::new();
    let mut sink = OutputSink::new();
    for round in 1..=rounds {
        let now = round * interval_ns;
        // Collect each live switch's keep-alive emissions.
        let mut deliveries: Vec<(SwitchId, SwitchId, Message)> = Vec::new();
        for sw in switches.iter_mut() {
            let id = sw.id();
            if dead.contains(&id) {
                continue;
            }
            sw.on_timer(now, SwitchTimer::KeepAlive, &mut sink);
            for out in sink.drain() {
                match out {
                    SwitchOutput::ToPeer(to, msg) => deliveries.push((id, to, msg)),
                    SwitchOutput::ToController(msg) => {
                        if let Some(LazyMsg::WheelReport(r)) = msg.as_lazy() {
                            reports.push(*r);
                        }
                    }
                    _ => {}
                }
            }
            // Everyone keeps hearing the controller (control links fine).
            let ka = Message::lazy(
                0,
                LazyMsg::KeepAlive(lazyctrl::proto::KeepAliveMsg {
                    from: SwitchId::CONTROLLER,
                    seq: round,
                }),
            );
            sw.handle_control_message(now, &ka, &mut sink);
            sink.clear();
        }
        // Deliver peer messages to live targets.
        for (from, to, msg) in deliveries {
            if dead.contains(&to) {
                continue;
            }
            let idx = switches.iter().position(|s| s.id() == to).expect("exists");
            switches[idx].handle_peer_message(now, from, &msg, &mut sink);
            for out in sink.drain() {
                if let SwitchOutput::ToController(m) = out {
                    if let Some(LazyMsg::WheelReport(r)) = m.as_lazy() {
                        reports.push(*r);
                    }
                }
            }
        }
    }
    reports
}

#[test]
fn healthy_ring_stays_silent() {
    let mut switches = ring_of_four();
    let reports = run_keepalive_rounds(&mut switches, &[], 10);
    assert!(reports.is_empty(), "no failures, no reports: {reports:?}");
}

#[test]
fn dead_switch_is_reported_from_both_sides() {
    let mut switches = ring_of_four();
    let dead = SwitchId::new(2);
    let reports = run_keepalive_rounds(&mut switches, &[dead], 8);
    // Ring neighbours S1 (upstream of S2) and S3 (downstream) both notice.
    assert!(
        reports
            .iter()
            .any(|r| r.missing == dead && r.loss == WheelLoss::Upstream),
        "downstream neighbour must report upstream loss: {reports:?}"
    );
    assert!(
        reports
            .iter()
            .any(|r| r.missing == dead && r.loss == WheelLoss::Downstream),
        "upstream neighbour must report downstream loss: {reports:?}"
    );
    // Nobody blames a live switch.
    assert!(reports.iter().all(|r| r.missing == dead));
}

#[test]
fn controller_reforms_group_around_dead_designated() {
    // Wire the reports into a real controller and check the Table I
    // inference plus the §III-E.3 recovery end to end.
    let mut g = WeightedGraph::new(4);
    for i in 0..4 {
        for j in (i + 1)..4 {
            g.add_edge(i, j, 5.0);
        }
    }
    let mut controller = LazyController::new(
        (0..4).map(SwitchId::new).collect(),
        LazyConfig {
            group_size_limit: 4,
            ..LazyConfig::default()
        },
    );
    let mut sink = OutputSink::new();
    controller.bootstrap(0, g, &mut sink);
    sink.clear();
    let victim = controller.grouping().designated_of(0).expect("one group");

    let mut switches = ring_of_four();
    let reports = run_keepalive_rounds(&mut switches, &[victim], 8);
    let mut reform_messages = 0;
    for (i, r) in reports.iter().enumerate() {
        let msg = Message::lazy(i as u32 + 10, LazyMsg::WheelReport(*r));
        controller.handle_message(10_000_000_000 + i as u64, r.reporter, &msg, &mut sink);
        for o in sink.drain() {
            if let ControllerOutput::ToSwitch(_, m) = o {
                if let Some(LazyMsg::GroupAssign(ga)) = m.as_lazy() {
                    assert!(!ga.members.contains(&victim));
                    assert_ne!(ga.designated, victim);
                    reform_messages += 1;
                }
            }
        }
    }
    assert!(
        reform_messages >= 3,
        "group must re-form without the dead designated switch"
    );
    assert_eq!(controller.failover().down_switches(), vec![victim]);
}
